"""Figure-reproduction drivers (Figures 1, 2, 4, 5, 6, 7 of the paper).

Each driver returns a structured result object with the figure's data plus
a ``render()`` text form; the corresponding benchmark in ``benchmarks/``
prints exactly these renders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.experiments.runner import (
    POLICY_ORDER,
    GridResult,
    run_grid,
)
from repro.experiments.report import (
    ascii_heatmap,
    comparison_table,
    format_table,
    series_summary,
    sparkline,
)
from repro.experiments.scenario import Scenario, paper_scenario
from repro.apps.minife import MiniFE
from repro.apps.minimd import MiniMD
from repro.workload.traces import ClusterTrace, TraceRecorder

#: §5.1 grid — miniMD problem sizes and process counts
MINIMD_SIZES = (8, 16, 24, 32, 40, 48)
MINIMD_PROCS = (8, 16, 32, 64)
#: §5.2 grid — miniFE problem sizes and process counts
MINIFE_SIZES = (48, 96, 144, 256, 384)
MINIFE_PROCS = (8, 16, 32, 48)


# ----------------------------------------------------------------------
# Figure 1 — resource-usage variation over two days
# ----------------------------------------------------------------------
@dataclass
class Fig1Result:
    """Data behind Figure 1(a)-(c)."""

    trace: ClusterTrace
    node_a: str
    node_b: str
    sample_nodes: list[str]

    def hours(self) -> np.ndarray:
        return self.trace.times / 3600.0

    def _avg(self, metric: str) -> np.ndarray:
        cols = [self.trace.nodes.index(n) for n in self.sample_nodes]
        from repro.workload.traces import FIELDS

        return self.trace.data[:, cols, FIELDS.index(metric)].mean(axis=1)

    def summary(self) -> dict[str, float]:
        return {
            "mean_cpu_util_pct": float(self._avg("cpu_util").mean()),
            "mean_cpu_load": float(self._avg("cpu_load").mean()),
            "max_cpu_load": float(
                max(
                    self.trace.series(self.node_a, "cpu_load").max(),
                    self.trace.series(self.node_b, "cpu_load").max(),
                )
            ),
            "mean_memory_gb": float(self._avg("memory_used_gb").mean()),
            "mean_flow_mbs": float(self._avg("flow_rate_mbs").mean()),
        }

    def save_svgs(self, directory) -> list[str]:
        """Write Fig 1(a)-(c) as SVG files; returns the paths."""
        from pathlib import Path

        from repro.viz.svg import line_chart

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        hours = list(self.hours())
        paths = []
        panels = (
            ("fig1a_cpu_load", "CPU load", "cpu_load"),
            ("fig1b_network_io", "network I/O (MB/s)", "flow_rate_mbs"),
            ("fig1c_cpu_util", "CPU utilization (%)", "cpu_util"),
        )
        for fname, label, metric in panels:
            path = directory / f"{fname}.svg"
            line_chart(
                {
                    f"node A ({self.node_a})": (
                        hours, list(self.trace.series(self.node_a, metric))
                    ),
                    f"node B ({self.node_b})": (
                        hours, list(self.trace.series(self.node_b, metric))
                    ),
                    "average": (hours, list(self._avg(metric))),
                },
                title=f"Figure 1 — {label}",
                x_label="hours",
                y_label=label,
                path=path,
            )
            paths.append(str(path))
        return paths

    def render(self) -> str:
        out = ["Figure 1 — resource usage variation over the trace window", ""]
        for label, metric in (
            ("(a) CPU load", "cpu_load"),
            ("(b) network I/O (MB/s)", "flow_rate_mbs"),
            ("(c) CPU utilization (%)", "cpu_util"),
        ):
            out.append(label)
            out.append(
                f"  node A {self.node_a}: "
                + sparkline(self.trace.series(self.node_a, metric))
            )
            out.append(
                f"  node B {self.node_b}: "
                + sparkline(self.trace.series(self.node_b, metric))
            )
            out.append("  average:        " + sparkline(self._avg(metric)))
            out.append(
                "  "
                + series_summary("avg", self._avg(metric))
            )
            out.append("")
        out.append("  memory: " + series_summary("avg", self._avg("memory_used_gb"), unit="GB"))
        return "\n".join(out)


def fig1(
    seed: int = 0,
    *,
    hours: float = 48.0,
    sample_period_s: float = 300.0,
    n_sample_nodes: int = 20,
) -> Fig1Result:
    """Reproduce Figure 1: two-day resource traces on a 20-node sample."""
    sc = paper_scenario(seed=seed, warmup_s=0.0, with_monitoring=False)
    sample = sc.cluster.names[:n_sample_nodes]
    rec = TraceRecorder(sc.engine, sc.cluster, period_s=sample_period_s)
    sc.engine.run(hours * 3600.0)
    trace = rec.finish()
    # node A: the busiest of the sample, node B: the quietest — the paper
    # shows one of each flavour.
    busy = sc.workload.busyness
    ranked = sorted(sample, key=lambda n: busy[n])
    return Fig1Result(
        trace=trace, node_a=ranked[-1], node_b=ranked[0], sample_nodes=list(sample)
    )


# ----------------------------------------------------------------------
# Figure 2 — P2P bandwidth structure and variability
# ----------------------------------------------------------------------
@dataclass
class Fig2Result:
    """Data behind Figure 2(a) (heatmap) and 2(b) (pair series)."""

    nodes: list[str]
    mean_bandwidth: np.ndarray  # (N, N) MB/s averaged over samples
    pair_names: list[tuple[str, str]]
    pair_times_h: np.ndarray
    pair_series: np.ndarray  # (T, P)

    def proximity_correlation(self) -> float:
        """Correlation between hop count and mean bandwidth (negative)."""
        from repro.cluster.topology import paper_cluster

        _, topo = paper_cluster()
        hops, bw = [], []
        for i, a in enumerate(self.nodes):
            for j in range(i + 1, len(self.nodes)):
                hops.append(topo.hops(a, self.nodes[j]))
                bw.append(self.mean_bandwidth[i, j])
        return float(np.corrcoef(hops, bw)[0, 1])

    def save_svgs(self, directory) -> list[str]:
        """Write Fig 2(a) heatmap and 2(b) series as SVG; returns paths."""
        from pathlib import Path

        from repro.viz.svg import heatmap, line_chart

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        a = directory / "fig2a_bandwidth_heatmap.svg"
        heatmap(
            self.mean_bandwidth.tolist(),
            labels=self.nodes,
            invert=True,
            title="Figure 2(a) — mean P2P bandwidth (dark = low)",
            path=a,
        )
        b = directory / "fig2b_bandwidth_over_time.svg"
        hours = list(self.pair_times_h)
        line_chart(
            {
                f"{u}-{v}": (hours, list(self.pair_series[:, k]))
                for k, (u, v) in enumerate(self.pair_names)
            },
            title="Figure 2(b) — P2P bandwidth across time",
            x_label="hours",
            y_label="MB/s",
            path=b,
        )
        return [str(a), str(b)]

    def render(self) -> str:
        out = [
            "Figure 2(a) — mean P2P available bandwidth heatmap "
            "(dark = low bandwidth)",
            ascii_heatmap(
                self.mean_bandwidth, labels=self.nodes, invert=True
            ),
            "",
            f"hop-count vs bandwidth correlation: "
            f"{self.proximity_correlation():.3f} (proximity ⇒ bandwidth)",
            "",
            "Figure 2(b) — P2P bandwidth across time for three pairs",
        ]
        for k, (a, b) in enumerate(self.pair_names):
            out.append(f"  {a}-{b}: " + sparkline(self.pair_series[:, k]))
            out.append(
                "  " + series_summary(f"{a}-{b}", self.pair_series[:, k], unit="MB/s")
            )
        return "\n".join(out)


def fig2(
    seed: int = 0,
    *,
    n_nodes: int = 30,
    n_heatmap_samples: int = 10,
    heatmap_gap_s: float = 600.0,
    series_hours: float = 48.0,
    series_period_s: float = 600.0,
    n_pairs: int = 3,
) -> Fig2Result:
    """Reproduce Figure 2 on the first ``n_nodes`` of the paper cluster."""
    sc = paper_scenario(seed=seed, warmup_s=1800.0, with_monitoring=False)
    nodes = sc.cluster.names[:n_nodes]
    # (a) heatmap averaged over repeated measurements, like the paper's
    # "averaged over ten runs".
    acc = np.zeros((n_nodes, n_nodes))
    pairs = [
        (nodes[i], nodes[j])
        for i in range(n_nodes)
        for j in range(i + 1, n_nodes)
    ]
    for _ in range(n_heatmap_samples):
        bw = sc.network.bulk_available_bandwidth(pairs)
        for i in range(n_nodes):
            for j in range(i + 1, n_nodes):
                acc[i, j] += bw[(nodes[i], nodes[j])]
        sc.advance(heatmap_gap_s)
    acc = (acc + acc.T) / n_heatmap_samples
    np.fill_diagonal(acc, np.nan)

    # (b) three randomly-selected pairs followed over two days.
    rng = sc.streams.child("fig2_pairs")
    idx = rng.choice(len(pairs), size=n_pairs, replace=False)
    tracked = [pairs[i] for i in sorted(idx)]
    rec = TraceRecorder(
        sc.engine,
        sc.cluster,
        period_s=series_period_s,
        network=sc.network,
        pairs=tracked,
    )
    sc.engine.run(series_hours * 3600.0)
    trace = rec.finish()
    assert trace.pair_bandwidth is not None
    return Fig2Result(
        nodes=list(nodes),
        mean_bandwidth=acc,
        pair_names=[tuple(p) for p in trace.pairs],
        pair_times_h=trace.times / 3600.0,
        pair_series=trace.pair_bandwidth,
    )


# ----------------------------------------------------------------------
# Figures 4/5 (miniMD) and 6 (miniFE) — strong-scaling comparisons
# ----------------------------------------------------------------------
def fig4(
    seed: int = 0,
    *,
    proc_counts: Sequence[int] = MINIMD_PROCS,
    sizes: Sequence[int] = MINIMD_SIZES,
    repeats: int = 5,
    gap_s: float = 600.0,
    scenario: Scenario | None = None,
) -> GridResult:
    """Reproduce Figure 4: miniMD strong scaling under the four policies."""
    sc = scenario or paper_scenario(seed=seed)
    return run_grid(
        sc,
        lambda s: MiniMD(s),
        proc_counts=proc_counts,
        sizes=sizes,
        ppn=4,
        repeats=repeats,
        gap_s=gap_s,
    )


def render_fig4(grid: GridResult) -> str:
    return comparison_table(
        grid.times,
        grid.proc_counts,
        grid.sizes,
        title=f"Figure 4 — {grid.app_name} mean execution time (s), "
        f"{grid.repeats} repeats",
    )


def save_grid_svgs(grid: GridResult, directory, *, prefix: str) -> list[str]:
    """One strong-scaling line chart per process count (Fig 4/6 layout)."""
    from pathlib import Path

    from repro.viz.svg import line_chart

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for n in grid.proc_counts:
        path = directory / f"{prefix}_procs{n}.svg"
        line_chart(
            {
                policy: (
                    list(grid.sizes),
                    [grid.mean_time(policy, n, s) for s in grid.sizes],
                )
                for policy in grid.policies
            },
            title=f"{grid.app_name} — {n} processes",
            x_label="problem size",
            y_label="execution time (s)",
            path=path,
        )
        paths.append(str(path))
    return paths


def save_fig5_svg(loads: Mapping[str, float], path) -> str:
    """Figure 5 as a bar chart."""
    from repro.viz.svg import bar_chart

    return bar_chart(
        dict(loads),
        title="Figure 5 — CPU load per logical core at allocation",
        y_label="load / core",
        path=path,
    )


def fig5(grid: GridResult) -> dict[str, float]:
    """Figure 5: average CPU load per logical core per policy."""
    return {p: grid.mean_load_per_core(p) for p in grid.policies}


def render_fig5(loads: Mapping[str, float]) -> str:
    rows = [[p, float(v)] for p, v in loads.items()]
    return format_table(
        ["policy", "avg CPU load / logical core"],
        rows,
        title="Figure 5 — average CPU load per logical core at allocation",
    )


def fig6(
    seed: int = 0,
    *,
    proc_counts: Sequence[int] = MINIFE_PROCS,
    sizes: Sequence[int] = MINIFE_SIZES,
    repeats: int = 5,
    gap_s: float = 600.0,
    scenario: Scenario | None = None,
) -> GridResult:
    """Reproduce Figure 6: miniFE strong scaling under the four policies."""
    sc = scenario or paper_scenario(seed=seed)
    return run_grid(
        sc,
        lambda nx: MiniFE(nx),
        proc_counts=proc_counts,
        sizes=sizes,
        ppn=4,
        repeats=repeats,
        gap_s=gap_s,
    )


def render_fig6(grid: GridResult) -> str:
    return comparison_table(
        grid.times,
        grid.proc_counts,
        grid.sizes,
        title=f"Figure 6 — {grid.app_name} mean execution time (s), "
        f"{grid.repeats} repeats",
    )


# ----------------------------------------------------------------------
# Figure 7 — one allocation instance in detail
# ----------------------------------------------------------------------
@dataclass
class Fig7Result:
    """Bandwidth heatmap + per-policy selections + CPU-load row."""

    nodes: list[str]
    bandwidth_complement: np.ndarray
    cpu_load: list[float]
    selections: Mapping[str, tuple[str, ...]]

    def save_svg(self, path) -> str:
        """Figure 7's bandwidth-complement heatmap as SVG."""
        from repro.viz.svg import heatmap

        return heatmap(
            self.bandwidth_complement.tolist(),
            labels=self.nodes,
            title="Figure 7 — bandwidth complement (dark = congested)",
            path=path,
        )

    def render(self) -> str:
        out = [
            "Figure 7 — complement of available P2P bandwidth "
            "(dark = low available bandwidth)",
            ascii_heatmap(self.bandwidth_complement, labels=self.nodes),
            "",
            "node selections:",
        ]
        for policy, chosen in self.selections.items():
            marks = "".join(
                "X" if n in chosen else "." for n in self.nodes
            )
            out.append(f"  {policy:>20s} {marks}")
        loads = " ".join(f"{v:4.1f}" for v in self.cpu_load)
        out.append(f"  {'CPU load':>20s} {loads}")
        return "\n".join(out)


def fig7(
    seed: int = 0,
    *,
    n_processes: int = 32,
    ppn: int = 4,
    s: int = 16,
    scenario: Scenario | None = None,
) -> Fig7Result:
    """Reproduce Figure 7: cluster state + selections for one miniMD run."""
    from repro.experiments.tables import allocation_analysis

    analysis = allocation_analysis(
        seed=seed, n_processes=n_processes, ppn=ppn, s=s, scenario=scenario
    )
    snap = analysis.snapshot
    nodes = [n for n in snap.names]
    n = len(nodes)
    bwc = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            key = (nodes[i], nodes[j]) if nodes[i] <= nodes[j] else (nodes[j], nodes[i])
            if key in snap.bandwidth_mbs:
                val = snap.bandwidth_complement(*key)
            else:
                val = np.nan
            bwc[i, j] = bwc[j, i] = val
    np.fill_diagonal(bwc, np.nan)
    return Fig7Result(
        nodes=nodes,
        bandwidth_complement=bwc,
        cpu_load=[snap.nodes[x].cpu_load["now"] for x in nodes],
        selections={p: r.allocation.nodes for p, r in analysis.runs.items()},
    )
