"""Evaluation harness: scenarios, runners, metrics, and the drivers that
regenerate every table and figure of the paper (see DESIGN.md §4)."""

from repro.experiments.metrics import (
    coefficient_of_variation,
    gain_percent,
    gain_stats,
)
from repro.experiments.runner import (
    ComparisonRun,
    GridResult,
    compare_policies,
    run_grid,
)
from repro.experiments.scenario import Scenario, paper_scenario, small_scenario

__all__ = [
    "coefficient_of_variation",
    "gain_percent",
    "gain_stats",
    "ComparisonRun",
    "GridResult",
    "compare_policies",
    "run_grid",
    "Scenario",
    "paper_scenario",
    "small_scenario",
]
