"""The paper's contribution: network- and load-aware resource allocation."""

from repro.core.arrays import (
    LoadState,
    addition_cost_matrix,
    best_candidate_fast,
    generate_all_candidates_fast,
    load_state,
    score_candidates_fast,
    select_best_fast,
)
from repro.core.attributes import ATTRIBUTE_NAMES, ATTRIBUTES, Attribute, Criterion
from repro.core.broker import BrokerResult, ResourceBroker, WaitRecommended
from repro.core.candidate import (
    CandidateSubgraph,
    addition_costs,
    generate_all_candidates,
    generate_candidate,
)
from repro.core.compute_load import attribute_costs, compute_loads
from repro.core.effective_procs import effective_proc_count, effective_proc_counts
from repro.core.network_load import (
    group_network_load,
    network_loads,
    total_group_network_load,
)
from repro.core.policies import (
    PAPER_POLICIES,
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
    BruteForcePolicy,
    HierarchicalNetworkLoadAwarePolicy,
    LoadAwarePolicy,
    NetworkLoadAwarePolicy,
    RandomPolicy,
    SequentialPolicy,
)
from repro.core.selection import ScoredCandidate, score_candidates, select_best
from repro.core.weights import (
    MINIFE_TRADEOFF,
    MINIMD_TRADEOFF,
    PAPER_COMPUTE_WEIGHTS,
    ComputeWeights,
    NetworkWeights,
    TradeOff,
)

__all__ = [
    "LoadState",
    "addition_cost_matrix",
    "best_candidate_fast",
    "generate_all_candidates_fast",
    "load_state",
    "score_candidates_fast",
    "select_best_fast",
    "ATTRIBUTE_NAMES",
    "ATTRIBUTES",
    "Attribute",
    "Criterion",
    "BrokerResult",
    "ResourceBroker",
    "WaitRecommended",
    "CandidateSubgraph",
    "addition_costs",
    "generate_all_candidates",
    "generate_candidate",
    "attribute_costs",
    "compute_loads",
    "effective_proc_count",
    "effective_proc_counts",
    "group_network_load",
    "network_loads",
    "total_group_network_load",
    "PAPER_POLICIES",
    "Allocation",
    "AllocationError",
    "AllocationPolicy",
    "AllocationRequest",
    "BruteForcePolicy",
    "HierarchicalNetworkLoadAwarePolicy",
    "LoadAwarePolicy",
    "NetworkLoadAwarePolicy",
    "RandomPolicy",
    "SequentialPolicy",
    "ScoredCandidate",
    "score_candidates",
    "select_best",
    "MINIFE_TRADEOFF",
    "MINIMD_TRADEOFF",
    "PAPER_COMPUTE_WEIGHTS",
    "ComputeWeights",
    "NetworkWeights",
    "TradeOff",
]
