"""Node attribute registry — Table 1 of the paper.

Each attribute has an *optimization criterion*: ``minimize`` (low is good:
CPU load, CPU utilization, data-flow rate, current users) or ``maximize``
(high is good: core count, frequency, total/available memory).  Dynamic
attributes blend the 1/5/15-minute running means so that spiky
instantaneous readings don't dominate the decision, matching the paper's
"running mean of the last 1, 5, and 15 minutes ... allows our allocator
to make a more informed selection".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.monitor.snapshot import NodeView


class Criterion(enum.Enum):
    """Whether lower or higher values make a node preferable."""

    MINIMIZE = "minimize"
    MAXIMIZE = "maximize"


def _blend(stats: Mapping[str, float]) -> float:
    """Average the 1/5/15-minute means of a dynamic attribute."""
    return (stats["m1"] + stats["m5"] + stats["m15"]) / 3.0


@dataclass(frozen=True)
class Attribute:
    """One row of Table 1: name, criterion, and a NodeView extractor."""

    name: str
    criterion: Criterion
    extract: Callable[[NodeView], float]
    static: bool = False


#: The full Table 1 registry, in the paper's order.
ATTRIBUTES: tuple[Attribute, ...] = (
    Attribute("core_count", Criterion.MAXIMIZE, lambda v: float(v.cores), static=True),
    Attribute(
        "cpu_frequency",
        Criterion.MAXIMIZE,
        lambda v: float(v.frequency_ghz),
        static=True,
    ),
    Attribute(
        "total_memory", Criterion.MAXIMIZE, lambda v: float(v.memory_gb), static=True
    ),
    Attribute("users", Criterion.MINIMIZE, lambda v: float(v.users)),
    Attribute("cpu_load", Criterion.MINIMIZE, lambda v: _blend(v.cpu_load)),
    Attribute("cpu_util", Criterion.MINIMIZE, lambda v: _blend(v.cpu_util)),
    Attribute(
        "flow_rate", Criterion.MINIMIZE, lambda v: _blend(v.flow_rate_mbs)
    ),
    Attribute(
        "available_memory",
        Criterion.MAXIMIZE,
        lambda v: _blend(v.available_memory_gb),
    ),
)

ATTRIBUTE_NAMES: tuple[str, ...] = tuple(a.name for a in ATTRIBUTES)

_BY_NAME: dict[str, Attribute] = {a.name: a for a in ATTRIBUTES}


def get_attribute(name: str) -> Attribute:
    """Look up an attribute by name; raises ``KeyError`` with choices."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown attribute {name!r}; choose from {ATTRIBUTE_NAMES}"
        ) from None


def extract_matrix(views: Mapping[str, NodeView]) -> dict[str, dict[str, float]]:
    """Raw attribute values: ``{attribute: {node: value}}``."""
    return {
        a.name: {n: a.extract(v) for n, v in views.items()} for a in ATTRIBUTES
    }
