"""Weight profiles for the SAW combination and the α/β trade-off.

All empirical values come from §5 of the paper:

* compute-load weights: 0.3 CPU load, 0.2 CPU utilization, 0.2 node
  bandwidth (data-flow rate), 0.1 used memory, 0.1 logical core count,
  0.05 CPU clock speed, 0.05 total physical memory;
* network-load weights: ``w_lt = 0.25``, ``w_bw = 0.75``;
* α/β: 0.3/0.7 for miniMD, 0.4/0.6 for miniFE (α weighs compute,
  β weighs network; α + β = 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.attributes import ATTRIBUTE_NAMES

_TOL = 1e-9


@dataclass(frozen=True)
class ComputeWeights:
    """Relative weights ``w_a`` of Equation 1, keyed by attribute name.

    Unspecified attributes get weight 0.  Weights must be non-negative
    and are used as given (the paper's add to 1; we don't force that so
    ablations can scale them).
    """

    weights: Mapping[str, float] = field(
        default_factory=lambda: dict(PAPER_COMPUTE_WEIGHTS)
    )

    def __post_init__(self) -> None:
        for name, w in self.weights.items():
            if name not in ATTRIBUTE_NAMES:
                raise KeyError(
                    f"unknown attribute {name!r}; choose from {ATTRIBUTE_NAMES}"
                )
            if w < 0:
                raise ValueError(f"weight for {name!r} must be non-negative, got {w}")
        if all(w == 0 for w in self.weights.values()):
            raise ValueError("at least one compute weight must be positive")

    def get(self, name: str) -> float:
        return float(self.weights.get(name, 0.0))


#: §5: the paper's empirically chosen Equation-1 weights.
PAPER_COMPUTE_WEIGHTS: dict[str, float] = {
    "cpu_load": 0.30,
    "cpu_util": 0.20,
    "flow_rate": 0.20,         # "node bandwidth" usage in the paper's wording
    "available_memory": 0.10,  # "used memory" — equivalent criterion direction
    "core_count": 0.10,
    "cpu_frequency": 0.05,
    "total_memory": 0.05,
}


@dataclass(frozen=True)
class NetworkWeights:
    """``w_lt`` and ``w_bw`` of Equation 2; must sum to 1."""

    w_lt: float = 0.25
    w_bw: float = 0.75

    def __post_init__(self) -> None:
        if self.w_lt < 0 or self.w_bw < 0:
            raise ValueError(
                f"network weights must be non-negative: {self.w_lt}, {self.w_bw}"
            )
        if abs(self.w_lt + self.w_bw - 1.0) > 1e-6:
            raise ValueError(
                f"w_lt + w_bw must equal 1, got {self.w_lt + self.w_bw}"
            )


@dataclass(frozen=True)
class TradeOff:
    """The α/β pair of Equation 4 (and Algorithm 1's addition cost).

    α weighs compute cost (high for compute-bound jobs), β weighs network
    cost (high for communication-bound jobs); α + β = 1.
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError(
                f"alpha/beta must be non-negative: {self.alpha}, {self.beta}"
            )
        if abs(self.alpha + self.beta - 1.0) > 1e-6:
            raise ValueError(
                f"alpha + beta must equal 1, got {self.alpha + self.beta}"
            )

    @classmethod
    def from_alpha(cls, alpha: float) -> "TradeOff":
        return cls(alpha=alpha, beta=1.0 - alpha)


#: §5 empirical trade-offs for the two evaluation applications.
MINIMD_TRADEOFF = TradeOff(alpha=0.3, beta=0.7)
MINIFE_TRADEOFF = TradeOff(alpha=0.4, beta=0.6)
