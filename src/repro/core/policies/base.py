"""Allocation policy interface and common data types."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Collection, Mapping

import numpy as np

from repro.core.weights import ComputeWeights, NetworkWeights, TradeOff
from repro.monitor.snapshot import ClusterSnapshot


class AllocationError(RuntimeError):
    """Raised when a request cannot be satisfied (no nodes, bad data)."""


@dataclass(frozen=True)
class AllocationRequest:
    """What the user asks for (the paper's mpiexec-style request).

    ``n_processes`` is mandatory; ``ppn`` (processes per node) optionally
    pins how many ranks each node hosts — the paper's experiments use
    ``ppn = 4``.  The trade-off and weight profiles parameterize the
    network-and-load-aware policy; baselines ignore what they don't use.
    """

    n_processes: int
    ppn: int | None = None
    tradeoff: TradeOff = field(default_factory=lambda: TradeOff(0.3, 0.7))
    compute_weights: ComputeWeights = field(default_factory=ComputeWeights)
    network_weights: NetworkWeights = field(default_factory=NetworkWeights)

    def __post_init__(self) -> None:
        if self.n_processes <= 0:
            raise ValueError(
                f"n_processes must be positive, got {self.n_processes}"
            )
        if self.ppn is not None and self.ppn <= 0:
            raise ValueError(f"ppn must be positive, got {self.ppn}")

    @property
    def nodes_needed(self) -> int | None:
        """Exact node count when ``ppn`` is pinned, else ``None``."""
        if self.ppn is None:
            return None
        return math.ceil(self.n_processes / self.ppn)


@dataclass(frozen=True)
class Allocation:
    """A policy's answer: which nodes host how many processes."""

    policy: str
    nodes: tuple[str, ...]
    procs: Mapping[str, int]
    request: AllocationRequest
    snapshot_time: float
    metadata: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("allocation must contain at least one node")
        if set(self.procs) != set(self.nodes):
            raise ValueError("procs keys must exactly match nodes")
        if any(c <= 0 for c in self.procs.values()):
            raise ValueError("every allocated node must host >= 1 process")
        total = sum(self.procs.values())
        if total != self.request.n_processes:
            raise ValueError(
                f"allocation hosts {total} processes, "
                f"request wants {self.request.n_processes}"
            )

    def hostfile(self) -> str:
        """MPICH-style hostfile content (``host:count`` lines)."""
        return "\n".join(f"{n}:{self.procs[n]}" for n in self.nodes) + "\n"

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)


def distribute(
    nodes: list[str], n_processes: int, ppn: int | None
) -> dict[str, int]:
    """Spread ``n_processes`` over ``nodes``: ``ppn`` each, or balanced.

    With ``ppn`` set, nodes fill in order at ``ppn`` each (the last node
    takes the remainder).  Without it, processes are dealt round-robin so
    counts differ by at most one.
    """
    if not nodes:
        raise AllocationError("no nodes to distribute processes over")
    procs: dict[str, int] = {}
    if ppn is not None:
        remaining = n_processes
        for n in nodes:
            take = min(ppn, remaining)
            if take > 0:
                procs[n] = take
                remaining -= take
        if remaining > 0:
            # Oversubscribe round-robin like Algorithm 1 lines 12-13.
            i = 0
            while remaining > 0:
                n = nodes[i % len(nodes)]
                procs[n] = procs.get(n, 0) + 1
                remaining -= 1
                i += 1
    else:
        base, extra = divmod(n_processes, len(nodes))
        for i, n in enumerate(nodes):
            count = base + (1 if i < extra else 0)
            if count > 0:
                procs[n] = count
    return {n: c for n, c in procs.items() if c > 0}


class AllocationPolicy(ABC):
    """Strategy interface: snapshot + request → allocation."""

    #: short identifier used in result tables
    name: str = "abstract"

    @abstractmethod
    def allocate(
        self,
        snapshot: ClusterSnapshot,
        request: AllocationRequest,
        *,
        rng: np.random.Generator | None = None,
        exclude: Collection[str] | None = None,
    ) -> Allocation:
        """Choose nodes for the request. Stochastic policies need ``rng``.

        ``exclude`` masks nodes out of consideration (e.g. nodes busy
        with exclusively scheduled jobs) without the caller having to
        rebuild a filtered snapshot — the policy normalizes loads over
        exactly the remaining node set, as if the snapshot only
        contained those nodes.
        """

    def _usable_nodes(
        self,
        snapshot: ClusterSnapshot,
        exclude: Collection[str] | None = None,
    ) -> list[str]:
        """Nodes that are live, monitored, and not masked out."""
        live = set(snapshot.livehosts)
        if exclude:
            live -= set(exclude)
        usable = [n for n in snapshot.nodes if n in live]
        if not usable:
            raise AllocationError("no live nodes with monitoring data")
        return usable
