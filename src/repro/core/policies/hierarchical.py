"""Hierarchical network-and-load-aware allocation (§3.3.2 / §6 extension).

The paper: "our solution may need to be adapted for larger scale by
grouping the nodes based on cluster topology and calculating inter-group
bandwidth/latency so that P2P bandwidth/latency calculation requires less
amount of communication."

This policy implements that adaptation:

1. group nodes by their leaf switch;
2. summarize each group by its members' compute loads and the group's
   average intra-pair network load, and each group pair by the average
   network load over measured cross pairs (O(G²) summaries instead of
   O(V²) pairs at decision time);
3. run the greedy candidate generation *over groups* — one candidate per
   starting group, grown by minimal α/β-weighted addition cost;
4. fill the process request from the chosen groups' least-loaded nodes.

Complexity is O(G² log G + V log V) per allocation versus the flat
algorithm's O(V² log V); quality on switch-structured clusters is close
(see ``benchmarks/bench_ablation_hierarchical.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Collection, Mapping, Sequence

import numpy as np

from repro.core.arrays import load_state
from repro.core.network_load import PairKey
from repro.core.policies.base import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
)
from repro.core.weights import TradeOff
from repro.monitor.snapshot import ClusterSnapshot


@dataclass(frozen=True)
class GroupSummary:
    """Aggregated view of one topology group (leaf switch)."""

    name: str
    nodes: tuple[str, ...]
    mean_compute_load: float
    intra_network_load: float
    capacity: int


def summarize_groups(
    groups: Mapping[str, Sequence[str]],
    cl: Mapping[str, float],
    nl: Mapping[PairKey, float],
    pc: Mapping[str, int],
) -> tuple[dict[str, GroupSummary], dict[tuple[str, str], float]]:
    """Build per-group and per-group-pair summaries."""
    worst_nl = max(nl.values()) if nl else 0.0
    summaries: dict[str, GroupSummary] = {}
    for gname, members in groups.items():
        members = tuple(members)
        if not members:
            continue
        intra_pairs = [
            nl.get((a, b) if a <= b else (b, a), worst_nl)
            for a, b in itertools.combinations(members, 2)
        ]
        summaries[gname] = GroupSummary(
            name=gname,
            nodes=members,
            mean_compute_load=float(np.mean([cl[m] for m in members])),
            intra_network_load=float(np.mean(intra_pairs)) if intra_pairs else 0.0,
            capacity=int(sum(max(pc[m], 0) for m in members)),
        )
    cross: dict[tuple[str, str], float] = {}
    names = sorted(summaries)
    for ga, gb in itertools.combinations(names, 2):
        vals = [
            nl.get((a, b) if a <= b else (b, a), worst_nl)
            for a in summaries[ga].nodes
            for b in summaries[gb].nodes
        ]
        cross[(ga, gb)] = float(np.mean(vals)) if vals else worst_nl
    return summaries, cross


class HierarchicalNetworkLoadAwarePolicy(AllocationPolicy):
    """Group-granular variant of the paper's heuristic."""

    name = "hierarchical_network_load_aware"

    def __init__(self, *, load_key: str = "m1") -> None:
        self.load_key = load_key

    # ------------------------------------------------------------------
    def allocate(
        self,
        snapshot: ClusterSnapshot,
        request: AllocationRequest,
        *,
        rng: np.random.Generator | None = None,
        exclude: Collection[str] | None = None,
    ) -> Allocation:
        usable = self._usable_nodes(snapshot, exclude)
        # The NL half shares the snapshot-keyed LoadState cache with the
        # flat policy: Equations 1-3 are computed (and memoized) once per
        # (snapshot, node subset, weights) no matter which policy asks.
        state = load_state(
            snapshot,
            nodes=usable,
            compute_weights=request.compute_weights,
            network_weights=request.network_weights,
            ppn=request.ppn,
            load_key=self.load_key,
        )
        cl, nl, pc = state.cl, state.nl, state.pc

        groups = self._groups_from_network(snapshot, usable)
        summaries, cross = summarize_groups(groups, cl, nl, pc)
        if not summaries:
            raise AllocationError("no topology groups with usable nodes")

        best_groups = self._select_groups(
            summaries, cross, request.n_processes, request.tradeoff
        )
        nodes, procs = self._fill_from_groups(
            best_groups, summaries, cl, pc, request.n_processes
        )
        return Allocation(
            policy=self.name,
            nodes=tuple(nodes),
            procs=procs,
            request=request,
            snapshot_time=snapshot.time,
            metadata={"groups_used": float(len(best_groups))},
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _groups_from_network(
        snapshot: ClusterSnapshot, usable: Sequence[str]
    ) -> dict[str, list[str]]:
        """Topology groups: reported leaf switch, else inferred.

        The monitor knows each node's switch statically (the paper's
        "grouping the nodes based on cluster topology"); when every view
        carries it, group by switch directly.  Views lacking topology
        info fall back to clustering by peak-bandwidth adjacency: pairs
        achieving the global top peak are assumed co-located.  This
        fallback degenerates (one big group) on clusters whose uplinks
        are not the peak bottleneck — switch labels are the reliable
        source.
        """
        switches = {n: snapshot.nodes[n].switch for n in usable}
        if all(sw is not None for sw in switches.values()):
            groups: dict[str, list[str]] = {}
            for n in usable:
                groups.setdefault(f"switch:{switches[n]}", []).append(n)
            return groups
        # Union-find over pairs achieving the global peak bandwidth.
        parent = {n: n for n in usable}

        def find(x: str) -> str:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        peaks = [
            snapshot.peak_bandwidth_mbs.get((a, b) if a <= b else (b, a))
            for a, b in itertools.combinations(usable, 2)
        ]
        peaks = [p for p in peaks if p is not None]
        if peaks:
            top = max(peaks)
            for a, b in itertools.combinations(usable, 2):
                key = (a, b) if a <= b else (b, a)
                if snapshot.peak_bandwidth_mbs.get(key) == top:
                    union(a, b)
        groups: dict[str, list[str]] = {}
        for n in usable:
            groups.setdefault(f"group:{find(n)}", []).append(n)
        return groups

    @staticmethod
    def _select_groups(
        summaries: Mapping[str, GroupSummary],
        cross: Mapping[tuple[str, str], float],
        n_processes: int,
        tradeoff: TradeOff,
    ) -> list[str]:
        """Greedy candidate generation at group granularity."""
        names = sorted(summaries)
        worst_cross = max(cross.values()) if cross else 0.0

        def pair_load(a: str, b: str) -> float:
            key = (a, b) if a <= b else (b, a)
            return cross.get(key, worst_cross)

        best: list[str] | None = None
        best_cost = float("inf")
        for start in names:
            chosen = [start]
            capacity = summaries[start].capacity
            cost = (
                tradeoff.alpha * summaries[start].mean_compute_load
                + tradeoff.beta * summaries[start].intra_network_load
            )
            remaining = [g for g in names if g != start]
            while capacity < n_processes and remaining:
                def addition(g: str) -> float:
                    link = float(
                        np.mean([pair_load(g, c) for c in chosen])
                    )
                    return (
                        tradeoff.alpha * summaries[g].mean_compute_load
                        + tradeoff.beta
                        * (summaries[g].intra_network_load + link) / 2.0
                    )

                nxt = min(remaining, key=lambda g: (addition(g), g))
                chosen.append(nxt)
                capacity += summaries[nxt].capacity
                cost += addition(nxt)
                remaining.remove(nxt)
            if capacity >= n_processes or not remaining:
                normalized = cost / len(chosen)
                if normalized < best_cost:
                    best_cost = normalized
                    best = chosen
        if best is None:  # pragma: no cover - defensive
            raise AllocationError("group selection failed")
        return best

    @staticmethod
    def _fill_from_groups(
        group_names: Sequence[str],
        summaries: Mapping[str, GroupSummary],
        cl: Mapping[str, float],
        pc: Mapping[str, int],
        n_processes: int,
    ) -> tuple[list[str], dict[str, int]]:
        """Take the least-loaded nodes of the chosen groups, in order."""
        nodes: list[str] = []
        procs: dict[str, int] = {}
        allocated = 0
        for gname in group_names:
            for node in sorted(
                summaries[gname].nodes, key=lambda n: (cl[n], n)
            ):
                if allocated >= n_processes:
                    break
                take = min(max(pc[node], 0), n_processes - allocated)
                if take <= 0:
                    continue
                nodes.append(node)
                procs[node] = take
                allocated += take
        if allocated < n_processes:
            if not nodes:
                raise AllocationError("no capacity in selected groups")
            i = 0
            while allocated < n_processes:  # oversubscribe round-robin
                node = nodes[i % len(nodes)]
                procs[node] += 1
                allocated += 1
                i += 1
        return nodes, procs
