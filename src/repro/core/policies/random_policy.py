"""Random allocation — baseline 1 of §5.

"Random allocation randomly selects the required number of nodes from
active nodes."  This models the typical user who writes an arbitrary
hostfile without checking the cluster state.
"""

from __future__ import annotations

import math
from typing import Collection

import numpy as np

from repro.core.policies.base import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
    distribute,
)
from repro.monitor.snapshot import ClusterSnapshot


class RandomPolicy(AllocationPolicy):
    """Uniformly random node selection among live nodes."""

    name = "random"

    def allocate(
        self,
        snapshot: ClusterSnapshot,
        request: AllocationRequest,
        *,
        rng: np.random.Generator | None = None,
        exclude: Collection[str] | None = None,
    ) -> Allocation:
        if rng is None:
            raise AllocationError("RandomPolicy requires an rng")
        usable = self._usable_nodes(snapshot, exclude)
        if request.ppn is not None:
            k = min(request.nodes_needed, len(usable))
        else:
            # Without ppn, spread over as many nodes as a 4-ppn run would
            # use (a neutral default for a baseline with no load model).
            k = min(max(1, math.ceil(request.n_processes / 4)), len(usable))
        chosen_idx = rng.choice(len(usable), size=k, replace=False)
        chosen = [usable[i] for i in sorted(chosen_idx)]
        procs = distribute(chosen, request.n_processes, request.ppn)
        nodes = tuple(n for n in chosen if n in procs)
        return Allocation(
            policy=self.name,
            nodes=nodes,
            procs=procs,
            request=request,
            snapshot_time=snapshot.time,
        )
