"""Brute-force optimal selection (not in the paper — quality reference).

Enumerates every k-node subset, scores each with the Equation-4 objective,
and returns the minimum.  Exponential: only usable on small clusters, but
it bounds how far the paper's O(V² log V) greedy heuristic is from the
optimum (see the greedy-vs-optimal ablation bench).
"""

from __future__ import annotations

import itertools
import math
from typing import Collection

import numpy as np

from repro.core.compute_load import compute_loads
from repro.core.network_load import network_loads, total_group_network_load
from repro.core.policies.base import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
    distribute,
)
from repro.monitor.snapshot import ClusterSnapshot

#: refuse to enumerate more subsets than this
MAX_SUBSETS = 2_000_000


class BruteForcePolicy(AllocationPolicy):
    """Exhaustive search over fixed-size node groups."""

    name = "brute_force"

    def allocate(
        self,
        snapshot: ClusterSnapshot,
        request: AllocationRequest,
        *,
        rng: np.random.Generator | None = None,
        exclude: Collection[str] | None = None,
    ) -> Allocation:
        if request.ppn is None:
            raise AllocationError(
                "BruteForcePolicy needs ppn to know the group size"
            )
        usable = self._usable_nodes(snapshot, exclude)
        k = min(request.nodes_needed, len(usable))
        n_subsets = math.comb(len(usable), k)
        if n_subsets > MAX_SUBSETS:
            raise AllocationError(
                f"{n_subsets} subsets exceed the brute-force cap {MAX_SUBSETS}"
            )
        cl = compute_loads(snapshot, request.compute_weights, nodes=usable)
        nl = network_loads(snapshot, request.network_weights, nodes=usable)
        tradeoff = request.tradeoff

        # Equation 4 ranks by α·C/ΣC + β·N/ΣN where ΣC, ΣN are constants
        # over the candidate set, so the argmin equals that of
        # α'·C + β'·N with α' = α/ΣC, β' = β/ΣN.  Exact sums would need a
        # second O(n_subsets) pass; estimating them from the mean
        # candidate preserves the ranking up to the α'/β' ratio and keeps
        # the search single-pass.
        groups = itertools.combinations(usable, k)
        best_nodes: tuple[str, ...] | None = None
        best_score = math.inf
        # Deterministic sample to set the normalizers.
        mean_c = sum(cl.values()) / len(cl) * k
        # Hoisted: the default penalty rescans all O(V²) measured pairs
        # per total_group_network_load call; compute it once per search.
        missing_penalty = max(nl.values()) if nl else 0.0
        sample = list(itertools.islice(itertools.combinations(usable, k), 50))
        mean_n = (
            sum(
                total_group_network_load(
                    nl, g, missing_penalty=missing_penalty
                )
                for g in sample
            )
            / len(sample)
            if sample
            else 1.0
        )
        wc = tradeoff.alpha / mean_c if mean_c > 0 else 0.0
        wn = tradeoff.beta / mean_n if mean_n > 0 else 0.0
        for group in groups:
            c = sum(cl[u] for u in group)
            n = total_group_network_load(
                nl, group, missing_penalty=missing_penalty
            )
            score = wc * c + wn * n
            if score < best_score:
                best_score = score
                best_nodes = group
        assert best_nodes is not None
        chosen = list(best_nodes)
        procs = distribute(chosen, request.n_processes, request.ppn)
        nodes = tuple(n for n in chosen if n in procs)
        return Allocation(
            policy=self.name,
            nodes=nodes,
            procs=procs,
            request=request,
            snapshot_time=snapshot.time,
            metadata={"objective": best_score},
        )
