"""Sequential allocation — baseline 2 of §5.

"Sequential allocation first selects a random node and adds neighboring
nodes (topologically) as required.  This is because users often tend to
select consecutive nodes."  Node numbering in the paper's cluster follows
physical proximity, so consecutive names are topological neighbours.
"""

from __future__ import annotations

import math
from typing import Collection

import numpy as np

from repro.core.policies.base import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
    distribute,
)
from repro.monitor.snapshot import ClusterSnapshot


class SequentialPolicy(AllocationPolicy):
    """Random start, then consecutive (proximity-ordered) nodes, wrapping."""

    name = "sequential"

    def allocate(
        self,
        snapshot: ClusterSnapshot,
        request: AllocationRequest,
        *,
        rng: np.random.Generator | None = None,
        exclude: Collection[str] | None = None,
    ) -> Allocation:
        if rng is None:
            raise AllocationError("SequentialPolicy requires an rng")
        usable = self._usable_nodes(snapshot, exclude)  # keeps spec order
        if request.ppn is not None:
            k = min(request.nodes_needed, len(usable))
        else:
            k = min(max(1, math.ceil(request.n_processes / 4)), len(usable))
        start = int(rng.integers(len(usable)))
        chosen = [usable[(start + i) % len(usable)] for i in range(k)]
        procs = distribute(chosen, request.n_processes, request.ppn)
        nodes = tuple(n for n in chosen if n in procs)
        return Allocation(
            policy=self.name,
            nodes=nodes,
            procs=procs,
            request=request,
            snapshot_time=snapshot.time,
        )
