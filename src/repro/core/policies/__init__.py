"""Allocation policies: the paper's heuristic plus all §5 baselines."""

from repro.core.policies.base import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
    distribute,
)
from repro.core.policies.brute_force import BruteForcePolicy
from repro.core.policies.hierarchical import HierarchicalNetworkLoadAwarePolicy
from repro.core.policies.load_aware import LoadAwarePolicy
from repro.core.policies.network_load_aware import NetworkLoadAwarePolicy
from repro.core.policies.random_policy import RandomPolicy
from repro.core.policies.sequential import SequentialPolicy

#: The four policies evaluated in §5, keyed by their table names.
PAPER_POLICIES: dict[str, type[AllocationPolicy]] = {
    "random": RandomPolicy,
    "sequential": SequentialPolicy,
    "load_aware": LoadAwarePolicy,
    "network_load_aware": NetworkLoadAwarePolicy,
}

__all__ = [
    "Allocation",
    "AllocationError",
    "AllocationPolicy",
    "AllocationRequest",
    "distribute",
    "BruteForcePolicy",
    "HierarchicalNetworkLoadAwarePolicy",
    "LoadAwarePolicy",
    "NetworkLoadAwarePolicy",
    "RandomPolicy",
    "SequentialPolicy",
    "PAPER_POLICIES",
]
