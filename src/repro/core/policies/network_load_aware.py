"""Network-and-load-aware allocation — the paper's contribution (§3.3).

Pipeline: compute loads (Eq. 1) → network loads (Eq. 2) → effective
processor counts (Eq. 3) → |V| greedy candidates (Algorithm 1) → best
candidate by Equation 4 (Algorithm 2).
"""

from __future__ import annotations

import numpy as np

from repro.core.candidate import generate_all_candidates
from repro.core.compute_load import compute_loads
from repro.core.effective_procs import effective_proc_counts
from repro.core.network_load import network_loads
from repro.core.policies.base import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
)
from repro.core.selection import select_best
from repro.monitor.snapshot import ClusterSnapshot


class NetworkLoadAwarePolicy(AllocationPolicy):
    """The full Algorithm 1 + Algorithm 2 heuristic."""

    name = "network_load_aware"

    def __init__(self, *, load_key: str = "m1") -> None:
        #: which running mean feeds Equation 3 (m1/m5/m15/now)
        self.load_key = load_key

    def allocate(
        self,
        snapshot: ClusterSnapshot,
        request: AllocationRequest,
        *,
        rng: np.random.Generator | None = None,
    ) -> Allocation:
        usable = self._usable_nodes(snapshot)
        cl = compute_loads(snapshot, request.compute_weights, nodes=usable)
        nl = network_loads(snapshot, request.network_weights, nodes=usable)
        pc_all = effective_proc_counts(
            snapshot, ppn=request.ppn, load_key=self.load_key
        )
        pc = {n: pc_all[n] for n in usable}
        candidates = generate_all_candidates(
            usable, cl, nl, pc, request.n_processes, request.tradeoff
        )
        candidates = [c for c in candidates if c.nodes]
        if not candidates:
            raise AllocationError("candidate generation produced no groups")
        best = select_best(candidates, cl, nl, request.tradeoff)
        cand = best.candidate
        return Allocation(
            policy=self.name,
            nodes=cand.nodes,
            procs=dict(cand.procs),
            request=request,
            snapshot_time=snapshot.time,
            metadata={
                "total_cost": best.total,
                "compute_cost": best.compute_cost,
                "network_cost": best.network_cost,
                "compute_cost_normalized": best.compute_cost_normalized,
                "network_cost_normalized": best.network_cost_normalized,
            },
        )
