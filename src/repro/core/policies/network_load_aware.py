"""Network-and-load-aware allocation — the paper's contribution (§3.3).

Pipeline: compute loads (Eq. 1) → network loads (Eq. 2) → effective
processor counts (Eq. 3) → |V| greedy candidates (Algorithm 1) → best
candidate by Equation 4 (Algorithm 2).

Two implementations share this class: the vectorized array path
(:mod:`repro.core.arrays`, the default — one snapshot-keyed
:class:`~repro.core.arrays.LoadState` plus NumPy replays of both
algorithms) and the original dict-arithmetic path, kept as the reference
oracle (``use_arrays=False``).  Both return identical allocations; the
equivalence sweep in ``tests/core/test_array_equivalence.py`` enforces
it.
"""

from __future__ import annotations

from typing import Collection

import numpy as np

from repro.core.arrays import (
    PRUNE_KEEP_DEFAULT,
    PRUNE_THRESHOLD_DEFAULT,
    best_candidate_fast,
    load_state,
)
from repro.core.candidate import generate_all_candidates
from repro.core.compute_load import compute_loads
from repro.core.effective_procs import effective_proc_counts
from repro.core.network_load import network_loads
from repro.core.policies.base import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
)
from repro.core.selection import ScoredCandidate, select_best
from repro.monitor.snapshot import ClusterSnapshot


class NetworkLoadAwarePolicy(AllocationPolicy):
    """The full Algorithm 1 + Algorithm 2 heuristic."""

    name = "network_load_aware"

    def __init__(
        self,
        *,
        load_key: str = "m1",
        use_arrays: bool = True,
        prune_threshold: int | None = PRUNE_THRESHOLD_DEFAULT,
        prune_keep: int = PRUNE_KEEP_DEFAULT,
    ) -> None:
        #: which running mean feeds Equation 3 (m1/m5/m15/now)
        self.load_key = load_key
        #: vectorized fast path (default) vs. dict reference oracle
        self.use_arrays = use_arrays
        #: above this many usable nodes the array path prunes Algorithm-1
        #: seeds by a lower bound on their Equation-4 addition cost before
        #: the greedy grow (``None`` disables pruning entirely); at or
        #: below it the result stays bit-identical to the dict oracle
        self.prune_threshold = prune_threshold
        #: how many seeds survive pruning
        self.prune_keep = prune_keep

    def allocate(
        self,
        snapshot: ClusterSnapshot,
        request: AllocationRequest,
        *,
        rng: np.random.Generator | None = None,
        exclude: Collection[str] | None = None,
    ) -> Allocation:
        usable = self._usable_nodes(snapshot, exclude)
        if self.use_arrays:
            best = self._allocate_arrays(snapshot, request, usable)
        else:
            best = self._allocate_reference(snapshot, request, usable)
        cand = best.candidate
        return Allocation(
            policy=self.name,
            nodes=cand.nodes,
            procs=dict(cand.procs),
            request=request,
            snapshot_time=snapshot.time,
            metadata={
                "total_cost": best.total,
                "compute_cost": best.compute_cost,
                "network_cost": best.network_cost,
                "compute_cost_normalized": best.compute_cost_normalized,
                "network_cost_normalized": best.network_cost_normalized,
            },
        )

    # ------------------------------------------------------------------
    def _allocate_arrays(
        self,
        snapshot: ClusterSnapshot,
        request: AllocationRequest,
        usable: list[str],
    ) -> ScoredCandidate:
        state = load_state(
            snapshot,
            nodes=usable,
            compute_weights=request.compute_weights,
            network_weights=request.network_weights,
            ppn=request.ppn,
            load_key=self.load_key,
        )
        try:
            return best_candidate_fast(
                state,
                request.n_processes,
                request.tradeoff,
                prune_threshold=self.prune_threshold,
                prune_keep=self.prune_keep,
            )
        except ValueError as exc:
            raise AllocationError(str(exc)) from exc

    def _allocate_reference(
        self,
        snapshot: ClusterSnapshot,
        request: AllocationRequest,
        usable: list[str],
    ) -> ScoredCandidate:
        cl = compute_loads(snapshot, request.compute_weights, nodes=usable)
        nl = network_loads(snapshot, request.network_weights, nodes=usable)
        pc_all = effective_proc_counts(
            snapshot, ppn=request.ppn, load_key=self.load_key
        )
        pc = {n: pc_all[n] for n in usable}
        candidates = generate_all_candidates(
            usable, cl, nl, pc, request.n_processes, request.tradeoff
        )
        candidates = [c for c in candidates if c.nodes]
        if not candidates:
            raise AllocationError("candidate generation produced no groups")
        return select_best(candidates, cl, nl, request.tradeoff)
