"""Load-aware allocation — baseline 3 of §5.

"Load-aware allocation selects the group of nodes with minimal load."
We rank nodes by the Equation-1 compute load ``CL_v`` (the same metric
the full algorithm uses) and take the least-loaded ones, ignoring all
network state — this is exactly the policy the paper shows losing to the
network-aware algorithm at larger node counts.
"""

from __future__ import annotations

import math
from typing import Collection

import numpy as np

from repro.core.compute_load import compute_loads
from repro.core.policies.base import (
    Allocation,
    AllocationPolicy,
    AllocationRequest,
    distribute,
)
from repro.monitor.snapshot import ClusterSnapshot


class LoadAwarePolicy(AllocationPolicy):
    """Pick the k nodes with the smallest compute load."""

    name = "load_aware"

    def allocate(
        self,
        snapshot: ClusterSnapshot,
        request: AllocationRequest,
        *,
        rng: np.random.Generator | None = None,
        exclude: Collection[str] | None = None,
    ) -> Allocation:
        usable = self._usable_nodes(snapshot, exclude)
        loads = compute_loads(snapshot, request.compute_weights, nodes=usable)
        if request.ppn is not None:
            k = min(request.nodes_needed, len(usable))
        else:
            k = min(max(1, math.ceil(request.n_processes / 4)), len(usable))
        ranked = sorted(usable, key=lambda n: (loads[n], n))
        chosen = ranked[:k]
        procs = distribute(chosen, request.n_processes, request.ppn)
        nodes = tuple(n for n in chosen if n in procs)
        return Allocation(
            policy=self.name,
            nodes=nodes,
            procs=procs,
            request=request,
            snapshot_time=snapshot.time,
            metadata={"mean_compute_load": sum(loads[n] for n in nodes) / len(nodes)},
        )
