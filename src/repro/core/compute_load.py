"""Compute load — Equation 1 of the paper.

``CL_v = Σ_{a ∈ attributes} w_a · val_va`` where ``val_va`` is node ``v``'s
normalized, unidirectionalized (cost-direction) value of attribute ``a``.
Lower ``CL_v`` means the node is more attractive for new work.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.attributes import ATTRIBUTES, extract_matrix
from repro.core.normalization import to_cost
from repro.core.saw import saw_scores
from repro.core.weights import ComputeWeights
from repro.monitor.snapshot import ClusterSnapshot, NodeView


def attribute_costs(
    views: Mapping[str, NodeView], *, method: str = "mean"
) -> dict[str, dict[str, float]]:
    """Per-attribute normalized costs (the ``val_va`` of Equation 1)."""
    raw = extract_matrix(views)
    return {
        a.name: to_cost(raw[a.name], a.criterion, method=method)
        for a in ATTRIBUTES
    }


def compute_loads(
    snapshot: ClusterSnapshot,
    weights: ComputeWeights | None = None,
    *,
    nodes: list[str] | None = None,
    method: str = "mean",
) -> dict[str, float]:
    """``CL_v`` for every node in the snapshot (or the given subset).

    Normalization is performed over exactly the node set being ranked,
    as the paper does (values are divided by the sum across all
    candidate nodes).
    """
    weights = weights or ComputeWeights()
    views = snapshot.nodes
    if nodes is not None:
        missing = [n for n in nodes if n not in views]
        if missing:
            raise KeyError(f"nodes absent from snapshot: {missing}")
        views = {n: views[n] for n in nodes}
    if not views:
        return {}
    costs = attribute_costs(views, method=method)
    return saw_scores(costs, dict(weights.weights))
