"""Effective processor count — Equation 3 of the paper.

``pc_v = coreCount_v − ⌈Load_v⌉ % coreCount_v``

The modulo is taken verbatim from the paper: a node whose rounded-up load
is an exact multiple of its core count (including 0) contributes its full
core count.  The user's explicit ``ppn`` (processes per node) overrides
the formula, as §3.3.1 notes.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.monitor.snapshot import ClusterSnapshot


def effective_proc_count(cores: int, load: float) -> int:
    """Equation 3 for a single node."""
    if cores <= 0:
        raise ValueError(f"cores must be positive, got {cores}")
    if load < 0:
        raise ValueError(f"load must be non-negative, got {load}")
    return cores - math.ceil(load) % cores


def effective_proc_counts(
    snapshot: ClusterSnapshot,
    *,
    ppn: int | None = None,
    load_key: str = "m1",
) -> dict[str, int]:
    """The ``PC`` vector over all snapshot nodes.

    ``load_key`` selects which running mean feeds Equation 3 (the paper's
    daemons track 1/5/15-minute means; 1 minute is the default here).
    ``ppn`` overrides the formula with a fixed per-node count.
    """
    if ppn is not None:
        if ppn <= 0:
            raise ValueError(f"ppn must be positive, got {ppn}")
        return {n: ppn for n in snapshot.nodes}
    out: dict[str, int] = {}
    for name, view in snapshot.nodes.items():
        load = float(view.cpu_load[load_key])
        out[name] = effective_proc_count(view.cores, load)
    return out
