"""Candidate generation — Algorithm 1 of the paper.

For a starting node ``v``, every other node ``u`` gets an *addition cost*
``A_v(u) = α·CL(u) + β·NL(v, u)`` (and ``A_v(v) = 0``).  Nodes are added
in increasing addition cost until the requested process count is covered
by effective processor counts; any shortfall after exhausting the cluster
is assigned round-robin over the selected nodes.

Complexity is O(V log V) per candidate, O(V² log V) for all |V|
candidates — the figures given in §3.3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.network_load import PairKey
from repro.core.weights import TradeOff


@dataclass(frozen=True)
class CandidateSubgraph:
    """A candidate node group grown from ``start``.

    ``procs`` maps each selected node to the process count it would host;
    its values sum to the requested ``n``.
    """

    start: str
    nodes: tuple[str, ...]
    procs: Mapping[str, int]

    @property
    def total_procs(self) -> int:
        return sum(self.procs.values())


def addition_costs(
    start: str,
    nodes: Sequence[str],
    compute_load: Mapping[str, float],
    network_load: Mapping[PairKey, float],
    tradeoff: TradeOff,
    *,
    missing_penalty: float | None = None,
) -> dict[str, float]:
    """``A_v(u)`` for every node (``A_v(v) = 0`` per Algorithm 1 line 4)."""
    if start not in nodes:
        raise ValueError(f"start node {start!r} not among candidates")
    if missing_penalty is None:
        missing_penalty = max(network_load.values()) if network_load else 0.0
    costs: dict[str, float] = {}
    for u in nodes:
        if u == start:
            costs[u] = 0.0
            continue
        key = (start, u) if start <= u else (u, start)
        nl = network_load.get(key, missing_penalty)
        costs[u] = tradeoff.alpha * compute_load[u] + tradeoff.beta * nl
    return costs


def generate_candidate(
    start: str,
    nodes: Sequence[str],
    compute_load: Mapping[str, float],
    network_load: Mapping[PairKey, float],
    effective_procs: Mapping[str, int],
    n_processes: int,
    tradeoff: TradeOff,
    *,
    missing_penalty: float | None = None,
) -> CandidateSubgraph:
    """Algorithm 1: grow the candidate sub-graph for ``start``."""
    if n_processes <= 0:
        raise ValueError(f"n_processes must be positive, got {n_processes}")
    for u in nodes:
        if u not in compute_load:
            raise KeyError(f"no compute load for node {u!r}")
        if u not in effective_procs:
            raise KeyError(f"no effective proc count for node {u!r}")

    costs = addition_costs(
        start, nodes, compute_load, network_load, tradeoff,
        missing_penalty=missing_penalty,
    )
    # Stable sort: ties break on node order, keeping runs deterministic.
    order = sorted(nodes, key=lambda u: (costs[u], u != start))

    selected: list[str] = []
    procs: dict[str, int] = {}
    allocated = 0
    for u in order:
        if allocated >= n_processes:
            break
        take = min(max(effective_procs[u], 0), n_processes - allocated)
        selected.append(u)
        procs[u] = take
        allocated += take
    # Lines 12-13: cluster exhausted — round-robin the remainder over the
    # selected nodes (oversubscription).
    if allocated < n_processes:
        if not selected:
            raise ValueError("no nodes available to allocate on")
        i = 0
        while allocated < n_processes:
            u = selected[i % len(selected)]
            procs[u] = procs.get(u, 0) + 1
            allocated += 1
            i += 1
    # Drop nodes that ended up contributing zero processes (fully loaded
    # nodes selected early can have pc=0).
    final = [u for u in selected if procs.get(u, 0) > 0]
    procs = {u: procs[u] for u in final}
    return CandidateSubgraph(start=start, nodes=tuple(final), procs=procs)


def generate_all_candidates(
    nodes: Sequence[str],
    compute_load: Mapping[str, float],
    network_load: Mapping[PairKey, float],
    effective_procs: Mapping[str, int],
    n_processes: int,
    tradeoff: TradeOff,
) -> list[CandidateSubgraph]:
    """One candidate per possible starting node (the set ``C`` of §3.3.2)."""
    # Hoisted: the worst-pair penalty scans all O(V²) measured pairs, so
    # computing it once here instead of once per starting node saves a
    # factor of |V| on the dominant scan.
    missing_penalty = max(network_load.values()) if network_load else 0.0
    return [
        generate_candidate(
            v, nodes, compute_load, network_load, effective_procs,
            n_processes, tradeoff, missing_penalty=missing_penalty,
        )
        for v in nodes
    ]
