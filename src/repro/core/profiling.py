"""Deriving α/β from application profiles (§5 of the paper).

"These values were determined empirically. One may set these weights by
profiling an application and decide the relative weights on the basis of
the computation and communication times."

:func:`profile_app` runs an application model on a reference placement of
idle nodes and measures its communication fraction;
:func:`tradeoff_from_profile` maps that fraction to an α/β pair the way
the paper's empirical choices do (miniMD: 40–80 % comm → β = 0.7;
miniFE: 25–60 % comm → β = 0.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.apps.base import AppModel
from repro.cluster.cluster import Cluster
from repro.cluster.topology import uniform_cluster
from repro.core.weights import TradeOff
from repro.net.model import NetworkModel
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement
from repro.util.validation import require_in_range, require_positive


@dataclass(frozen=True)
class AppProfile:
    """Result of a profiling run."""

    app: str
    n_ranks: int
    comm_fraction: float
    compute_time_s: float
    comm_time_s: float

    def __post_init__(self) -> None:
        require_in_range(self.comm_fraction, 0.0, 1.0, "comm_fraction")


def profile_app(
    app: AppModel,
    *,
    n_ranks: int = 32,
    ppn: int = 4,
    cores: int = 12,
    frequency_ghz: float = 4.6,
) -> AppProfile:
    """Measure an app's compute/communication split on an idle reference
    cluster (no background load, no contention) — the controlled profiling
    run the paper prescribes.
    """
    require_positive(n_ranks, "n_ranks")
    require_positive(ppn, "ppn")
    n_nodes = (n_ranks + ppn - 1) // ppn
    specs, topo = uniform_cluster(
        n_nodes,
        nodes_per_switch=max(n_nodes, 1),
        cores=cores,
        frequency_ghz=frequency_ghz,
        name_prefix="profile",
    )
    cluster = Cluster(specs, topo)
    network = NetworkModel(topo)
    placement = Placement.block(cluster.names, ppn, n_ranks)
    report = SimJob(app, placement, cluster, network).run()
    return AppProfile(
        app=app.name,
        n_ranks=n_ranks,
        comm_fraction=report.comm_fraction,
        compute_time_s=report.compute_time_s,
        comm_time_s=report.comm_time_s,
    )


def tradeoff_from_profile(
    profile: AppProfile,
    *,
    beta_floor: float = 0.4,
    beta_ceiling: float = 0.8,
) -> TradeOff:
    """Map a communication fraction to an α/β pair.

    A linear map anchored on the paper's empirical points: ~40 % comm →
    β ≈ 0.6 (miniFE) and ~60 % comm → β ≈ 0.7 (miniMD), clamped to
    [beta_floor, beta_ceiling] so even extreme profiles keep both terms
    alive (the paper never drops either term entirely).
    """
    if not 0.0 <= beta_floor <= beta_ceiling <= 1.0:
        raise ValueError(
            f"need 0 <= beta_floor <= beta_ceiling <= 1, got "
            f"{beta_floor}, {beta_ceiling}"
        )
    # Anchors: (comm_fraction, beta) = (0.4, 0.6) and (0.6, 0.7).
    beta = 0.6 + (profile.comm_fraction - 0.4) * 0.5
    beta = min(max(beta, beta_floor), beta_ceiling)
    return TradeOff(alpha=round(1.0 - beta, 6), beta=round(beta, 6))


def recommend_tradeoff(app: AppModel, **profile_kwargs: Any) -> TradeOff:
    """Profile ``app`` and return the derived α/β in one call."""
    return tradeoff_from_profile(profile_app(app, **profile_kwargs))
