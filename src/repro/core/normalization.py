"""Normalization and unidirectionalization of attribute values (§3.2.1).

The paper: "First, the attribute values of each node are normalized by
dividing the value by the sum of attribute values of all nodes.  Then, we
convert all the attributes in unidirectional units (same sign).  This is
done by complementing (with respect to the maximum value) for attributes
having maximization criterion."

After this transform, *every* attribute is a cost: lower is better.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.attributes import Criterion


def sum_normalize(values: Mapping[str, float]) -> dict[str, float]:
    """Divide each value by the sum over all nodes.

    An all-zero (or empty) attribute normalizes to all zeros — such an
    attribute carries no ranking information.
    """
    total = sum(values.values())
    if total == 0:
        return {k: 0.0 for k in values}
    return {k: v / total for k, v in values.items()}


def mean_normalize(values: Mapping[str, float]) -> dict[str, float]:
    """Divide each value by the mean over all nodes (average becomes 1).

    Ranking-equivalent to :func:`sum_normalize` (they differ by the
    constant factor N), but the result's scale is independent of how many
    items were normalized.  This matters when mixing quantities
    normalized over sets of very different cardinality: the paper's
    Equation-1 compute load is normalized over |V| nodes while the
    Equation-2 network load is normalized over |V|(|V|−1)/2 pairs, so a
    literal sum-normalization makes the network term ~|V|/2 times smaller
    than the compute term and α/β loses its advertised meaning.  Mean
    normalization restores comparability while leaving each equation's
    internal ranking untouched; see DESIGN.md "Known deviations".
    """
    if not values:
        return {}
    mean = sum(values.values()) / len(values)
    if mean == 0:
        return {k: 0.0 for k in values}
    return {k: v / mean for k, v in values.items()}


#: normalization methods selectable throughout the core package
NORMALIZERS = {"sum": sum_normalize, "mean": mean_normalize}


def complement_to_max(values: Mapping[str, float]) -> dict[str, float]:
    """Flip a maximization attribute into a cost: ``max(vals) - val``."""
    if not values:
        return {}
    top = max(values.values())
    return {k: top - v for k, v in values.items()}


def to_cost(
    values: Mapping[str, float],
    criterion: Criterion,
    *,
    method: str = "mean",
) -> dict[str, float]:
    """Full §3.2.1 transform: normalize, then complement if maximizing.

    ``method`` selects ``"mean"`` (default; see :func:`mean_normalize`)
    or ``"sum"`` (the paper's literal wording).
    """
    try:
        normalize = NORMALIZERS[method]
    except KeyError:
        raise ValueError(
            f"unknown normalization {method!r}; choose from {sorted(NORMALIZERS)}"
        ) from None
    normalized = normalize(values)
    if criterion is Criterion.MAXIMIZE:
        return complement_to_max(normalized)
    return normalized
