"""Best-candidate selection — Algorithm 2 and Equation 4 of the paper.

For each candidate sub-graph ``G_v``: total compute cost
``C_Gv = Σ_{u ∈ V_v} CL_u`` and total network cost
``N_Gv = Σ_{(x,y) ∈ E_v} NL_(x,y)`` (all pairs — candidates are complete
sub-graphs of a complete graph).  Both totals are normalized by their
sums over all candidates, then combined:

``T_Gv = α · C_norm + β · N_norm``

The candidate with minimal ``T`` wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.candidate import CandidateSubgraph
from repro.core.network_load import PairKey, total_group_network_load
from repro.core.weights import TradeOff


@dataclass(frozen=True)
class ScoredCandidate:
    """A candidate with its Equation-4 decomposition."""

    candidate: CandidateSubgraph
    compute_cost: float
    network_cost: float
    compute_cost_normalized: float
    network_cost_normalized: float
    total: float


def score_candidates(
    candidates: Sequence[CandidateSubgraph],
    compute_load: Mapping[str, float],
    network_load: Mapping[PairKey, float],
    tradeoff: TradeOff,
) -> list[ScoredCandidate]:
    """Compute ``T_Gv`` for every candidate."""
    if not candidates:
        return []
    # Hoisted: the worst-pair penalty is a full O(V²) scan; compute it
    # once for the whole candidate set instead of once per candidate.
    missing_penalty = max(network_load.values()) if network_load else 0.0
    raw: list[tuple[float, float]] = []
    for cand in candidates:
        c = sum(compute_load[u] for u in cand.nodes)
        n = total_group_network_load(
            network_load, cand.nodes, missing_penalty=missing_penalty
        )
        raw.append((c, n))
    c_total = sum(c for c, _ in raw)
    n_total = sum(n for _, n in raw)
    scored: list[ScoredCandidate] = []
    for cand, (c, n) in zip(candidates, raw):
        c_norm = c / c_total if c_total > 0 else 0.0
        n_norm = n / n_total if n_total > 0 else 0.0
        scored.append(
            ScoredCandidate(
                candidate=cand,
                compute_cost=c,
                network_cost=n,
                compute_cost_normalized=c_norm,
                network_cost_normalized=n_norm,
                total=tradeoff.alpha * c_norm + tradeoff.beta * n_norm,
            )
        )
    return scored


def select_best(
    candidates: Sequence[CandidateSubgraph],
    compute_load: Mapping[str, float],
    network_load: Mapping[PairKey, float],
    tradeoff: TradeOff,
) -> ScoredCandidate:
    """Algorithm 2: the candidate minimizing ``T`` (deterministic ties)."""
    scored = score_candidates(candidates, compute_load, network_load, tradeoff)
    if not scored:
        raise ValueError("no candidates to select from")
    return min(scored, key=lambda s: (s.total, s.candidate.start))
