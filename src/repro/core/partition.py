"""Partitioned LoadState view — per-shard arrays over one snapshot.

The federation router never runs Algorithms 1–2 over the whole fleet;
that is exactly the per-decision ceiling sharding removes.  Two layers
live here:

* :meth:`PartitionedLoadState.state` — the *descent* arrays: one full
  :class:`~repro.core.arrays.LoadState` per shard, normalized over its
  own subtree (Equations 1–3 over O((V/N)²) pairs instead of O(V²)),
  built lazily and memoized on the snapshot like every other state.
  This is what each shard's :class:`~repro.broker.service.BrokerService`
  decides placements with.
* :meth:`PartitionedLoadState.aggregates` — the *scoring* inputs: per
  shard, total/free cores, mean Equation-1 CL and mean Equation-2 NL
  per subtree, and quarantine counts.  The CL/NL means come from one
  **fleet-wide** Equation-1/2 pass (O(V + measured links), paid once
  per instance and advanced in O(changed) across delta-patched
  snapshots via :meth:`PartitionedLoadState.advance`) rather than from
  the per-shard states: Equation 1/2 normalize *within* the ranked set,
  so per-shard means would hover around 1.0 for every shard and carry
  no cross-shard signal — the global pass makes subtree means directly
  comparable.

The fleet pass is kept as dense vectors (an attributes×nodes raw
matrix, measured-pair latency/bandwidth-complement vectors) so both the
initial build and every per-delta patch run as a handful of numpy
operations rather than Python-level dict sweeps — at fleet scale the
router consults aggregates once per request, and this pass must not
cost O(V) Python operations per consultation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.core.arrays import LoadState, load_state
from repro.core.attributes import ATTRIBUTES, Criterion
from repro.core.effective_procs import (
    effective_proc_count,
    effective_proc_counts,
)
from repro.core.network_load import PairKey, pair_inputs
from repro.core.weights import ComputeWeights, NetworkWeights
from repro.monitor.delta import SnapshotDelta
from repro.monitor.snapshot import ClusterSnapshot


@dataclass(frozen=True)
class ShardAggregate:
    """One shard's scoring inputs, derived from the fleet-wide pass."""

    shard: str
    #: nodes of the shard present in the snapshot
    n_nodes: int
    #: nodes currently usable (live, not held, not quarantined)
    usable_nodes: int
    #: raw core count over present nodes (static capacity)
    total_cores: int
    #: summed Equation-3 effective processors over usable nodes
    free_procs: int
    #: mean fleet-normalized Equation-1 compute load over live nodes
    mean_cl: float
    #: mean fleet-normalized Equation-2 load over measured intra-shard
    #: pairs (falls back to the fleet mean when no link is measured, so
    #: an unmeasured subtree looks average rather than free)
    mean_nl: float
    #: shard nodes currently quarantined
    quarantined: int

    def as_dict(self) -> dict[str, float | int | str]:
        """JSON-ready form for the ``shards`` router verb."""
        return {
            "shard": self.shard,
            "n_nodes": self.n_nodes,
            "usable_nodes": self.usable_nodes,
            "total_cores": self.total_cores,
            "free_procs": self.free_procs,
            "mean_cl": self.mean_cl,
            "mean_nl": self.mean_nl,
            "quarantined": self.quarantined,
        }


class PartitionedLoadState:
    """Per-shard :class:`LoadState` composition over one snapshot.

    ``partition`` maps shard name → node names; nodes the snapshot does
    not know (or that are not live) simply drop out of that shard's
    view.  Everything derived is memoized on the instance (one instance
    per snapshot), so a router consulting aggregates many times per
    snapshot pays each build exactly once — and :meth:`advance` carries
    the expensive parts to the next snapshot in O(changed).
    """

    def __init__(
        self,
        snapshot: ClusterSnapshot,
        partition: Mapping[str, Iterable[str]],
        *,
        compute_weights: ComputeWeights | None = None,
        network_weights: NetworkWeights | None = None,
        ppn: int | None = None,
        load_key: str = "m1",
    ) -> None:
        if not partition:
            raise ValueError("partition must name at least one shard")
        self.snapshot = snapshot
        self.partition = {
            shard: tuple(nodes) for shard, nodes in partition.items()
        }
        for shard, nodes in self.partition.items():
            if not nodes:
                raise ValueError(f"shard {shard!r} has no nodes")
        self._cw = compute_weights or ComputeWeights()
        self._nw = network_weights or NetworkWeights()
        self._ppn = ppn
        self._load_key = load_key
        # per-instance memos: the snapshot is fixed for this object's
        # lifetime, so live-node filtering and the fleet pass happen once
        self._live_list: list[str] | None = None
        self._live_set: frozenset[str] = frozenset()
        # fleet-pass vectors; the raw inputs are kept so :meth:`advance`
        # can patch them per delta instead of re-extracting the fleet
        self._index: dict[str, int] = {}
        self._raw_mat: np.ndarray | None = None  # (attributes, V)
        self._pair_order: tuple[PairKey, ...] = ()
        self._pair_index: dict[PairKey, int] = {}
        self._lat_vec: np.ndarray | None = None
        self._bwc_vec: np.ndarray | None = None
        self._cl_vec: np.ndarray | None = None
        self._nl_vec: np.ndarray | None = None
        self._pc: dict[str, int] | None = None
        # chain-invariant per-shard facts (member/pair index arrays) —
        # safe to carry across :meth:`advance`
        self._shard_topo: dict[
            str, tuple[int, int, tuple[str, ...], np.ndarray, np.ndarray]
        ] = {}
        # per-snapshot per-shard means — never carried across advance
        self._shard_means: dict[str, tuple[float, float]] = {}

    def _live(self) -> list[str]:
        if self._live_list is None:
            members = frozenset(self.snapshot.livehosts)
            self._live_list = [
                n
                for n in self.snapshot.nodes
                if not members or n in members
            ]
            self._live_set = frozenset(self._live_list)
        return self._live_list

    @property
    def shards(self) -> tuple[str, ...]:
        return tuple(self.partition)

    def live_nodes(self, shard: str) -> tuple[str, ...]:
        """The shard's nodes that are present and live in the snapshot."""
        self._live()
        return tuple(
            n for n in self.partition[shard] if n in self._live_set
        )

    def state(self, shard: str) -> LoadState | None:
        """The shard's descent LoadState, or ``None`` with no live node."""
        nodes = self.live_nodes(shard)
        if not nodes:
            return None
        return load_state(
            self.snapshot,
            nodes=nodes,
            compute_weights=self._cw,
            network_weights=self._nw,
            ppn=self._ppn,
            load_key=self._load_key,
        )

    # -- fleet-wide scoring pass ----------------------------------------
    def _ensure_fleet(self) -> None:
        """Build the fleet CL/NL/PC vectors once per instance."""
        if self._cl_vec is not None:
            return
        live = self._live()
        self._index = {n: i for i, n in enumerate(live)}
        views = [self.snapshot.nodes[n] for n in live]
        self._raw_mat = np.array(
            [[a.extract(v) for v in views] for a in ATTRIBUTES],
            dtype=np.float64,
        )
        lat, bwc = pair_inputs(self.snapshot, nodes=live)
        self._pair_order = tuple(lat)
        self._pair_index = {k: j for j, k in enumerate(self._pair_order)}
        self._lat_vec = np.fromiter(
            lat.values(), dtype=np.float64, count=len(lat)
        )
        self._bwc_vec = np.fromiter(
            bwc.values(), dtype=np.float64, count=len(bwc)
        )
        self._pc = effective_proc_counts(
            self.snapshot, ppn=self._ppn, load_key=self._load_key
        )
        self._nl_vec = self._combine_nl()
        self._cl_vec = self._combine_cl()

    def _combine_cl(self) -> np.ndarray:
        """Equation 1 over the raw matrix — vectorized ``compute_loads``.

        Mirrors ``to_cost`` (mean-normalize, complement maximization
        attributes to the normalized maximum) and ``saw_scores`` (weight
        and sum), so the per-node values match a dict-based rebuild.
        """
        assert self._raw_mat is not None
        v = self._raw_mat.shape[1]
        cl = np.zeros(v, dtype=np.float64)
        if v == 0:
            return cl
        weights = self._cw.weights
        for i, attr in enumerate(ATTRIBUTES):
            w = float(weights.get(attr.name, 0.0))
            if w == 0.0:
                continue
            column = self._raw_mat[i]
            mean = float(column.mean())
            norm = (
                column / mean
                if mean != 0.0
                else np.zeros(v, dtype=np.float64)
            )
            if attr.criterion is Criterion.MAXIMIZE:
                norm = norm.max() - norm
            cl += w * norm
        return cl

    def _combine_nl(self) -> np.ndarray:
        """Equation 2 over the pair vectors — vectorized
        ``combine_pair_costs`` with mean normalization."""
        assert self._lat_vec is not None and self._bwc_vec is not None
        e = len(self._lat_vec)
        if e == 0:
            return np.zeros(0, dtype=np.float64)
        lat_mean = float(self._lat_vec.mean())
        bwc_mean = float(self._bwc_vec.mean())
        lat_n = (
            self._lat_vec / lat_mean
            if lat_mean != 0.0
            else np.zeros(e, dtype=np.float64)
        )
        bwc_n = (
            self._bwc_vec / bwc_mean
            if bwc_mean != 0.0
            else np.zeros(e, dtype=np.float64)
        )
        return self._nw.w_lt * lat_n + self._nw.w_bw * bwc_n

    def advance(
        self, snapshot: ClusterSnapshot, delta: SnapshotDelta
    ) -> "PartitionedLoadState":
        """The O(changed) successor over a delta-patched snapshot.

        ``snapshot`` must be exactly one generation ahead of this
        instance's snapshot on the same lineage (the caller verifies via
        :func:`repro.monitor.delta.snapshot_step_delta`), so the node
        set, livehosts, and measured-pair sets are unchanged: only the
        changed raw entries are re-extracted, then the cheap vectorized
        normalize-and-combine passes re-run.  The result matches a
        fresh build over ``snapshot``.
        """
        nxt = PartitionedLoadState(
            snapshot,
            self.partition,
            compute_weights=self._cw,
            network_weights=self._nw,
            ppn=self._ppn,
            load_key=self._load_key,
        )
        if self._cl_vec is None:
            return nxt  # nothing derived yet — build lazily as usual
        assert self._raw_mat is not None
        assert self._lat_vec is not None and self._bwc_vec is not None
        assert self._pc is not None
        nxt._live_list = self._live_list
        nxt._live_set = self._live_set
        nxt._index = self._index
        nxt._pair_order = self._pair_order
        nxt._pair_index = self._pair_index
        nxt._shard_topo = self._shard_topo

        changed = [n for n in delta.nodes if n in self._index]
        raw = self._raw_mat
        if changed:
            raw = raw.copy()
            for n in changed:
                view = snapshot.nodes[n]
                j = self._index[n]
                for i, attr in enumerate(ATTRIBUTES):
                    if not attr.static:
                        # a chaining delta cannot move static specs
                        raw[i, j] = attr.extract(view)
        nxt._raw_mat = raw

        touched = [
            k
            for k in {*delta.latency_us, *delta.bandwidth_mbs}
            if k in self._pair_index
        ]
        lat_vec, bwc_vec = self._lat_vec, self._bwc_vec
        if touched:
            lat_vec, bwc_vec = lat_vec.copy(), bwc_vec.copy()
            for key in touched:
                j = self._pair_index[key]
                lat_vec[j] = snapshot.latency(*key)
                bwc_vec[j] = snapshot.bandwidth_complement(*key)
        nxt._lat_vec, nxt._bwc_vec = lat_vec, bwc_vec

        pc = self._pc
        if self._ppn is None and changed:
            pc = dict(pc)
            for n in changed:
                view = snapshot.nodes[n]
                pc[n] = effective_proc_count(
                    view.cores, float(view.cpu_load[self._load_key])
                )
        nxt._pc = pc
        nxt._cl_vec = nxt._combine_cl() if changed else self._cl_vec
        nxt._nl_vec = nxt._combine_nl() if touched else self._nl_vec
        return nxt

    def _topo(
        self, shard: str
    ) -> tuple[int, int, tuple[str, ...], np.ndarray, np.ndarray]:
        """(present, total_cores, live members, member idx, intra pair
        idx) — all chain-invariant, so the memo survives advance."""
        topo = self._shard_topo.get(shard)
        if topo is None:
            present = [
                n for n in self.partition[shard] if n in self.snapshot.nodes
            ]
            live = self.live_nodes(shard)
            members = frozenset(live)
            member_idx = np.fromiter(
                (self._index[n] for n in live), dtype=np.intp, count=len(live)
            )
            intra_idx = np.fromiter(
                (
                    j
                    for j, k in enumerate(self._pair_order)
                    if k[0] in members and k[1] in members
                ),
                dtype=np.intp,
            )
            topo = (
                len(present),
                sum(self.snapshot.nodes[n].cores for n in present),
                live,
                member_idx,
                intra_idx,
            )
            self._shard_topo[shard] = topo
        return topo

    def aggregate(
        self,
        shard: str,
        *,
        held: frozenset[str] = frozenset(),
        quarantined: frozenset[str] = frozenset(),
    ) -> ShardAggregate:
        """The shard's scoring aggregates under the given exclusions."""
        self._ensure_fleet()
        assert self._cl_vec is not None and self._nl_vec is not None
        assert self._pc is not None
        n_present, total_cores, live, member_idx, intra_idx = self._topo(
            shard
        )
        means = self._shard_means.get(shard)
        if means is None:
            if len(intra_idx):
                mean_nl = float(self._nl_vec[intra_idx].mean())
            elif len(self._nl_vec):
                mean_nl = float(self._nl_vec.mean())
            else:
                mean_nl = 0.0
            means = (
                (
                    float(self._cl_vec[member_idx].mean())
                    if len(member_idx)
                    else 0.0
                ),
                mean_nl,
            )
            self._shard_means[shard] = means
        blocked = held | quarantined
        pc = self._pc
        return ShardAggregate(
            shard=shard,
            n_nodes=n_present,
            usable_nodes=sum(1 for n in live if n not in blocked),
            total_cores=total_cores,
            free_procs=int(
                sum(int(pc[n]) for n in live if n not in blocked)
            ),
            mean_cl=means[0],
            mean_nl=means[1],
            quarantined=sum(
                1
                for n in self.partition[shard]
                if n in quarantined and n in self.snapshot.nodes
            ),
        )

    def aggregates(
        self,
        *,
        held: frozenset[str] = frozenset(),
        quarantined: frozenset[str] = frozenset(),
    ) -> dict[str, ShardAggregate]:
        """Aggregates for every shard, in partition order."""
        return {
            shard: self.aggregate(shard, held=held, quarantined=quarantined)
            for shard in self.partition
        }
