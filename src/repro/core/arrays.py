"""Vectorized fast path for the allocation pipeline (Eq. 1–4, Alg. 1–2).

The reference implementation in :mod:`repro.core.candidate` and
:mod:`repro.core.selection` runs Algorithms 1 and 2 as pure-Python dict
arithmetic over O(V²) pair keys.  This module packs the same quantities
into NumPy arrays once per snapshot and replays both algorithms as array
operations:

* :class:`LoadState` — node-index table, Equation-1 ``CL`` vector, dense
  symmetric Equation-2 ``NL`` matrix (unmeasured pairs filled with the
  worst observed load, tracked by a mask), and the Equation-3 effective
  processor vector.  Built once per (snapshot, node subset, weights,
  normalization, ppn/load-key) and memoized on the snapshot itself via
  :func:`repro.monitor.snapshot.derived_cache`.
* :func:`generate_all_candidates_fast` — Algorithm 1 for *all* |V|
  starting nodes at once: one addition-cost matrix
  ``A = α·CL[None, :] + β·NL``, one stable per-row lexsort, one
  cumulative-sum cutoff of effective processor counts, and a closed-form
  round-robin remainder.
* :func:`best_candidate_fast` — Algorithm 2 / Equation 4 via a candidate
  membership matrix ``M``: compute costs ``C = M·CL`` and network costs
  ``N = ½·diag(M·NL·Mᵀ)``.

Exactness contract: the ``CL``/``NL``/``PC`` values come from the same
reference functions the dict path uses, and NumPy's element-wise
``α·CL + β·NL`` is bit-identical to the scalar expression, so the
per-row lexsort reproduces the reference candidate *exactly* (same
nodes, same process counts, same tie-breaks).  Equation-4 totals are
summed in a different order than the reference (pairwise vs. sequential
float addition), so when the top two candidates land within
``_TIE_RTOL`` the winner is re-derived with the reference
:func:`repro.core.selection.select_best` — guaranteeing the fast path
returns the identical allocation even under exact ties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.candidate import CandidateSubgraph
from repro.core.compute_load import compute_loads
from repro.core.effective_procs import effective_proc_counts
from repro.core.network_load import PairKey, network_loads
from repro.core.selection import ScoredCandidate, select_best
from repro.core.weights import ComputeWeights, NetworkWeights, TradeOff
from repro.monitor.snapshot import ClusterSnapshot, derived_cache

#: Relative gap between the best and second-best Equation-4 totals below
#: which the winner is recomputed with the reference implementation.
#: Array and dict totals agree to ~1e-13 relative, so any gap larger
#: than this guarantees both paths rank the winner identically.
_TIE_RTOL = 1e-9


@dataclass(frozen=True)
class LoadState:
    """Array view of one snapshot's allocator inputs (Eq. 1–3).

    The dict fields (``cl``, ``nl``, ``pc``) are the *reference* values
    the arrays were packed from; they are kept so exact-equivalence
    fallbacks and the hierarchical policy can reuse them without
    recomputing.
    """

    #: node names in index order (the usable-node order)
    nodes: tuple[str, ...]
    #: name → row/column index
    index: Mapping[str, int]
    #: Equation-1 compute loads (reference dict)
    cl: Mapping[str, float]
    #: Equation-2 network loads over measured pairs (reference dict)
    nl: Mapping[PairKey, float]
    #: Equation-3 effective processor counts (reference dict)
    pc: Mapping[str, int]
    #: ``CL`` as a (V,) float vector
    cl_vec: np.ndarray
    #: dense symmetric (V, V) ``NL`` matrix — unmeasured pairs hold
    #: ``missing_penalty``, the diagonal is zero
    nl_mat: np.ndarray
    #: (V, V) bool mask, True where the pair was actually measured
    measured: np.ndarray
    #: worst observed pair load (0.0 when nothing was measured)
    missing_penalty: float
    #: effective processors as a (V,) int vector
    pc_vec: np.ndarray


def load_state(
    snapshot: ClusterSnapshot,
    *,
    nodes: Sequence[str] | None = None,
    compute_weights: ComputeWeights | None = None,
    network_weights: NetworkWeights | None = None,
    ppn: int | None = None,
    load_key: str = "m1",
    method: str = "mean",
) -> LoadState:
    """The :class:`LoadState` for ``snapshot``, memoized on the snapshot.

    The cache key covers everything the arrays depend on: the node
    subset (normalization runs over exactly the ranked set), both weight
    profiles, the normalization method, and the Equation-3 parameters.
    Repeated allocations against the same snapshot — the broker's hot
    path — skip all O(V²) Equation-1/2 work after the first call.
    """
    names = tuple(nodes) if nodes is not None else tuple(snapshot.nodes)
    cw = compute_weights or ComputeWeights()
    nw = network_weights or NetworkWeights()
    key = (
        "load_state",
        names,
        tuple(sorted(cw.weights.items())),
        (nw.w_lt, nw.w_bw),
        ppn,
        load_key,
        method,
    )
    cache = derived_cache(snapshot)
    state = cache.get(key)
    if state is None:
        state = _build_state(
            snapshot, names, cw, nw, ppn=ppn, load_key=load_key, method=method
        )
        cache[key] = state
    return state


def _build_state(
    snapshot: ClusterSnapshot,
    names: tuple[str, ...],
    compute_weights: ComputeWeights,
    network_weights: NetworkWeights,
    *,
    ppn: int | None,
    load_key: str,
    method: str,
) -> LoadState:
    cl = compute_loads(
        snapshot, compute_weights, nodes=list(names), method=method
    )
    nl = network_loads(snapshot, network_weights, nodes=names, method=method)
    pc_all = effective_proc_counts(snapshot, ppn=ppn, load_key=load_key)
    pc = {n: pc_all[n] for n in names}

    v = len(names)
    index = {n: i for i, n in enumerate(names)}
    cl_vec = np.array([cl[n] for n in names], dtype=np.float64)
    missing_penalty = max(nl.values()) if nl else 0.0
    nl_mat = np.full((v, v), missing_penalty, dtype=np.float64)
    np.fill_diagonal(nl_mat, 0.0)
    measured = np.zeros((v, v), dtype=bool)
    for (a, b), value in nl.items():
        i, j = index[a], index[b]
        nl_mat[i, j] = nl_mat[j, i] = value
        measured[i, j] = measured[j, i] = True
    pc_vec = np.array([pc[n] for n in names], dtype=np.int64)
    return LoadState(
        nodes=names,
        index=index,
        cl=cl,
        nl=nl,
        pc=pc,
        cl_vec=cl_vec,
        nl_mat=nl_mat,
        measured=measured,
        missing_penalty=missing_penalty,
        pc_vec=pc_vec,
    )


def addition_cost_matrix(state: LoadState, tradeoff: TradeOff) -> np.ndarray:
    """All |V|² addition costs at once: row ``v`` holds ``A_v(·)``.

    Element-wise ``α·CL + β·NL`` is the same two-multiply-one-add IEEE
    sequence the scalar reference uses, so entries are bit-identical to
    :func:`repro.core.candidate.addition_costs`.
    """
    a = tradeoff.alpha * state.cl_vec[None, :] + tradeoff.beta * state.nl_mat
    np.fill_diagonal(a, 0.0)  # A_v(v) = 0 per Algorithm 1 line 4
    return a


def generate_all_candidates_fast(
    state: LoadState, n_processes: int, tradeoff: TradeOff
) -> list[CandidateSubgraph]:
    """Vectorized Algorithm 1 over every starting node.

    Returns candidates identical (nodes, order, process counts) to
    :func:`repro.core.candidate.generate_all_candidates` run on the same
    reference dicts.
    """
    if n_processes <= 0:
        raise ValueError(f"n_processes must be positive, got {n_processes}")
    v = len(state.nodes)
    if v == 0:
        return []
    costs = addition_cost_matrix(state, tradeoff)
    # Reference sort key is (cost, u != start) with stable ties on node
    # order; lexsort's last key is primary and full ties keep ascending
    # index, which *is* node order.
    not_start = np.ones_like(costs)
    np.fill_diagonal(not_start, 0.0)
    order = np.lexsort((not_start, costs), axis=-1)

    caps = np.maximum(state.pc_vec, 0)[order]  # capacities in visit order
    cum = np.cumsum(caps, axis=1)
    covered = cum >= n_processes
    any_covered = covered.any(axis=1)
    # Nodes are visited while the running total is short of the request,
    # so the visit count is (first covering index + 1), or all V nodes.
    k = np.where(any_covered, covered.argmax(axis=1) + 1, v)

    names = state.nodes
    out: list[CandidateSubgraph] = []
    for i in range(v):
        ki = int(k[i])
        idx = order[i, :ki]
        takes = caps[i, :ki].copy()
        filled = int(cum[i, ki - 1])
        if filled >= n_processes:
            # Last visited node is truncated to the remaining need.
            prev = int(cum[i, ki - 2]) if ki >= 2 else 0
            takes[-1] = n_processes - prev
        else:
            # Cluster exhausted: Algorithm 1 lines 12-13 round-robin the
            # remainder over the visited nodes, in visit order.
            extra, first = divmod(n_processes - filled, ki)
            takes += extra
            takes[:first] += 1
        sel_nodes: list[str] = []
        procs: dict[str, int] = {}
        for j, take in zip(idx.tolist(), takes.tolist()):
            if take > 0:
                name = names[j]
                sel_nodes.append(name)
                procs[name] = int(take)
        out.append(
            CandidateSubgraph(
                start=names[i], nodes=tuple(sel_nodes), procs=procs
            )
        )
    return out


def score_candidates_fast(
    state: LoadState,
    candidates: Sequence[CandidateSubgraph],
    tradeoff: TradeOff,
) -> list[ScoredCandidate]:
    """Vectorized Equation 4 over a candidate set (membership matrix)."""
    if not candidates:
        return []
    c_raw, n_raw, c_norm, n_norm, totals = _score_arrays(
        state, candidates, tradeoff
    )
    return [
        ScoredCandidate(
            candidate=cand,
            compute_cost=float(c_raw[i]),
            network_cost=float(n_raw[i]),
            compute_cost_normalized=float(c_norm[i]),
            network_cost_normalized=float(n_norm[i]),
            total=float(totals[i]),
        )
        for i, cand in enumerate(candidates)
    ]


def _score_arrays(
    state: LoadState,
    candidates: Sequence[CandidateSubgraph],
    tradeoff: TradeOff,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    index = state.index
    members = np.zeros((len(candidates), len(state.nodes)), dtype=np.float64)
    for i, cand in enumerate(candidates):
        members[i, [index[n] for n in cand.nodes]] = 1.0
    c_raw = members @ state.cl_vec
    # ½·diag(M·NL·Mᵀ): the diagonal of NL is zero, so each row sums the
    # group's ordered pairs exactly once in each direction.
    n_raw = 0.5 * np.einsum("ij,ij->i", members @ state.nl_mat, members)
    c_total = float(c_raw.sum())
    n_total = float(n_raw.sum())
    c_norm = c_raw / c_total if c_total > 0 else np.zeros_like(c_raw)
    n_norm = n_raw / n_total if n_total > 0 else np.zeros_like(n_raw)
    totals = tradeoff.alpha * c_norm + tradeoff.beta * n_norm
    return c_raw, n_raw, c_norm, n_norm, totals


def select_best_fast(
    state: LoadState,
    candidates: Sequence[CandidateSubgraph],
    tradeoff: TradeOff,
) -> ScoredCandidate:
    """Algorithm 2 on arrays, falling back to the reference under ties.

    The fallback makes the fast path allocation-identical to
    :func:`repro.core.selection.select_best`: whenever the two best
    array totals are within ``_TIE_RTOL`` (where float summation order
    could flip the ranking), the winner is re-derived from the reference
    dicts stored on the state.
    """
    if not candidates:
        raise ValueError("no candidates to select from")
    c_raw, n_raw, c_norm, n_norm, totals = _score_arrays(
        state, candidates, tradeoff
    )
    ranked = sorted(
        range(len(candidates)),
        key=lambda i: (totals[i], candidates[i].start),
    )
    best = ranked[0]
    if len(ranked) > 1:
        gap = float(totals[ranked[1]] - totals[best])
        if gap <= _TIE_RTOL * max(1.0, abs(float(totals[best]))):
            return select_best(candidates, state.cl, state.nl, tradeoff)
    return ScoredCandidate(
        candidate=candidates[best],
        compute_cost=float(c_raw[best]),
        network_cost=float(n_raw[best]),
        compute_cost_normalized=float(c_norm[best]),
        network_cost_normalized=float(n_norm[best]),
        total=float(totals[best]),
    )


def best_candidate_fast(
    state: LoadState, n_processes: int, tradeoff: TradeOff
) -> ScoredCandidate:
    """Full fast pipeline: Algorithm 1 + Algorithm 2 on one state."""
    candidates = [
        c
        for c in generate_all_candidates_fast(state, n_processes, tradeoff)
        if c.nodes
    ]
    if not candidates:
        raise ValueError("candidate generation produced no groups")
    return select_best_fast(state, candidates, tradeoff)
