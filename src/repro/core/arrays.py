"""Vectorized fast path for the allocation pipeline (Eq. 1–4, Alg. 1–2).

The reference implementation in :mod:`repro.core.candidate` and
:mod:`repro.core.selection` runs Algorithms 1 and 2 as pure-Python dict
arithmetic over O(V²) pair keys.  This module packs the same quantities
into NumPy arrays once per snapshot and replays both algorithms as array
operations:

* :class:`LoadState` — node-index table, Equation-1 ``CL`` vector, dense
  symmetric Equation-2 ``NL`` matrix (unmeasured pairs filled with the
  worst observed load, tracked by a mask), and the Equation-3 effective
  processor vector.  Built once per (snapshot, node subset, weights,
  normalization, ppn/load-key) and memoized on the snapshot itself via
  :func:`repro.monitor.snapshot.derived_cache`.
* :func:`generate_all_candidates_fast` — Algorithm 1 for *all* |V|
  starting nodes at once: one addition-cost matrix
  ``A = α·CL[None, :] + β·NL``, one stable per-row lexsort, one
  cumulative-sum cutoff of effective processor counts, and a closed-form
  round-robin remainder.
* :func:`best_candidate_fast` — Algorithm 2 / Equation 4 via a candidate
  membership matrix ``M``: compute costs ``C = M·CL`` and network costs
  ``N = ½·diag(M·NL·Mᵀ)``.

Exactness contract: the ``CL``/``NL``/``PC`` values come from the same
reference functions the dict path uses, and NumPy's element-wise
``α·CL + β·NL`` is bit-identical to the scalar expression, so the
per-row lexsort reproduces the reference candidate *exactly* (same
nodes, same process counts, same tie-breaks).  Equation-4 totals are
summed in a different order than the reference (pairwise vs. sequential
float addition), so when the top two candidates land within
``_TIE_RTOL`` the winner is re-derived with the reference
:func:`repro.core.selection.select_best` — guaranteeing the fast path
returns the identical allocation even under exact ties.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.core.attributes import ATTRIBUTES, Criterion
from repro.core.candidate import CandidateSubgraph
from repro.core.compute_load import compute_loads
from repro.core.effective_procs import effective_proc_count, effective_proc_counts
from repro.core.network_load import PairKey, combine_pair_costs, pair_inputs
from repro.core.selection import ScoredCandidate, select_best
from repro.core.weights import ComputeWeights, NetworkWeights, TradeOff
from repro.monitor.snapshot import ClusterSnapshot, derived_cache

if TYPE_CHECKING:  # pragma: no cover — import cycle guard (delta → arrays)
    from repro.monitor.delta import SnapshotDelta

#: Relative gap between the best and second-best Equation-4 totals below
#: which the winner is recomputed with the reference implementation.
#: Array and dict totals agree to ~1e-13 relative, so any gap larger
#: than this guarantees both paths rank the winner identically.
_TIE_RTOL = 1e-9

#: node count above which :func:`best_candidate_fast` may switch to the
#: seed-pruned approximate path (when a threshold is passed in)
PRUNE_THRESHOLD_DEFAULT = 512
#: how many Algorithm-1 seeds the pruned path keeps
PRUNE_KEEP_DEFAULT = 32


@dataclass(frozen=True)
class StateParams:
    """Everything :func:`_build_state` was called with.

    Kept on the state so :meth:`LoadState.apply_delta` can re-derive the
    affected Equation-1/2/3 values without the caller re-supplying the
    build arguments (they are already part of the memo key).
    """

    compute_weights: ComputeWeights
    network_weights: NetworkWeights
    ppn: int | None
    load_key: str
    method: str


@dataclass(frozen=True)
class LoadState:
    """Array view of one snapshot's allocator inputs (Eq. 1–3).

    The dict fields (``cl``, ``nl``, ``pc``) are the *reference* values
    the arrays were packed from; they are kept so exact-equivalence
    fallbacks and the hierarchical policy can reuse them without
    recomputing.
    """

    #: node names in index order (the usable-node order)
    nodes: tuple[str, ...]
    #: name → row/column index
    index: Mapping[str, int]
    #: Equation-1 compute loads (reference dict)
    cl: Mapping[str, float]
    #: Equation-2 network loads over measured pairs (reference dict)
    nl: Mapping[PairKey, float]
    #: Equation-3 effective processor counts (reference dict)
    pc: Mapping[str, int]
    #: ``CL`` as a (V,) float vector
    cl_vec: np.ndarray
    #: dense symmetric (V, V) ``NL`` matrix — unmeasured pairs hold
    #: ``missing_penalty``, the diagonal is zero
    nl_mat: np.ndarray
    #: (V, V) bool mask, True where the pair was actually measured
    measured: np.ndarray
    #: worst observed pair load (0.0 when nothing was measured)
    missing_penalty: float
    #: effective processors as a (V,) int vector
    pc_vec: np.ndarray
    #: build parameters, kept for :meth:`apply_delta` (None on states
    #: constructed by hand without incremental support)
    params: StateParams | None = None
    #: raw measured latency per pair (Equation-2 input, pre-normalization)
    lat: Mapping[PairKey, float] | None = None
    #: raw bandwidth complement per pair (Equation-2 input)
    bwc: Mapping[PairKey, float] | None = None
    #: raw attribute matrix, (attributes, V) in ``ATTRIBUTES`` order —
    #: the pre-normalization Equation-1 inputs, kept so
    #: :meth:`apply_delta` patches changed columns and re-normalizes as
    #: array operations instead of re-extracting every view
    raw_mat: np.ndarray | None = None
    #: measured pairs in ``nl`` iteration order (the normalization order)
    pair_order: tuple[PairKey, ...] = ()
    #: row/column index arrays matching ``pair_order`` — one fancy-index
    #: assignment patches every measured ``nl_mat`` entry in O(E)
    pair_ii: np.ndarray | None = None
    pair_jj: np.ndarray | None = None
    #: bumped every time :meth:`apply_delta` actually changes this state;
    #: untouched states keep their generation (and identity)
    generation: int = 0
    #: per-state scratch memos (seed-pruning bounds); reset on delta
    scratch: dict = field(default_factory=dict, compare=False, repr=False)

    def _cl_from_raw(self, raw: np.ndarray) -> np.ndarray:
        """Equation 1 over the raw matrix, bit-identical to the dicts.

        Mirrors ``to_cost`` + ``saw_scores`` operation for operation:
        the normalization denominator is a sequential Python sum in node
        order (exactly ``sum(values.values())``), divisions and the
        weighted accumulation are the same per-element IEEE operations
        in the same attribute order, so the result matches a
        ``compute_loads`` rebuild to the last bit.
        """
        assert self.params is not None
        v = raw.shape[1]
        weights = self.params.compute_weights.weights
        cl = np.zeros(v, dtype=np.float64)
        for i, attr in enumerate(ATTRIBUTES):
            w = float(weights.get(attr.name, 0.0))
            if w == 0.0:
                continue
            column = raw[i]
            total = sum(column.tolist())
            denom = total / v if self.params.method == "mean" else total
            norm = (
                column / denom
                if denom != 0
                else np.zeros(v, dtype=np.float64)
            )
            if attr.criterion is Criterion.MAXIMIZE:
                norm = float(norm.max()) - norm
            cl += w * norm
        return cl

    def apply_delta(
        self, snapshot: ClusterSnapshot, delta: "SnapshotDelta", *,
        inplace: bool = False,
    ) -> "LoadState":
        """Patch this state to reflect ``delta``, skipping ``_build_state``.

        ``snapshot`` is the *already patched* snapshot the returned state
        describes.  Equation 1/2 normalize over the whole ranked set, so a
        delta cannot touch single entries — instead the O(V²) pair scan is
        skipped and only the cheap parts re-run:

        * **CL** — the raw attribute matrix is patched for the changed
          nodes and re-normalized as array operations (O(changed) Python
          work plus vectorized O(attributes · V) arithmetic), bit-identical
          to a ``compute_loads`` rebuild.
        * **NL** — the stored raw latency/bandwidth-complement dicts are
          patched for the changed pairs and re-combined in the original
          key order (O(E), bit-identical); ``nl_mat``'s measured entries
          are overwritten through the precomputed index arrays, and the
          unmeasured fill is rewritten only when the worst observed load
          moved.
        * **PC** — Equation 3 is per-node; only changed nodes recompute.

        Returns ``self`` unchanged (same generation) when the delta does
        not intersect this state's node subset; otherwise a new state
        with ``generation + 1`` and fresh scratch memos.  With
        ``inplace=True`` the new state reuses (and mutates) this state's
        ``nl_mat`` buffer — the caller must drop the old state, which is
        what the snapshot-migration path does.
        """
        if self.params is None or self.lat is None or self.bwc is None:
            raise ValueError(
                "LoadState lacks incremental bookkeeping (built by hand?); "
                "rebuild via load_state() instead"
            )
        p = self.params
        changed_nodes = [n for n in delta.nodes if n in self.index]
        changed_pairs = {
            k
            for k in (*delta.latency_us, *delta.bandwidth_mbs)
            if k in self.lat
        }
        if not changed_nodes and not changed_pairs:
            return self

        cl, cl_vec = self.cl, self.cl_vec
        pc, pc_vec = self.pc, self.pc_vec
        raw_mat = self.raw_mat
        if changed_nodes:
            if raw_mat is not None:
                raw_mat = raw_mat if inplace else raw_mat.copy()
                for n in changed_nodes:
                    view = snapshot.nodes[n]
                    j = self.index[n]
                    for i, attr in enumerate(ATTRIBUTES):
                        if not attr.static:
                            # deltas never move static specs (a static
                            # change is structural → full rebuild)
                            raw_mat[i, j] = attr.extract(view)
                cl_vec = self._cl_from_raw(raw_mat)
                cl = dict(zip(self.nodes, cl_vec.tolist()))
            else:
                cl = compute_loads(
                    snapshot, p.compute_weights,
                    nodes=list(self.nodes), method=p.method,
                )
                cl_vec = np.array(
                    [cl[n] for n in self.nodes], dtype=np.float64
                )
            if p.ppn is None:
                pc = dict(self.pc)
                pc_vec = self.pc_vec.copy()
                for n in changed_nodes:
                    view = snapshot.nodes[n]
                    pc[n] = effective_proc_count(
                        view.cores, float(view.cpu_load[p.load_key])
                    )
                    pc_vec[self.index[n]] = pc[n]

        lat, bwc = self.lat, self.bwc
        nl, nl_mat = self.nl, self.nl_mat
        penalty = self.missing_penalty
        if changed_pairs:
            lat, bwc = dict(self.lat), dict(self.bwc)
            for key in changed_pairs:
                lat[key] = snapshot.latency(*key)
                bwc[key] = snapshot.bandwidth_complement(*key)
            nl = combine_pair_costs(
                lat, bwc, p.network_weights, method=p.method
            )
            nl_mat = self.nl_mat if inplace else self.nl_mat.copy()
            count = len(self.pair_order)
            vals = np.fromiter(
                (nl[k] for k in self.pair_order),
                dtype=np.float64, count=count,
            )
            nl_mat[self.pair_ii, self.pair_jj] = vals
            nl_mat[self.pair_jj, self.pair_ii] = vals
            penalty = max(nl.values()) if nl else 0.0
            if penalty != self.missing_penalty:
                nl_mat[~self.measured] = penalty
                np.fill_diagonal(nl_mat, 0.0)
        return dataclasses.replace(
            self,
            cl=cl, nl=nl, pc=pc,
            cl_vec=cl_vec, nl_mat=nl_mat, pc_vec=pc_vec,
            missing_penalty=penalty, lat=lat, bwc=bwc, raw_mat=raw_mat,
            generation=self.generation + 1, scratch={},
        )


def migrate_states(
    old: ClusterSnapshot,
    new: ClusterSnapshot,
    delta: "SnapshotDelta",
    *,
    inplace: bool = True,
) -> int:
    """Carry every memoized :class:`LoadState` from ``old`` to ``new``.

    Each state is patched via :meth:`LoadState.apply_delta` and stored in
    ``new``'s derived cache under the same memo key, so the first
    decision against the patched snapshot is a cache hit instead of an
    O(V²) rebuild.  Returns the number of states migrated.  With the
    default ``inplace=True`` the old snapshot's states are consumed (see
    :meth:`LoadState.apply_delta`); callers keep serving only ``new``.
    """
    src = getattr(old, "_derived_cache", None)
    if not src:
        return 0
    dst = derived_cache(new)
    moved = 0
    for key, value in list(src.items()):
        if (
            isinstance(key, tuple)
            and key
            and key[0] == "load_state"
            and isinstance(value, LoadState)
        ):
            dst[key] = value.apply_delta(new, delta, inplace=inplace)
            moved += 1
    return moved


def load_state(
    snapshot: ClusterSnapshot,
    *,
    nodes: Sequence[str] | None = None,
    compute_weights: ComputeWeights | None = None,
    network_weights: NetworkWeights | None = None,
    ppn: int | None = None,
    load_key: str = "m1",
    method: str = "mean",
) -> LoadState:
    """The :class:`LoadState` for ``snapshot``, memoized on the snapshot.

    The cache key covers everything the arrays depend on: the node
    subset (normalization runs over exactly the ranked set), both weight
    profiles, the normalization method, and the Equation-3 parameters.
    Repeated allocations against the same snapshot — the broker's hot
    path — skip all O(V²) Equation-1/2 work after the first call.
    """
    names = tuple(nodes) if nodes is not None else tuple(snapshot.nodes)
    cw = compute_weights or ComputeWeights()
    nw = network_weights or NetworkWeights()
    key = (
        "load_state",
        names,
        tuple(sorted(cw.weights.items())),
        (nw.w_lt, nw.w_bw),
        ppn,
        load_key,
        method,
    )
    cache = derived_cache(snapshot)
    state = cache.get(key)
    if state is None:
        state = _build_state(
            snapshot, names, cw, nw, ppn=ppn, load_key=load_key, method=method
        )
        cache[key] = state
    return state


def _build_state(
    snapshot: ClusterSnapshot,
    names: tuple[str, ...],
    compute_weights: ComputeWeights,
    network_weights: NetworkWeights,
    *,
    ppn: int | None,
    load_key: str,
    method: str,
) -> LoadState:
    cl = compute_loads(
        snapshot, compute_weights, nodes=list(names), method=method
    )
    lat, bwc = pair_inputs(snapshot, nodes=names)
    nl = combine_pair_costs(lat, bwc, network_weights, method=method)
    pc_all = effective_proc_counts(snapshot, ppn=ppn, load_key=load_key)
    pc = {n: pc_all[n] for n in names}

    v = len(names)
    index = {n: i for i, n in enumerate(names)}
    cl_vec = np.array([cl[n] for n in names], dtype=np.float64)
    missing_penalty = max(nl.values()) if nl else 0.0
    nl_mat = np.full((v, v), missing_penalty, dtype=np.float64)
    np.fill_diagonal(nl_mat, 0.0)
    measured = np.zeros((v, v), dtype=bool)
    pair_order = tuple(nl)
    count = len(pair_order)
    pair_ii = np.fromiter(
        (index[a] for a, _ in pair_order), dtype=np.intp, count=count
    )
    pair_jj = np.fromiter(
        (index[b] for _, b in pair_order), dtype=np.intp, count=count
    )
    if count:
        vals = np.fromiter(
            (nl[k] for k in pair_order), dtype=np.float64, count=count
        )
        nl_mat[pair_ii, pair_jj] = vals
        nl_mat[pair_jj, pair_ii] = vals
        measured[pair_ii, pair_jj] = True
        measured[pair_jj, pair_ii] = True
    pc_vec = np.array([pc[n] for n in names], dtype=np.int64)
    views = [snapshot.nodes[n] for n in names]
    raw_mat = np.array(
        [[a.extract(view) for view in views] for a in ATTRIBUTES],
        dtype=np.float64,
    )
    return LoadState(
        nodes=names,
        index=index,
        cl=cl,
        nl=nl,
        pc=pc,
        cl_vec=cl_vec,
        nl_mat=nl_mat,
        measured=measured,
        missing_penalty=missing_penalty,
        pc_vec=pc_vec,
        params=StateParams(
            compute_weights=compute_weights,
            network_weights=network_weights,
            ppn=ppn,
            load_key=load_key,
            method=method,
        ),
        lat=lat,
        bwc=bwc,
        pair_order=pair_order,
        pair_ii=pair_ii,
        pair_jj=pair_jj,
        raw_mat=raw_mat,
    )


def addition_cost_matrix(state: LoadState, tradeoff: TradeOff) -> np.ndarray:
    """All |V|² addition costs at once: row ``v`` holds ``A_v(·)``.

    Element-wise ``α·CL + β·NL`` is the same two-multiply-one-add IEEE
    sequence the scalar reference uses, so entries are bit-identical to
    :func:`repro.core.candidate.addition_costs`.
    """
    a = tradeoff.alpha * state.cl_vec[None, :] + tradeoff.beta * state.nl_mat
    np.fill_diagonal(a, 0.0)  # A_v(v) = 0 per Algorithm 1 line 4
    return a


def generate_all_candidates_fast(
    state: LoadState, n_processes: int, tradeoff: TradeOff
) -> list[CandidateSubgraph]:
    """Vectorized Algorithm 1 over every starting node.

    Returns candidates identical (nodes, order, process counts) to
    :func:`repro.core.candidate.generate_all_candidates` run on the same
    reference dicts.
    """
    v = len(state.nodes)
    if n_processes > 0 and v == 0:
        return []
    return _candidates_for_seeds(
        state, np.arange(v, dtype=np.intp), n_processes, tradeoff
    )


def _candidates_for_seeds(
    state: LoadState,
    seeds: np.ndarray,
    n_processes: int,
    tradeoff: TradeOff,
) -> list[CandidateSubgraph]:
    """Algorithm 1 for an arbitrary seed subset (rows of the cost matrix).

    With ``seeds == arange(V)`` this is exactly the all-seeds fast path
    (same element-wise ``α·CL + β·NL`` IEEE sequence, same lexsort); the
    pruned path passes only the surviving seeds and builds K×V instead
    of V×V intermediates.
    """
    if n_processes <= 0:
        raise ValueError(f"n_processes must be positive, got {n_processes}")
    v = len(state.nodes)
    s = len(seeds)
    if v == 0 or s == 0:
        return []
    rows = np.arange(s)
    costs = (
        tradeoff.alpha * state.cl_vec[None, :]
        + tradeoff.beta * state.nl_mat[seeds, :]
    )
    costs[rows, seeds] = 0.0  # A_v(v) = 0 per Algorithm 1 line 4
    # Reference sort key is (cost, u != start) with stable ties on node
    # order; lexsort's last key is primary and full ties keep ascending
    # index, which *is* node order.
    not_start = np.ones_like(costs)
    not_start[rows, seeds] = 0.0
    order = np.lexsort((not_start, costs), axis=-1)

    caps = np.maximum(state.pc_vec, 0)[order]  # capacities in visit order
    cum = np.cumsum(caps, axis=1)
    covered = cum >= n_processes
    any_covered = covered.any(axis=1)
    # Nodes are visited while the running total is short of the request,
    # so the visit count is (first covering index + 1), or all V nodes.
    k = np.where(any_covered, covered.argmax(axis=1) + 1, v)

    names = state.nodes
    out: list[CandidateSubgraph] = []
    for i in range(s):
        ki = int(k[i])
        idx = order[i, :ki]
        takes = caps[i, :ki].copy()
        filled = int(cum[i, ki - 1])
        if filled >= n_processes:
            # Last visited node is truncated to the remaining need.
            prev = int(cum[i, ki - 2]) if ki >= 2 else 0
            takes[-1] = n_processes - prev
        else:
            # Cluster exhausted: Algorithm 1 lines 12-13 round-robin the
            # remainder over the visited nodes, in visit order.
            extra, first = divmod(n_processes - filled, ki)
            takes += extra
            takes[:first] += 1
        sel_nodes: list[str] = []
        procs: dict[str, int] = {}
        for j, take in zip(idx.tolist(), takes.tolist()):
            if take > 0:
                name = names[j]
                sel_nodes.append(name)
                procs[name] = int(take)
        out.append(
            CandidateSubgraph(
                start=names[int(seeds[i])], nodes=tuple(sel_nodes), procs=procs
            )
        )
    return out


def score_candidates_fast(
    state: LoadState,
    candidates: Sequence[CandidateSubgraph],
    tradeoff: TradeOff,
) -> list[ScoredCandidate]:
    """Vectorized Equation 4 over a candidate set (membership matrix)."""
    if not candidates:
        return []
    c_raw, n_raw, c_norm, n_norm, totals = _score_arrays(
        state, candidates, tradeoff
    )
    return [
        ScoredCandidate(
            candidate=cand,
            compute_cost=float(c_raw[i]),
            network_cost=float(n_raw[i]),
            compute_cost_normalized=float(c_norm[i]),
            network_cost_normalized=float(n_norm[i]),
            total=float(totals[i]),
        )
        for i, cand in enumerate(candidates)
    ]


def _score_arrays(
    state: LoadState,
    candidates: Sequence[CandidateSubgraph],
    tradeoff: TradeOff,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    index = state.index
    members = np.zeros((len(candidates), len(state.nodes)), dtype=np.float64)
    for i, cand in enumerate(candidates):
        members[i, [index[n] for n in cand.nodes]] = 1.0
    c_raw = members @ state.cl_vec
    # ½·diag(M·NL·Mᵀ): the diagonal of NL is zero, so each row sums the
    # group's ordered pairs exactly once in each direction.
    n_raw = 0.5 * np.einsum("ij,ij->i", members @ state.nl_mat, members)
    c_total = float(c_raw.sum())
    n_total = float(n_raw.sum())
    c_norm = c_raw / c_total if c_total > 0 else np.zeros_like(c_raw)
    n_norm = n_raw / n_total if n_total > 0 else np.zeros_like(n_raw)
    totals = tradeoff.alpha * c_norm + tradeoff.beta * n_norm
    return c_raw, n_raw, c_norm, n_norm, totals


def select_best_fast(
    state: LoadState,
    candidates: Sequence[CandidateSubgraph],
    tradeoff: TradeOff,
) -> ScoredCandidate:
    """Algorithm 2 on arrays, falling back to the reference under ties.

    The fallback makes the fast path allocation-identical to
    :func:`repro.core.selection.select_best`: whenever the two best
    array totals are within ``_TIE_RTOL`` (where float summation order
    could flip the ranking), the winner is re-derived from the reference
    dicts stored on the state.
    """
    if not candidates:
        raise ValueError("no candidates to select from")
    c_raw, n_raw, c_norm, n_norm, totals = _score_arrays(
        state, candidates, tradeoff
    )
    ranked = sorted(
        range(len(candidates)),
        key=lambda i: (totals[i], candidates[i].start),
    )
    best = ranked[0]
    if len(ranked) > 1:
        gap = float(totals[ranked[1]] - totals[best])
        if gap <= _TIE_RTOL * max(1.0, abs(float(totals[best]))):
            return select_best(candidates, state.cl, state.nl, tradeoff)
    return ScoredCandidate(
        candidate=candidates[best],
        compute_cost=float(c_raw[best]),
        network_cost=float(n_raw[best]),
        compute_cost_normalized=float(c_norm[best]),
        network_cost_normalized=float(n_norm[best]),
        total=float(totals[best]),
    )


def best_candidate_fast(
    state: LoadState,
    n_processes: int,
    tradeoff: TradeOff,
    *,
    prune_threshold: int | None = None,
    prune_keep: int = PRUNE_KEEP_DEFAULT,
) -> ScoredCandidate:
    """Full fast pipeline: Algorithm 1 + Algorithm 2 on one state.

    When ``prune_threshold`` is set and the state has more nodes than
    that, the seed-pruned approximate path runs instead (see
    :func:`_best_candidate_pruned`); below the threshold the result is
    bit-identical to the exhaustive pipeline.
    """
    v = len(state.nodes)
    if (
        prune_threshold is not None
        and v > prune_threshold
        and 0 < prune_keep < v
    ):
        return _best_candidate_pruned(state, n_processes, tradeoff, prune_keep)
    candidates = [
        c
        for c in generate_all_candidates_fast(state, n_processes, tradeoff)
        if c.nodes
    ]
    if not candidates:
        raise ValueError("candidate generation produced no groups")
    return select_best_fast(state, candidates, tradeoff)


def _seed_lower_bounds(state: LoadState, tradeoff: TradeOff) -> np.ndarray:
    """Cheapest possible first addition cost for every seed, memoized.

    ``min_u A_v(u) = min_u (α·CL[u] + β·NL[v, u])`` over ``u ≠ v`` — a
    lower bound on what seed ``v``'s candidate pays for its first grown
    member.  O(V²) once per (state, tradeoff), cached in the state's
    scratch space; deltas reset the scratch, so the bound always matches
    the current arrays.
    """
    key = ("seed_first_addition", tradeoff.alpha)
    cached = state.scratch.get(key)
    if cached is None:
        if len(state.nodes) < 2:
            cached = np.zeros(len(state.nodes), dtype=np.float64)
        else:
            a = (
                tradeoff.alpha * state.cl_vec[None, :]
                + tradeoff.beta * state.nl_mat
            )
            np.fill_diagonal(a, np.inf)
            cached = a.min(axis=1)
        state.scratch[key] = cached
    return cached


def _best_candidate_pruned(
    state: LoadState, n_processes: int, tradeoff: TradeOff, keep: int
) -> ScoredCandidate:
    """Seed-pruned Algorithm 1 + sparse Equation 4 for fleet-scale states.

    Ranks every seed by a lower bound on its candidate's unnormalized
    Equation-4 contribution — ``α·CL[seed]`` when the seed alone covers
    the request, otherwise plus the cheapest first addition
    (:func:`_seed_lower_bounds`) — keeps the best ``keep`` seeds, grows
    only those K candidates (K×V intermediates instead of V×V), and
    scores them sparsely per group instead of via a V-wide membership
    matrix.

    Two documented approximations versus the exhaustive path: Equation-4
    normalization runs over the surviving candidate set rather than all
    |V| candidates, and ties resolve by the deterministic
    ``(total, start)`` key with no reference-dict fallback.  Both paths
    coincide whenever ``keep >= V`` — the regression suite pins that.
    """
    if n_processes <= 0:
        raise ValueError(f"n_processes must be positive, got {n_processes}")
    v = len(state.nodes)
    if v == 0:
        raise ValueError("candidate generation produced no groups")
    caps = np.maximum(state.pc_vec, 0)
    base = tradeoff.alpha * state.cl_vec
    bounds = np.where(
        caps >= n_processes, base, base + _seed_lower_bounds(state, tradeoff)
    )
    part = np.argpartition(bounds, keep - 1)[:keep]
    seeds = np.sort(part).astype(np.intp)  # candidate order = node order
    candidates = [
        c
        for c in _candidates_for_seeds(state, seeds, n_processes, tradeoff)
        if c.nodes
    ]
    if not candidates:
        raise ValueError("candidate generation produced no groups")
    index = state.index
    m = len(candidates)
    c_raw = np.empty(m, dtype=np.float64)
    n_raw = np.empty(m, dtype=np.float64)
    for i, cand in enumerate(candidates):
        idx = np.fromiter(
            (index[nm] for nm in cand.nodes),
            dtype=np.intp, count=len(cand.nodes),
        )
        c_raw[i] = float(state.cl_vec[idx].sum())
        n_raw[i] = 0.5 * float(state.nl_mat[np.ix_(idx, idx)].sum())
    c_total = float(c_raw.sum())
    n_total = float(n_raw.sum())
    c_norm = c_raw / c_total if c_total > 0 else np.zeros_like(c_raw)
    n_norm = n_raw / n_total if n_total > 0 else np.zeros_like(n_raw)
    totals = tradeoff.alpha * c_norm + tradeoff.beta * n_norm
    best = min(range(m), key=lambda i: (totals[i], candidates[i].start))
    return ScoredCandidate(
        candidate=candidates[best],
        compute_cost=float(c_raw[best]),
        network_cost=float(n_raw[best]),
        compute_cost_normalized=float(c_norm[best]),
        network_cost_normalized=float(n_norm[best]),
        total=float(totals[best]),
    )
