"""Simple Additive Weighting (SAW) combination.

SAW is the multi-criteria decision method the paper adopts (§3.2.1,
citing Abdullah & Adawiyah 2014): each alternative's score is the
weighted sum of its normalized criterion values.  After the §3.2.1
transform every criterion is a *cost*, so lower SAW scores are better.
"""

from __future__ import annotations

from typing import Mapping


def saw_scores(
    costs: Mapping[str, Mapping[str, float]],
    weights: Mapping[str, float],
) -> dict[str, float]:
    """Weighted sum per node.

    Parameters
    ----------
    costs:
        ``{criterion: {node: normalized cost}}`` — every criterion must
        cover the same node set.
    weights:
        ``{criterion: weight}``; criteria missing from ``weights`` count
        as weight 0.

    Returns
    -------
    ``{node: score}`` with lower meaning more preferable.
    """
    if not costs:
        return {}
    node_sets = {frozenset(v) for v in costs.values()}
    if len(node_sets) > 1:
        raise ValueError("criteria cover different node sets")
    nodes = next(iter(costs.values())).keys()
    scores = {n: 0.0 for n in nodes}
    for criterion, values in costs.items():
        w = float(weights.get(criterion, 0.0))
        if w == 0.0:
            continue
        for n, v in values.items():
            scores[n] += w * v
    return scores
