"""Network load — Equation 2 of the paper.

``NL_(u,v) = w_lt · LT_(u,v) + w_bw · B̄W_(u,v)`` where ``LT`` is measured
latency and ``B̄W`` is the *complement of available bandwidth* (peak −
available).  Both terms are sum-normalized over the pair set before
weighting ("Normalization is done similar to compute load"), and both are
minimization criteria, so ``NL`` needs no further complementing.

The network load of a *group* of nodes is the average of ``NL`` over all
pairs in the group (§3.2.2 last sentence).
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

from repro.core.normalization import NORMALIZERS
from repro.core.weights import NetworkWeights
from repro.monitor.snapshot import ClusterSnapshot

PairKey = tuple[str, str]


def pair_inputs(
    snapshot: ClusterSnapshot,
    *,
    nodes: Sequence[str] | None = None,
) -> tuple[dict[PairKey, float], dict[PairKey, float]]:
    """Raw Equation-2 inputs: measured latency and bandwidth complement.

    A pair contributes only when **both** measurements exist, so the
    scan walks the measured-link keys — O(links · log links) for the
    deterministic sort — never the O(V²) candidate pairs; fleet-scale
    monitors measure a sparse subset and the federation router runs
    this pass over the whole fleet per snapshot.  The incremental path
    (``LoadState.apply_delta``) runs it once at build time, then patches
    only the changed entries and re-runs :func:`combine_pair_costs`.
    """
    keep = None if nodes is None else frozenset(nodes)
    lat: dict[PairKey, float] = {}
    bwc: dict[PairKey, float] = {}
    for key in sorted(snapshot.latency_us):
        if key not in snapshot.bandwidth_mbs:
            continue
        if keep is not None and (key[0] not in keep or key[1] not in keep):
            continue
        lat[key] = snapshot.latency(*key)
        bwc[key] = snapshot.bandwidth_complement(*key)
    return lat, bwc


def combine_pair_costs(
    lat: Mapping[PairKey, float],
    bwc: Mapping[PairKey, float],
    weights: NetworkWeights | None = None,
    *,
    method: str = "mean",
) -> dict[PairKey, float]:
    """Normalize both Equation-2 terms over the pair set and combine.

    O(pairs); iteration follows ``lat``'s key order, so patching values
    in an existing input dict and re-combining reproduces a full
    :func:`network_loads` rebuild bit for bit.
    """
    weights = weights or NetworkWeights()
    try:
        normalize = NORMALIZERS[method]
    except KeyError:
        raise ValueError(
            f"unknown normalization {method!r}; choose from {sorted(NORMALIZERS)}"
        ) from None
    lat_n = normalize(lat)
    bwc_n = normalize(bwc)
    return {
        key: weights.w_lt * lat_n[key] + weights.w_bw * bwc_n[key] for key in lat
    }


def network_loads(
    snapshot: ClusterSnapshot,
    weights: NetworkWeights | None = None,
    *,
    nodes: Sequence[str] | None = None,
    method: str = "mean",
) -> dict[PairKey, float]:
    """``NL_(u,v)`` for every measured pair among ``nodes``.

    Pairs missing either a bandwidth or a latency measurement are
    omitted; callers decide how to penalise unknown links (policies use
    the worst observed value).
    """
    lat, bwc = pair_inputs(snapshot, nodes=nodes)
    return combine_pair_costs(lat, bwc, weights, method=method)


def group_network_load(
    loads: Mapping[PairKey, float],
    group: Sequence[str],
    *,
    missing_penalty: float | None = None,
) -> float:
    """Average ``NL`` over all pairs within ``group``.

    ``missing_penalty`` substitutes for unmeasured pairs; by default the
    worst (maximum) observed load is used, so unknown links look risky
    rather than free.  A single-node group has zero network load.
    """
    members = list(dict.fromkeys(group))
    if len(members) < 2:
        return 0.0
    if missing_penalty is None:
        missing_penalty = max(loads.values()) if loads else 0.0
    total, count = 0.0, 0
    for a, b in itertools.combinations(members, 2):
        key = (a, b) if a <= b else (b, a)
        total += loads.get(key, missing_penalty)
        count += 1
    return total / count


def total_group_network_load(
    loads: Mapping[PairKey, float],
    group: Sequence[str],
    *,
    missing_penalty: float | None = None,
) -> float:
    """Sum of ``NL`` over all pairs within ``group`` (the ``N_G`` of §3.3.2)."""
    members = list(dict.fromkeys(group))
    if len(members) < 2:
        return 0.0
    if missing_penalty is None:
        missing_penalty = max(loads.values()) if loads else 0.0
    total = 0.0
    for a, b in itertools.combinations(members, 2):
        key = (a, b) if a <= b else (b, a)
        total += loads.get(key, missing_penalty)
    return total
