"""ResourceBroker — the user-facing façade of the whole system.

Ties a snapshot source (usually a live :class:`MonitoringSystem`) to an
allocation policy, adds the §6 "recommend waiting" safeguard for
saturated clusters, and reports allocation latency (the paper cites
~1–2 ms for Algorithms 1+2 on their 60-node cluster).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.compute_load import compute_loads
from repro.core.policies import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
    NetworkLoadAwarePolicy,
    PAPER_POLICIES,
)
from repro.monitor.snapshot import ClusterSnapshot


class WaitRecommended(AllocationError):
    """The cluster is too loaded for a useful allocation (§6).

    "If the overall load on the cluster is extremely high, the
    performance gain will not be significant because there are not enough
    lightly loaded processors; in that case, our tool should recommend
    waiting rather than allocating it right away."
    """

    def __init__(self, mean_load_per_core: float, threshold: float) -> None:
        super().__init__(
            f"cluster mean load/core {mean_load_per_core:.2f} exceeds "
            f"wait threshold {threshold:.2f}; recommend waiting"
        )
        self.mean_load_per_core = mean_load_per_core
        self.threshold = threshold


@dataclass(frozen=True)
class BrokerResult:
    """An allocation plus broker bookkeeping."""

    allocation: Allocation
    overhead_ms: float
    snapshot_age_s: float


class ResourceBroker:
    """Allocates nodes for MPI jobs from monitor snapshots."""

    def __init__(
        self,
        snapshot_source: Callable[[], ClusterSnapshot],
        *,
        policy: AllocationPolicy | None = None,
        wait_threshold_load_per_core: float | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._snapshot_source = snapshot_source
        self.policy = policy or NetworkLoadAwarePolicy()
        self.wait_threshold = wait_threshold_load_per_core
        self._clock = clock

    def request(
        self,
        request: AllocationRequest,
        *,
        rng: np.random.Generator | None = None,
        policy: AllocationPolicy | str | None = None,
        now: float | None = None,
        exclude: frozenset[str] | None = None,
        snapshot: ClusterSnapshot | None = None,
    ) -> BrokerResult:
        """Allocate nodes for ``request``.

        ``policy`` overrides the broker default (instance or §5 name).
        ``exclude`` masks nodes already held (leased/busy) without
        rebuilding a filtered snapshot; ``snapshot`` pins the decision to
        a caller-chosen snapshot (the broker daemon decides every request
        of one micro-batch against the same one) instead of pulling a
        fresh one from the source.  Raises :class:`WaitRecommended` when
        the saturation guard trips.
        """
        chosen = self._resolve_policy(policy)
        if snapshot is None:
            snapshot = self._snapshot_source()
        if self.wait_threshold is not None:
            self._check_saturation(snapshot, request)
        t0 = self._clock()
        allocation = chosen.allocate(
            snapshot, request, rng=rng, exclude=exclude or None
        )
        overhead_ms = (self._clock() - t0) * 1e3
        age = 0.0 if now is None else max(0.0, now - snapshot.time)
        return BrokerResult(
            allocation=allocation, overhead_ms=overhead_ms, snapshot_age_s=age
        )

    def _resolve_policy(
        self, policy: AllocationPolicy | str | None
    ) -> AllocationPolicy:
        if policy is None:
            return self.policy
        if isinstance(policy, AllocationPolicy):
            return policy
        try:
            return PAPER_POLICIES[policy]()
        except KeyError:
            raise AllocationError(
                f"unknown policy {policy!r}; choose from {sorted(PAPER_POLICIES)}"
            ) from None

    def _check_saturation(
        self, snapshot: ClusterSnapshot, request: AllocationRequest
    ) -> None:
        views = snapshot.nodes
        if not views:
            raise AllocationError("no monitored nodes")
        per_core = [
            v.cpu_load["m5"] / v.cores for v in views.values()
        ]
        mean = float(np.mean(per_core))
        assert self.wait_threshold is not None
        if mean > self.wait_threshold:
            raise WaitRecommended(mean, self.wait_threshold)
