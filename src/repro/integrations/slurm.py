"""Slurm select-plugin-shaped adapter (§6 future work, realized).

Slurm's node-selection plugins receive a job description (task count,
tasks per node, constraints) and return the chosen node set.  This module
gives the paper's allocator that shape:

* :class:`SlurmJobSpec` parses the common ``sbatch``/``srun`` options
  (``--ntasks``, ``--ntasks-per-node``, ``--constraint``, ``--exclude``);
* :class:`SlurmSelectAdapter` maps a spec onto an
  :class:`~repro.core.policies.base.AllocationRequest`, runs any
  registered policy against the live monitor snapshot, and renders the
  result as Slurm-style outputs (``--nodelist`` with hostlist
  compression, ``SLURM_JOB_NODELIST``-like environment, tasks per node).
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.core.policies import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
    NetworkLoadAwarePolicy,
)
from repro.core.weights import TradeOff
from repro.monitor.snapshot import ClusterSnapshot


@dataclass(frozen=True)
class SlurmJobSpec:
    """The subset of a Slurm job description the selector consumes."""

    ntasks: int
    ntasks_per_node: int | None = None
    exclude: tuple[str, ...] = ()
    #: constraint expressions over static attributes, e.g. "cores>=12"
    constraints: tuple[str, ...] = ()
    #: α for the trade-off; Slurm would carry this as a plugin option
    alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.ntasks <= 0:
            raise ValueError(f"ntasks must be positive, got {self.ntasks}")
        if self.ntasks_per_node is not None and self.ntasks_per_node <= 0:
            raise ValueError("ntasks-per-node must be positive")

    @classmethod
    def from_options(cls, options: str) -> "SlurmJobSpec":
        """Parse a compact option string, e.g.
        ``"--ntasks=32 --ntasks-per-node=4 --exclude=csews3,csews4
        --constraint=cores>=12"``.
        """
        ntasks: int | None = None
        per_node: int | None = None
        exclude: tuple[str, ...] = ()
        constraints: list[str] = []
        alpha = 0.3
        for token in options.split():
            if "=" not in token:
                raise ValueError(f"malformed option {token!r}")
            key, value = token.split("=", 1)
            if key == "--ntasks" or key == "-n":
                ntasks = int(value)
            elif key == "--ntasks-per-node":
                per_node = int(value)
            elif key == "--exclude":
                exclude = tuple(v for v in value.split(",") if v)
            elif key == "--constraint":
                constraints.append(value)
            elif key == "--alpha":
                alpha = float(value)
            else:
                raise ValueError(f"unsupported option {key!r}")
        if ntasks is None:
            raise ValueError("--ntasks is required")
        return cls(
            ntasks=ntasks,
            ntasks_per_node=per_node,
            exclude=exclude,
            constraints=tuple(constraints),
            alpha=alpha,
        )


_CONSTRAINT = re.compile(
    r"^(?P<attr>cores|frequency_ghz|memory_gb)"
    r"(?P<op>>=|<=|==|>|<)"
    r"(?P<value>[0-9.]+)$"
)

_OPS: Mapping[str, Callable[[float, float], bool]] = {
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    "==": lambda a, b: a == b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
}


def _passes(snapshot: ClusterSnapshot, node: str, constraint: str) -> bool:
    m = _CONSTRAINT.match(constraint)
    if m is None:
        raise ValueError(
            f"unsupported constraint {constraint!r} "
            "(use cores/frequency_ghz/memory_gb with >=, <=, ==, >, <)"
        )
    view = snapshot.nodes[node]
    value = {
        "cores": float(view.cores),
        "frequency_ghz": view.frequency_ghz,
        "memory_gb": view.memory_gb,
    }[m.group("attr")]
    return _OPS[m.group("op")](value, float(m.group("value")))


def compress_hostlist(nodes: list[str]) -> str:
    """Render a Slurm hostlist, e.g. ``csews[1-3,7]`` from csews1..csews3,
    csews7.  Mixed prefixes are comma-joined."""
    by_prefix: dict[str, list[int]] = {}
    plain: list[str] = []
    for n in nodes:
        m = re.match(r"^(.*?)(\d+)$", n)
        if m:
            by_prefix.setdefault(m.group(1), []).append(int(m.group(2)))
        else:
            plain.append(n)
    parts: list[str] = []
    for prefix in sorted(by_prefix):
        nums = sorted(by_prefix[prefix])
        ranges: list[str] = []
        for _, grp in itertools.groupby(
            enumerate(nums), key=lambda iv: iv[1] - iv[0]
        ):
            block = [v for _, v in grp]
            ranges.append(
                str(block[0]) if len(block) == 1 else f"{block[0]}-{block[-1]}"
            )
        parts.append(f"{prefix}[{','.join(ranges)}]")
    parts.extend(sorted(plain))
    return ",".join(parts)


@dataclass(frozen=True)
class SlurmSelection:
    """What the plugin hands back to the scheduler."""

    allocation: Allocation
    nodelist: str
    tasks_per_node: tuple[int, ...]

    def environment(self) -> dict[str, str]:
        """SLURM_* environment variables a job step would see."""
        return {
            "SLURM_JOB_NODELIST": self.nodelist,
            "SLURM_JOB_NUM_NODES": str(self.allocation.n_nodes),
            "SLURM_NTASKS": str(self.allocation.request.n_processes),
            "SLURM_TASKS_PER_NODE": ",".join(
                str(c) for c in self.tasks_per_node
            ),
        }


class SlurmSelectAdapter:
    """The paper's allocator wearing a Slurm select-plugin interface."""

    def __init__(
        self,
        snapshot_source: Callable[[], ClusterSnapshot],
        *,
        policy: AllocationPolicy | None = None,
    ) -> None:
        self._snapshot_source = snapshot_source
        self.policy = policy or NetworkLoadAwarePolicy()

    def select(
        self,
        spec: SlurmJobSpec,
        *,
        rng: np.random.Generator | None = None,
    ) -> SlurmSelection:
        """Choose nodes for ``spec``; raises AllocationError if
        constraints/exclusions leave nothing usable."""
        snapshot = self._snapshot_source()
        eligible = [
            n
            for n in snapshot.nodes
            if n in snapshot.livehosts
            and n not in spec.exclude
            and all(_passes(snapshot, n, c) for c in spec.constraints)
        ]
        if not eligible:
            raise AllocationError(
                "no nodes satisfy the job's constraints/exclusions"
            )
        filtered = _filter_snapshot(snapshot, eligible)
        request = AllocationRequest(
            n_processes=spec.ntasks,
            ppn=spec.ntasks_per_node,
            tradeoff=TradeOff.from_alpha(spec.alpha),
        )
        allocation = self.policy.allocate(filtered, request, rng=rng)
        return SlurmSelection(
            allocation=allocation,
            nodelist=compress_hostlist(list(allocation.nodes)),
            tasks_per_node=tuple(
                allocation.procs[n] for n in allocation.nodes
            ),
        )


def _filter_snapshot(
    snapshot: ClusterSnapshot, nodes: list[str]
) -> ClusterSnapshot:
    keep = set(nodes)
    return ClusterSnapshot(
        time=snapshot.time,
        nodes={n: v for n, v in snapshot.nodes.items() if n in keep},
        bandwidth_mbs={
            k: v for k, v in snapshot.bandwidth_mbs.items()
            if k[0] in keep and k[1] in keep
        },
        latency_us={
            k: v for k, v in snapshot.latency_us.items()
            if k[0] in keep and k[1] in keep
        },
        peak_bandwidth_mbs={
            k: v for k, v in snapshot.peak_bandwidth_mbs.items()
            if k[0] in keep and k[1] in keep
        },
        livehosts=tuple(n for n in snapshot.livehosts if n in keep),
    )
