"""Integrations with external resource managers (paper §2/§6).

* :mod:`repro.integrations.slurm` — a Slurm select-plugin-shaped adapter
  (§6: "We also intend to explore integrating our tool as a plugin for
  SLURM job scheduler").
* :mod:`repro.integrations.condor` — an HTCondor-style rank-expression
  matchmaker, reproducing the §2 comparison point.
"""

from repro.integrations.condor import CondorLikePolicy, RankExpression
from repro.integrations.slurm import SlurmJobSpec, SlurmSelectAdapter

__all__ = [
    "CondorLikePolicy",
    "RankExpression",
    "SlurmJobSpec",
    "SlurmSelectAdapter",
]
