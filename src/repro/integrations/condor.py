"""HTCondor-style matchmaking (the §2 comparison point, made concrete).

HTCondor "users may specify requirements and ranking criterion of
resources.  The matchmaker selects the top nodes based on their ranks.
... The ranking criterion is limited to local node attributes."  The
paper's argument against it is precisely that per-node ranks cannot see
the network *between* the selected nodes.

:class:`CondorLikePolicy` implements that matchmaking faithfully — a
user-supplied Rank expression over local attributes, highest rank wins —
so experiments can measure exactly what the missing network term costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Collection

import numpy as np

from repro.core.policies.base import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
    distribute,
)
from repro.monitor.snapshot import ClusterSnapshot, NodeView

#: attribute extractors available to Rank expressions (local-only, like
#: a Condor machine ClassAd)
CLASSAD_ATTRIBUTES: dict[str, Callable[[NodeView], float]] = {
    "Cpus": lambda v: float(v.cores),
    "Memory": lambda v: v.memory_gb,
    "AvailableMemory": lambda v: float(v.available_memory_gb["now"]),
    "LoadAvg": lambda v: float(v.cpu_load["now"]),
    "CpuBusy": lambda v: float(v.cpu_util["now"]) / 100.0,
    "Mips": lambda v: v.frequency_ghz * 1000.0,
    "NetworkUsage": lambda v: float(v.flow_rate_mbs["now"]),
    "Users": lambda v: float(v.users),
}


@dataclass(frozen=True)
class RankExpression:
    """A linear Rank over ClassAd attributes: higher is better.

    e.g. ``RankExpression({"Mips": 1.0, "LoadAvg": -500.0})`` prefers
    fast idle machines — a typical Condor submit-file Rank.
    """

    terms: dict[str, float]

    def __post_init__(self) -> None:
        unknown = sorted(set(self.terms) - set(CLASSAD_ATTRIBUTES))
        if unknown:
            raise KeyError(
                f"unknown ClassAd attributes {unknown}; "
                f"choose from {sorted(CLASSAD_ATTRIBUTES)}"
            )
        if not self.terms:
            raise ValueError("Rank expression needs at least one term")

    def evaluate(self, view: NodeView) -> float:
        return sum(
            w * CLASSAD_ATTRIBUTES[attr](view)
            for attr, w in self.terms.items()
        )


#: a sensible default: fast machines, penalize load and busy CPUs
DEFAULT_RANK = RankExpression(
    {"Mips": 1.0, "LoadAvg": -500.0, "CpuBusy": -1000.0}
)


class CondorLikePolicy(AllocationPolicy):
    """Top-k nodes by per-node Rank — network-blind by construction."""

    name = "condor_rank"

    def __init__(self, rank: RankExpression | None = None) -> None:
        self.rank = rank or DEFAULT_RANK

    def allocate(
        self,
        snapshot: ClusterSnapshot,
        request: AllocationRequest,
        *,
        rng: np.random.Generator | None = None,
        exclude: Collection[str] | None = None,
    ) -> Allocation:
        usable = self._usable_nodes(snapshot, exclude)
        scored = sorted(
            usable,
            key=lambda n: (-self.rank.evaluate(snapshot.nodes[n]), n),
        )
        if request.ppn is not None:
            k = min(request.nodes_needed, len(usable))
        else:
            k = min(max(1, -(-request.n_processes // 4)), len(usable))
        chosen = scored[:k]
        procs = distribute(chosen, request.n_processes, request.ppn)
        nodes = tuple(n for n in chosen if n in procs)
        if not nodes:
            raise AllocationError("rank selection produced no nodes")
        return Allocation(
            policy=self.name,
            nodes=nodes,
            procs=procs,
            request=request,
            snapshot_time=snapshot.time,
            metadata={
                "best_rank": self.rank.evaluate(snapshot.nodes[chosen[0]])
            },
        )
