"""The built-in scenario matrix.

Nine registered cells covering the topology × workload × hardware axes
the ROADMAP asks for:

========== ============================ ==============================
name        topology / hardware          workload regime
========== ============================ ==============================
paper-tree  §5 60-node switch tree       stationary OU (paper default)
fat-tree    dual-homed two-level fat-tree stationary, Poisson arrivals
mesh        full leaf mesh + N+1 standby stationary, Poisson arrivals
diurnal     16-node tree                 day/night ambient cycle
bursty      fat-tree                     arrival storms, heavier jobs
spike       16-node tree                 correlated multi-node spikes
hetero-accel 3 node classes (accel tier) stationary, accel Eq-1 weights
net-heavy   16-node tree                 dense transfers, low-α job mix
compute-heavy 16-node tree               dense batch jobs, high-α mix
========== ============================ ==============================

``paper-tree`` is the unchanged default: building it is bit-for-bit
identical to the legacy ``paper_scenario()`` (enforced by the
differential test).  ``fat-tree`` and ``bursty`` are the fast smoke
cells CI exercises on every push.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.cluster.topology import paper_cluster, uniform_cluster
from repro.scenarios.registry import (
    PAPER_JOB_MIX,
    JobClass,
    ScenarioSpec,
    register_scenario,
)
from repro.scenarios.topologies import (
    ACCEL_COMPUTE_WEIGHTS,
    fat_tree_cluster,
    hetero_accel_cluster,
    mesh_cluster,
)
from repro.workload.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    poisson_arrivals,
)
from repro.workload.generator import WorkloadConfig
from repro.workload.regimes import DiurnalConfig, SpikeConfig


def _poisson(mean_s: float):
    def fn(n: int, rng: np.random.Generator) -> tuple[float, ...]:
        return poisson_arrivals(n, mean_s, rng)

    return fn


def _small_tree():
    return uniform_cluster(16, nodes_per_switch=4)


@register_scenario
def paper_tree() -> ScenarioSpec:
    return ScenarioSpec(
        name="paper-tree",
        description="The paper's §5 cluster: 60 nodes, 2 Intel tiers, "
        "4-switch tree, stationary OU background load.",
        build_cluster=paper_cluster,
        smoke=True,
        paper=True,
    )


@register_scenario
def fat_tree() -> ScenarioSpec:
    return ScenarioSpec(
        name="fat-tree",
        description="24 uniform nodes on a dual-homed two-level fat-tree "
        "(redundant aggregation, BFS routing).",
        build_cluster=fat_tree_cluster,
        arrivals=_poisson(450.0),
        warmup_s=900.0,
        smoke=True,
        # 24 nodes picking groups of 2: one stale node dominates the
        # pairwise-normalised Eq-4 ratio (observed ≤ 7.3× at seeds 0-3)
        chaos_quality_bound=10.0,
    )


@register_scenario
def mesh() -> ScenarioSpec:
    return ScenarioSpec(
        name="mesh",
        description="18 uniform nodes, full leaf-switch mesh plus an N+1 "
        "standby switch with no nodes.",
        build_cluster=mesh_cluster,
        arrivals=_poisson(450.0),
        warmup_s=900.0,
    )


@register_scenario
def diurnal() -> ScenarioSpec:
    return ScenarioSpec(
        name="diurnal",
        description="16-node tree whose ambient load and job arrivals both "
        "follow a compressed day/night cycle.",
        build_cluster=_small_tree,
        workload_config=WorkloadConfig(
            diurnal=DiurnalConfig(period_s=21600.0, amplitude=0.6)
        ),
        arrivals=lambda n, rng: diurnal_arrivals(
            n, mean_interarrival_s=450.0, period_s=21600.0,
            amplitude=0.6, rng=rng,
        ),
        warmup_s=900.0,
    )


@register_scenario
def bursty() -> ScenarioSpec:
    base = WorkloadConfig()
    return ScenarioSpec(
        name="bursty",
        description="Fat-tree topology under arrival storms: jobs land in "
        "tight bursts separated by long lulls, batch load doubled.",
        build_cluster=fat_tree_cluster,
        workload_config=replace(
            base,
            jobs=replace(base.jobs, arrival_rate_per_hour=40.0),
        ),
        arrivals=lambda n, rng: bursty_arrivals(
            n, burst_size=4, within_burst_s=20.0,
            between_bursts_s=1800.0, rng=rng,
        ),
        warmup_s=600.0,
        smoke=True,
        # burst arrivals move ground truth much faster than the monitor
        # refresh, so a stale-but-honest choice costs more than on the
        # smooth legacy load (observed ≤ 5.2× at the pinned seeds)
        chaos_quality_bound=8.0,
    )


@register_scenario
def spike() -> ScenarioSpec:
    return ScenarioSpec(
        name="spike",
        description="16-node tree with correlated multi-node load spikes "
        "(cron storms): a third of the nodes jump together.",
        build_cluster=_small_tree,
        workload_config=WorkloadConfig(
            spikes=SpikeConfig(
                mean_interarrival_s=900.0,
                node_fraction=0.35,
                magnitude=3.0,
                duration_s=240.0,
            )
        ),
        arrivals=_poisson(450.0),
        warmup_s=900.0,
    )


@register_scenario
def hetero_accel() -> ScenarioSpec:
    return ScenarioSpec(
        name="hetero-accel",
        description="Three hardware tiers (12-core fast, 8-core slow, "
        "32-core accel hosts) with capability-shifted Eq-1 weights.",
        build_cluster=hetero_accel_cluster,
        compute_weights=ACCEL_COMPUTE_WEIGHTS,
        arrivals=_poisson(450.0),
        warmup_s=900.0,
    )


@register_scenario
def net_heavy() -> ScenarioSpec:
    base = WorkloadConfig()
    return ScenarioSpec(
        name="net-heavy",
        description="Dense background transfers and a communication-bound "
        "job mix (low α: network term dominates Eq-4).",
        build_cluster=_small_tree,
        workload_config=replace(
            base,
            netflows=replace(
                base.netflows,
                arrival_rate_per_hour=90.0,
                demand_mu=3.2,
                cross_switch_prob=0.8,
            ),
        ),
        job_mix=(
            JobClass(app="fft", alpha=0.2, weight=2.0),
            JobClass(app="stencil", alpha=0.3),
        ),
        default_alpha=0.2,
        arrivals=_poisson(450.0),
        warmup_s=900.0,
    )


@register_scenario
def compute_heavy() -> ScenarioSpec:
    base = WorkloadConfig()
    return ScenarioSpec(
        name="compute-heavy",
        description="Dense batch-job churn and a compute-bound job mix "
        "(high α: compute term dominates Eq-4).",
        build_cluster=_small_tree,
        workload_config=replace(
            base,
            jobs=replace(
                base.jobs,
                arrival_rate_per_hour=45.0,
                heavy_prob=0.15,
            ),
        ),
        job_mix=(
            JobClass(app="minimd", alpha=0.8, weight=2.0),
            JobClass(app="minife", alpha=0.7),
        ),
        default_alpha=0.8,
        arrivals=_poisson(450.0),
        warmup_s=900.0,
    )


#: kept for introspection/tests: the mix the paper itself evaluates
__all__ = ["PAPER_JOB_MIX"]
