"""Scenario zoo: registered topology × workload × hardware bundles.

Importing this package registers the built-in matrix (see
:mod:`repro.scenarios.builtin`); experiments address cells by name:

    from repro.scenarios import get_scenario, list_scenarios
    sc = get_scenario("fat-tree").build(seed=0)

See ``docs/SCENARIOS.md`` for the registry API and the full matrix.
"""

from repro.scenarios import builtin as _builtin  # noqa: F401  (registers)
from repro.scenarios.registry import (
    JobClass,
    ScenarioSpec,
    get_scenario,
    iter_specs,
    list_scenarios,
    register_scenario,
)
from repro.scenarios.topologies import (
    ACCEL_COMPUTE_WEIGHTS,
    fat_tree_cluster,
    hetero_accel_cluster,
    mesh_cluster,
)

__all__ = [
    "ACCEL_COMPUTE_WEIGHTS",
    "JobClass",
    "ScenarioSpec",
    "fat_tree_cluster",
    "get_scenario",
    "hetero_accel_cluster",
    "iter_specs",
    "list_scenarios",
    "mesh_cluster",
    "register_scenario",
]
