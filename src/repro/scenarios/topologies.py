"""Cluster builders beyond the paper's tree: fat-tree, mesh, hetero tiers.

These produce the ``(specs, topology)`` pairs the scenario registry
bundles.  The redundant shapes lean on
:class:`~repro.cluster.topology.SwitchTopology`'s ``extra_switch_links``
(deterministic BFS routing); the heterogeneous builder adds a third node
class — an accelerator tier whose Eq-1 profile differs enough from the
paper's two Intel classes that the stock attribute weights mis-rank it
(see :data:`ACCEL_COMPUTE_WEIGHTS`).
"""

from __future__ import annotations

from repro.cluster.node import NodeSpec
from repro.cluster.topology import SwitchTopology
from repro.core.weights import ComputeWeights
from repro.util.units import GIGABIT_PER_S_IN_MB_S

#: Eq-1 weights for accelerator-tier scenarios.  Static capability
#: (core count, total memory, clock) matters much more when node classes
#: differ 4x in width, so weight shifts from the dynamic-load terms to
#: the capability terms while keeping the SAW sum at 1.
ACCEL_COMPUTE_WEIGHTS = ComputeWeights(
    weights={
        "cpu_load": 0.25,
        "cpu_util": 0.15,
        "flow_rate": 0.15,
        "available_memory": 0.10,
        "core_count": 0.20,
        "cpu_frequency": 0.05,
        "total_memory": 0.10,
    }
)


def fat_tree_cluster(
    n_nodes: int = 24,
    *,
    nodes_per_switch: int = 6,
    cores: int = 12,
    frequency_ghz: float = 4.6,
    memory_gb: float = 16.0,
) -> tuple[list[NodeSpec], SwitchTopology]:
    """A two-level fat-tree: leaves dual-homed to two aggregation cores.

    The parent tree hangs every leaf off ``agg1``; the extra links give
    each leaf a second uplink to ``agg2`` plus an ``agg1``–``agg2``
    trunk, so leaf-to-leaf traffic has the 2-hop path through either
    aggregation switch (SNIPPETS.md snippet 1, "Fat-Tree").
    """
    n_leaves = _leaf_count(n_nodes, nodes_per_switch)
    parents: dict[str, str | None] = {"core": None, "agg1": "core", "agg2": "core"}
    extra: list[tuple[str, str, float]] = [
        ("agg1", "agg2", 2.0 * GIGABIT_PER_S_IN_MB_S)
    ]
    for i in range(1, n_leaves + 1):
        leaf = f"leaf{i}"
        parents[leaf] = "agg1"
        extra.append((leaf, "agg2", GIGABIT_PER_S_IN_MB_S))
    specs, node_switch = _uniform_specs(
        n_nodes, nodes_per_switch, "leaf", cores, frequency_ghz, memory_gb
    )
    topo = SwitchTopology(
        parents,
        node_switch,
        uplink_capacity_mbs=GIGABIT_PER_S_IN_MB_S,
        extra_switch_links=extra,
    )
    return specs, topo


def mesh_cluster(
    n_nodes: int = 18,
    *,
    nodes_per_switch: int = 6,
    cores: int = 12,
    frequency_ghz: float = 4.6,
    memory_gb: float = 16.0,
    with_standby: bool = True,
) -> tuple[list[NodeSpec], SwitchTopology]:
    """Full mesh of leaf switches plus an N+1 standby switch.

    The spanning tree is the paper's star; the extra links connect every
    leaf pair directly (full mesh) and, when ``with_standby``, add a
    spare switch meshed to all leaves that carries no nodes — the N+1
    redundancy shape from SNIPPETS.md snippet 1.
    """
    n_leaves = _leaf_count(n_nodes, nodes_per_switch)
    parents: dict[str, str | None] = {"root": None}
    for i in range(1, n_leaves + 1):
        parents[f"switch{i}"] = "root"
    extra: list[tuple[str, str]] = [
        (f"switch{i}", f"switch{j}")
        for i in range(1, n_leaves + 1)
        for j in range(i + 1, n_leaves + 1)
    ]
    if with_standby:
        parents["standby"] = "root"
        extra.extend(
            ("standby", f"switch{i}") for i in range(1, n_leaves + 1)
        )
    specs, node_switch = _uniform_specs(
        n_nodes, nodes_per_switch, "switch", cores, frequency_ghz, memory_gb
    )
    topo = SwitchTopology(parents, node_switch, extra_switch_links=extra)
    return specs, topo


def hetero_accel_cluster(
    *,
    n_fast: int = 12,
    n_slow: int = 10,
    n_accel: int = 8,
    nodes_per_switch: int = 10,
) -> tuple[list[NodeSpec], SwitchTopology]:
    """Three node classes: the paper's two Intel tiers plus accelerators.

    * ``fast``: 12-core @ 4.6 GHz, 16 GB (the paper's first tier)
    * ``slow``: 8-core @ 2.8 GHz, 16 GB (the paper's second tier)
    * ``accel``: 32-core @ 2.2 GHz, 64 GB — wide, slow-clocked
      accelerator hosts whose value the stock Eq-1 weights understate
      (pair with :data:`ACCEL_COMPUTE_WEIGHTS`).

    Classes are interleaved across leaf switches so every switch carries
    a mix, like the paper cluster does for its two tiers.
    """
    classes = (
        [("fast", 12, 4.6, 16.0)] * n_fast
        + [("slow", 8, 2.8, 16.0)] * n_slow
        + [("accel", 32, 2.2, 64.0)] * n_accel
    )
    if not classes:
        raise ValueError("cluster must have at least one node")
    n_leaves = _leaf_count(len(classes), nodes_per_switch)
    parents: dict[str, str | None] = {"root": None}
    for i in range(1, n_leaves + 1):
        parents[f"switch{i}"] = "root"
    specs: list[NodeSpec] = []
    node_switch: dict[str, str] = {}
    # Round-robin classes across switches: node i goes to switch i%L.
    for i, (tier, cores, freq, mem) in enumerate(classes):
        name = f"{tier}{i + 1}"
        switch = f"switch{i % n_leaves + 1}"
        node_switch[name] = switch
        specs.append(
            NodeSpec(
                name=name, cores=cores, frequency_ghz=freq,
                memory_gb=mem, switch=switch,
            )
        )
    topo = SwitchTopology(parents, node_switch)
    return specs, topo


# ----------------------------------------------------------------------
def _leaf_count(n_nodes: int, nodes_per_switch: int) -> int:
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    if nodes_per_switch <= 0:
        raise ValueError(
            f"nodes_per_switch must be positive, got {nodes_per_switch}"
        )
    return (n_nodes + nodes_per_switch - 1) // nodes_per_switch


def _uniform_specs(
    n_nodes: int,
    nodes_per_switch: int,
    leaf_prefix: str,
    cores: int,
    frequency_ghz: float,
    memory_gb: float,
) -> tuple[list[NodeSpec], dict[str, str]]:
    specs: list[NodeSpec] = []
    node_switch: dict[str, str] = {}
    for i in range(n_nodes):
        name = f"node{i + 1}"
        switch = f"{leaf_prefix}{i // nodes_per_switch + 1}"
        node_switch[name] = switch
        specs.append(
            NodeSpec(
                name=name, cores=cores, frequency_ghz=frequency_ghz,
                memory_gb=memory_gb, switch=switch,
            )
        )
    return specs, node_switch
