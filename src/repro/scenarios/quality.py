"""Eq-4 quality scoring across policies, shared by tests and benches.

The scenario matrix's acceptance claim is *relative*: on every
registered scenario, the network-load-aware allocator's placements must
score no worse under Equation 4 than the random and sequential
baselines picking from the very same snapshot.  :func:`policy_quality`
measures exactly that — every policy allocates from one shared
snapshot, and all groups are scored with the pairwise-shared
normalisation the chaos bounded-quality invariant uses (compute and
network totals over *all* groups sum to 1), so scores are comparable
across policies within a round.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.compute_load import compute_loads
from repro.core.network_load import network_loads, total_group_network_load
from repro.core.policies import PAPER_POLICIES
from repro.core.policies.base import AllocationRequest
from repro.monitor.snapshot import ClusterSnapshot

#: §5 policy order (kept here to avoid an import cycle with runner)
POLICY_ORDER = ("random", "sequential", "load_aware", "network_load_aware")


def eq4_group_scores(
    snapshot: ClusterSnapshot,
    groups: Mapping[str, Sequence[str]],
    request: AllocationRequest,
) -> dict[str, float]:
    """Eq-4 score of each named node group, normalised over all groups.

    Compute and network terms are each divided by their total across
    the given groups (the chaos checker's shared normalisation), so the
    returned scores sum to ``alpha + beta = 1`` and a lower score means
    a better placement *relative to the other groups*.
    """
    cl = compute_loads(snapshot, request.compute_weights)
    nl = network_loads(snapshot, request.network_weights)
    penalty = max(nl.values()) if nl else 0.0
    c = {name: sum(cl[u] for u in nodes) for name, nodes in groups.items()}
    n = {
        name: total_group_network_load(nl, nodes, missing_penalty=penalty)
        for name, nodes in groups.items()
    }
    c_total, n_total = sum(c.values()), sum(n.values())
    alpha, beta = request.tradeoff.alpha, request.tradeoff.beta
    return {
        name: alpha * (c[name] / c_total if c_total > 0 else 0.0)
        + beta * (n[name] / n_total if n_total > 0 else 0.0)
        for name in groups
    }


def policy_quality(
    scenario: str,
    *,
    seed: int = 0,
    n_processes: int = 8,
    ppn: int = 4,
    rounds: int = 3,
    gap_s: float = 300.0,
    warmup_s: float | None = None,
    policies: Sequence[str] = POLICY_ORDER,
) -> dict[str, float]:
    """Mean Eq-4 score per policy over ``rounds`` shared snapshots.

    Builds the named scenario, and for each round lets every policy
    allocate from the *same* snapshot (the §5 fairness protocol), then
    scores the chosen groups with :func:`eq4_group_scores`.  The cluster
    advances ``gap_s`` seconds between rounds so repeats see different
    load states.  Returns ``{policy: mean score}`` — on a healthy
    scenario ``network_load_aware`` comes out lowest.
    """
    from repro.scenarios import get_scenario

    spec = get_scenario(scenario)
    sc = spec.build(seed, warmup_s=warmup_s)
    rng = sc.streams.child("quality")
    request = spec.request(n_processes, ppn=ppn)
    scores: dict[str, list[float]] = {p: [] for p in policies}
    for _ in range(rounds):
        snapshot = sc.snapshot()
        groups = {
            name: PAPER_POLICIES[name]().allocate(
                snapshot, request, rng=rng
            ).nodes
            for name in policies
        }
        for name, score in eq4_group_scores(
            snapshot, groups, request
        ).items():
            scores[name].append(score)
        sc.advance(gap_s)
    return {p: float(np.mean(v)) for p, v in scores.items()}
