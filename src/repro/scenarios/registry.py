"""The scenario registry: named topology × workload × hardware bundles.

A :class:`ScenarioSpec` packages everything one evaluation environment
needs — a cluster builder (node classes + switch topology), a background
workload configuration, a job arrival process, a job mix, and the Eq-1 /
Eq-2 weight profiles requests should carry.  Registering one makes it
addressable by name from every experiment driver, the chaos harness, the
benches, and ``python -m repro scenarios``:

    @register_scenario
    def my_scenario() -> ScenarioSpec:
        return ScenarioSpec(name="my-scenario", ...)

    spec = get_scenario("my-scenario")
    sc = spec.build(seed=0)          # a live, warmed Scenario

``list_scenarios()`` returns names in registration order, so the paper's
own environment (registered first in :mod:`repro.scenarios.builtin`)
always leads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.cluster.node import NodeSpec
from repro.cluster.topology import SwitchTopology
from repro.core.policies.base import AllocationRequest
from repro.core.weights import ComputeWeights, NetworkWeights, TradeOff
from repro.workload.arrivals import fixed_arrivals
from repro.workload.generator import WorkloadConfig

ClusterBuilder = Callable[[], tuple[list[NodeSpec], SwitchTopology]]
ArrivalFn = Callable[[int, np.random.Generator], tuple[float, ...]]


@dataclass(frozen=True)
class JobClass:
    """One entry of a scenario's job mix: an app and its Eq-4 trade-off."""

    app: str
    alpha: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


#: default job mix: the paper's two evaluation applications (§5)
PAPER_JOB_MIX: tuple[JobClass, ...] = (
    JobClass(app="minimd", alpha=0.3),
    JobClass(app="minife", alpha=0.4),
)


def _default_arrivals(n: int, rng: np.random.Generator) -> tuple[float, ...]:
    return fixed_arrivals(n, 600.0)


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered evaluation environment.

    ``build`` wires the cluster, workload and monitoring exactly like
    :meth:`repro.experiments.scenario.Scenario.build`, so a spec whose
    builder/config match the legacy defaults reproduces legacy runs
    bit-for-bit (the ``paper-tree`` differential test relies on this).
    """

    name: str
    description: str
    build_cluster: ClusterBuilder
    workload_config: WorkloadConfig = field(default_factory=WorkloadConfig)
    arrivals: ArrivalFn = _default_arrivals
    job_mix: tuple[JobClass, ...] = PAPER_JOB_MIX
    compute_weights: ComputeWeights = field(default_factory=ComputeWeights)
    network_weights: NetworkWeights = field(default_factory=NetworkWeights)
    #: default Eq-4 alpha for requests that don't pick a job class
    default_alpha: float = 0.3
    #: warm-up used by drivers unless overridden
    warmup_s: float = 1800.0
    #: fast enough for tier-1 / CI smoke (False = nightly matrix only)
    smoke: bool = False
    #: True only for the paper's own environment
    paper: bool = False
    #: chaos bounded-quality invariant bound for this world (3.0 is the
    #: legacy calibration; regimes whose ground truth moves faster than
    #: the monitor honestly cost more quality per second of staleness)
    chaos_quality_bound: float = 3.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if not self.job_mix:
            raise ValueError("job_mix must not be empty")
        if not 0.0 <= self.default_alpha <= 1.0:
            raise ValueError(
                f"default_alpha must be in [0, 1], got {self.default_alpha}"
            )
        if self.warmup_s < 0:
            raise ValueError(f"warmup_s must be non-negative: {self.warmup_s}")

    # ------------------------------------------------------------------
    def build(
        self,
        seed: int = 0,
        *,
        warmup_s: float | None = None,
        with_monitoring: bool = True,
        store=None,
    ):
        """Build (and warm up) a live Scenario for this spec."""
        from repro.experiments.scenario import Scenario

        specs, topo = self.build_cluster()
        sc = Scenario.build(
            specs,
            topo,
            seed=seed,
            workload_config=self.workload_config,
            with_monitoring=with_monitoring,
            store=store,
        )
        warm = self.warmup_s if warmup_s is None else warmup_s
        if warm > 0:
            sc.warm_up(warm)
        return sc

    def request(
        self,
        n_processes: int,
        *,
        ppn: int | None = None,
        alpha: float | None = None,
    ) -> AllocationRequest:
        """An allocation request carrying this scenario's weight profiles."""
        a = self.default_alpha if alpha is None else alpha
        return AllocationRequest(
            n_processes=n_processes,
            ppn=ppn,
            tradeoff=TradeOff.from_alpha(a),
            compute_weights=self.compute_weights,
            network_weights=self.network_weights,
        )

    def sample_job(self, rng: np.random.Generator) -> JobClass:
        """Draw one job class from the mix (weighted, deterministic)."""
        weights = np.array([j.weight for j in self.job_mix], dtype=float)
        idx = int(rng.choice(len(self.job_mix), p=weights / weights.sum()))
        return self.job_mix[idx]

    def arrival_offsets(
        self, n: int, rng: np.random.Generator
    ) -> tuple[float, ...]:
        """``n`` submit-time offsets from the scenario's arrival process."""
        offsets = self.arrivals(n, rng)
        if len(offsets) != n:
            raise ValueError(
                f"arrival process returned {len(offsets)} offsets, wanted {n}"
            )
        if any(t < 0 for t in offsets):
            raise ValueError(f"negative arrival offset in {offsets[:5]}...")
        return offsets


# ----------------------------------------------------------------------
_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(
    fn: Callable[[], ScenarioSpec],
) -> Callable[[], ScenarioSpec]:
    """Register the ScenarioSpec returned by ``fn`` (decorator).

    The function is evaluated once at import; its spec is stored under
    ``spec.name``.  Duplicate names are an error — scenarios are global
    addresses.
    """
    spec = fn()
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return fn


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY) or "<none>"
        raise KeyError(
            f"unknown scenario {name!r}; registered: {known}"
        ) from None


def list_scenarios(*, smoke_only: bool = False) -> list[str]:
    """Registered scenario names in registration order."""
    return [
        name
        for name, spec in _REGISTRY.items()
        if not smoke_only or spec.smoke
    ]


def iter_specs(names: Sequence[str] | None = None) -> list[ScenarioSpec]:
    """Specs for ``names`` (default: all, registration order)."""
    return [get_scenario(n) for n in (names or list_scenarios())]
