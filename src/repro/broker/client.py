"""Synchronous client library for the broker daemon.

Small by design: a blocking socket, one JSON line per call, structured
errors surfaced as :class:`BrokerError`.  Connection establishment
retries with backoff (daemons take a moment to warm the scenario), every
call carries a timeout, and a broken connection is re-established
transparently on the next call — so scripted callers get at-most-once
submission with explicit failures, never hangs.

.. code-block:: python

    from repro.broker import BrokerClient

    with BrokerClient(port=7077) as client:
        grant = client.allocate(n=32, ppn=4, ttl_s=60.0)
        try:
            run_mpi_job(grant.hostfile)
            client.renew(grant.lease_id)
        finally:
            client.release(grant.lease_id)
"""

from __future__ import annotations

import itertools
import json
import os
import random
import socket
import time
import uuid
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.broker.protocol import PROTOCOL_VERSION, encode_request

#: operations the client retries on transport death without being told.
#: ``status`` is read-only; ``allocate`` is safe only because the typed
#: helper always attaches a dedupe token (see :meth:`BrokerClient.call`).
_RETRY_SAFE_OPS = frozenset({"allocate", "status"})

#: every error code this client understands: the full server-side
#: :class:`~repro.broker.protocol.ErrorCode` enum plus the two codes the
#: client mints locally (``CONNECT``/``TIMEOUT`` — transport failures
#: that never crossed the wire).  ``repro lint`` cross-checks this
#: registry against the enum (rules ERR004/ERR005), so a code added to
#: the protocol without teaching the client fails the build.
KNOWN_ERROR_CODES = frozenset(
    {
        # transport (client-side)
        "CONNECT",
        "TIMEOUT",
        # request validation
        "BAD_REQUEST",
        "UNSUPPORTED_VERSION",
        "UNKNOWN_OP",
        # admission / placement
        "BUSY",
        "NO_CAPACITY",
        "WAIT",
        "MONITOR_STALE",
        # lease lifecycle
        "UNKNOWN_LEASE",
        "EXPIRED_LEASE",
        # reconfiguration
        "NODE_CONFLICT",
        "BAD_SWAP",
        "STALE_PLAN",
        "RECONFIG_FAILED",
        # server bugs
        "INTERNAL",
    }
)

#: codes where retrying after a backoff can plausibly succeed
TRANSIENT_ERROR_CODES = frozenset(
    {"CONNECT", "TIMEOUT", "BUSY", "MONITOR_STALE"}
)

#: environment knob seeding the client's retry-jitter stream when neither
#: ``rng`` nor ``seed`` is passed (``repro client --seed`` sets it too)
SEED_ENV_VAR = "REPRO_CLIENT_SEED"


def _default_rng(seed: int | None) -> random.Random:
    """The retry-jitter stream: explicit seed > env knob > 0.

    Always seeded — an entropy-seeded generator here would make chaos
    transport scenarios (which replay injected connection deaths against
    recorded backoff schedules) non-reproducible.  Identical seeds give
    identical jitter, which is exactly what replay wants; callers that
    need decorrelated fleets pass distinct seeds.
    """
    if seed is None:
        env = os.environ.get(SEED_ENV_VAR)
        if env:
            try:
                seed = int(env)
            except ValueError:
                raise ValueError(
                    f"{SEED_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            seed = 0
    return random.Random(seed)


def _default_socket_factory(
    host: str, port: int, timeout_s: float
) -> socket.socket:
    """A real TCP connection with Nagle disabled (the production path)."""
    sock = socket.create_connection((host, port), timeout=timeout_s)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class BrokerError(Exception):
    """A structured failure from the daemon (or the transport).

    ``code`` matches :class:`repro.broker.protocol.ErrorCode` values,
    plus the client-side ``CONNECT`` and ``TIMEOUT``.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message

    @property
    def transient(self) -> bool:
        """Whether retrying later can plausibly succeed."""
        return self.code in TRANSIENT_ERROR_CODES


@dataclass(frozen=True)
class Grant:
    """A successful allocation as seen by the client."""

    lease_id: str
    nodes: tuple[str, ...]
    procs: Mapping[str, int]
    hostfile: str
    policy: str
    ttl_s: float
    expires_at: float


class BrokerClient:
    """Blocking JSON-lines client with connect retries and timeouts."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7077,
        *,
        timeout_s: float = 10.0,
        connect_retries: int = 20,
        retry_delay_s: float = 0.1,
        transport_retries: int = 1,
        backoff_s: float = 0.05,
        socket_factory: Callable[[str, int, float], socket.socket] | None = None,
        rng: random.Random | None = None,
        seed: int | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """``rng`` (an already-seeded generator) wins over ``seed``; with
        neither, the jitter stream is seeded from ``$REPRO_CLIENT_SEED``
        (default 0) so retry schedules replay byte-identically.
        """
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive: {timeout_s}")
        if connect_retries < 0 or retry_delay_s < 0:
            raise ValueError("retries/delay must be non-negative")
        if transport_retries < 0 or backoff_s < 0:
            raise ValueError("transport_retries/backoff_s must be non-negative")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.connect_retries = connect_retries
        self.retry_delay_s = retry_delay_s
        self.transport_retries = transport_retries
        self.backoff_s = backoff_s
        self.retries_used = 0
        self._socket_factory = socket_factory or _default_socket_factory
        self._rng = rng if rng is not None else _default_rng(seed)
        self._sleep = sleep
        self._sock: socket.socket | None = None
        self._rfile = None
        self._ids = itertools.count(1)

    # -- connection -----------------------------------------------------
    def connect(self) -> "BrokerClient":
        """Establish the connection, retrying while the daemon boots."""
        if self._sock is not None:
            return self
        last: Exception | None = None
        for attempt in range(self.connect_retries + 1):
            try:
                sock = self._socket_factory(
                    self.host, self.port, self.timeout_s
                )
                self._sock = sock
                self._rfile = sock.makefile("rb")
                return self
            except OSError as exc:
                last = exc
                if attempt < self.connect_retries:
                    self._sleep(self.retry_delay_s)
        raise BrokerError(
            "CONNECT",
            f"cannot reach broker at {self.host}:{self.port} "
            f"after {self.connect_retries + 1} attempts: {last}",
        )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "BrokerClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- RPC ------------------------------------------------------------
    def call(self, op: str, params: dict[str, Any] | None = None) -> dict:
        """One request/response round-trip; returns the result dict.

        Raises :class:`BrokerError` with the server's error code on
        failure responses, ``TIMEOUT`` when the daemon doesn't answer in
        ``timeout_s``, and ``CONNECT`` when the connection cannot be
        (re-)established.

        Transport deaths (``CONNECT``/``TIMEOUT``) are retried up to
        ``transport_retries`` times with jittered exponential backoff —
        but only for operations that are safe to replay: ``status`` is
        read-only, and ``allocate`` only when the request carries an
        idempotency ``token`` the server dedupes on.  ``renew``,
        ``release`` and ``reconfigure`` are never replayed automatically;
        the caller sees the transport error and decides.
        """
        retryable = op in _RETRY_SAFE_OPS and (
            op != "allocate" or bool((params or {}).get("token"))
        )
        attempts = self.transport_retries + 1 if retryable else 1
        for attempt in range(attempts):
            try:
                return self._call_once(op, params)
            except BrokerError as exc:
                transient = exc.code in ("CONNECT", "TIMEOUT")
                if not transient or attempt + 1 >= attempts:
                    raise
                self.retries_used += 1
                delay = self.backoff_s * (2**attempt) * (
                    0.5 + self._rng.random()
                )
                self._sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def _call_once(self, op: str, params: dict[str, Any] | None = None) -> dict:
        self.connect()
        assert self._sock is not None and self._rfile is not None
        req_id = f"c{next(self._ids)}"
        line = encode_request(req_id, op, params)
        try:
            self._sock.sendall(line)
            raw = self._rfile.readline()
        except socket.timeout:
            self.close()
            raise BrokerError(
                "TIMEOUT", f"no response to {op!r} within {self.timeout_s}s"
            ) from None
        except OSError as exc:
            self.close()
            raise BrokerError("CONNECT", f"connection lost: {exc}") from None
        if not raw:
            self.close()
            raise BrokerError("CONNECT", "server closed the connection")
        try:
            obj = json.loads(raw)
        except json.JSONDecodeError as exc:
            self.close()
            raise BrokerError(
                "INTERNAL", f"unparseable response: {exc}"
            ) from None
        if obj.get("v") != PROTOCOL_VERSION:
            raise BrokerError(
                "UNSUPPORTED_VERSION",
                f"server answered v{obj.get('v')}, client speaks "
                f"v{PROTOCOL_VERSION}",
            )
        if not obj.get("ok"):
            err = obj.get("error") or {}
            raise BrokerError(
                str(err.get("code", "INTERNAL")),
                str(err.get("message", "unknown error")),
            )
        result = obj.get("result")
        return result if isinstance(result, dict) else {}

    # -- typed operations ----------------------------------------------
    def allocate(
        self,
        n: int,
        *,
        ppn: int | None = None,
        alpha: float = 0.3,
        policy: str | None = None,
        ttl_s: float | None = None,
        token: str | None = None,
    ) -> Grant:
        """Request nodes for ``n`` processes; returns the lease grant.

        A fresh idempotency ``token`` is attached when the caller does
        not supply one, so a request replayed after a transport death is
        deduped server-side rather than granted twice.
        """
        result = self.call(
            "allocate",
            {"n": n, "ppn": ppn, "alpha": alpha, "policy": policy,
             "ttl_s": ttl_s, "token": token or uuid.uuid4().hex},
        )
        return Grant(
            lease_id=str(result["lease_id"]),
            nodes=tuple(result["nodes"]),
            procs={str(k): int(v) for k, v in result["procs"].items()},
            hostfile=str(result["hostfile"]),
            policy=str(result["policy"]),
            ttl_s=float(result["ttl_s"]),
            expires_at=float(result["expires_at"]),
        )

    def renew(self, lease_id: str, *, ttl_s: float | None = None) -> dict:
        """Extend a lease's TTL; returns the renewal record."""
        return self.call("renew", {"lease_id": lease_id, "ttl_s": ttl_s})

    def release(self, lease_id: str) -> dict:
        """Release a lease; returns the release record."""
        return self.call("release", {"lease_id": lease_id})

    def reconfigure(
        self,
        lease_id: str,
        *,
        remaining_s: float | None = None,
        alpha: float | None = None,
    ) -> dict:
        """Ask the broker to replan the lease against current conditions.

        ``remaining_s`` is this client's estimate of how much work its
        job still has (the cost/benefit gate amortizes migration cost
        over it); without it the broker uses the lease's remaining TTL.

        Returns the decision record.  When ``result["reconfigured"]`` is
        true the caller must checkpoint, restart on ``result["hostfile"]``,
        and treat ``result["drop_nodes"]`` as gone; when false,
        ``result["reason"]`` says why staying put won.
        """
        return self.call(
            "reconfigure",
            {
                "lease_id": lease_id,
                "remaining_s": remaining_s,
                "alpha": alpha,
            },
        )

    def status(self) -> dict:
        """The daemon's status/metrics block."""
        return self.call("status")
