"""Synchronous client library for the broker daemon.

Small by design: a blocking socket, one JSON line per call, structured
errors surfaced as :class:`BrokerError`.  Connection establishment
retries with backoff (daemons take a moment to warm the scenario), every
call carries a timeout, and a broken connection is re-established
transparently on the next call — so scripted callers get at-most-once
submission with explicit failures, never hangs.

.. code-block:: python

    from repro.broker import BrokerClient

    with BrokerClient(port=7077) as client:
        grant = client.allocate(n=32, ppn=4, ttl_s=60.0)
        try:
            run_mpi_job(grant.hostfile)
            client.renew(grant.lease_id)
        finally:
            client.release(grant.lease_id)
"""

from __future__ import annotations

import itertools
import json
import os
import random
import socket
import time
import uuid
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.broker.protocol import (
    FRAME_HEADER,
    PROTOCOL_VERSION,
    encode_frame,
    encode_request,
    load_payload,
    request_obj,
)

#: operations the client retries on transport death without being told.
#: ``status``/``shards``/``resolve``/``fleet_status`` are read-only;
#: ``allocate`` is safe only because the typed helper always attaches a
#: dedupe token (see :meth:`BrokerClient.call`).  ``fleet_plan`` is NOT
#: retry-safe: a replayed pass would migrate the fleet twice.
_RETRY_SAFE_OPS = frozenset(
    {"allocate", "status", "shards", "resolve", "fleet_status"}
)

#: every error code this client understands: the full server-side
#: :class:`~repro.broker.protocol.ErrorCode` enum plus the two codes the
#: client mints locally (``CONNECT``/``TIMEOUT`` — transport failures
#: that never crossed the wire).  ``repro lint`` cross-checks this
#: registry against the enum (rules ERR004/ERR005), so a code added to
#: the protocol without teaching the client fails the build.
KNOWN_ERROR_CODES = frozenset(
    {
        # transport (client-side)
        "CONNECT",
        "TIMEOUT",
        # request validation
        "BAD_REQUEST",
        "UNSUPPORTED_VERSION",
        "UNKNOWN_OP",
        # admission / placement
        "BUSY",
        "NO_CAPACITY",
        "WAIT",
        "MONITOR_STALE",
        "SHARD_DOWN",
        # lease lifecycle
        "UNKNOWN_LEASE",
        "EXPIRED_LEASE",
        # reconfiguration
        "NODE_CONFLICT",
        "BAD_SWAP",
        "STALE_PLAN",
        "RECONFIG_FAILED",
        # server bugs
        "INTERNAL",
    }
)

#: codes where retrying after a backoff can plausibly succeed
TRANSIENT_ERROR_CODES = frozenset(
    {"CONNECT", "TIMEOUT", "BUSY", "MONITOR_STALE", "SHARD_DOWN"}
)

#: environment knob seeding the client's retry-jitter stream when neither
#: ``rng`` nor ``seed`` is passed (``repro client --seed`` sets it too)
SEED_ENV_VAR = "REPRO_CLIENT_SEED"


def _default_rng(seed: int | None) -> random.Random:
    """The retry-jitter stream: explicit seed > env knob > 0.

    Always seeded — an entropy-seeded generator here would make chaos
    transport scenarios (which replay injected connection deaths against
    recorded backoff schedules) non-reproducible.  Identical seeds give
    identical jitter, which is exactly what replay wants; callers that
    need decorrelated fleets pass distinct seeds.
    """
    if seed is None:
        env = os.environ.get(SEED_ENV_VAR)
        if env:
            try:
                seed = int(env)
            except ValueError:
                raise ValueError(
                    f"{SEED_ENV_VAR} must be an integer, got {env!r}"
                ) from None
        else:
            seed = 0
    return random.Random(seed)


def _default_socket_factory(
    host: str, port: int, timeout_s: float
) -> socket.socket:
    """A real TCP connection with Nagle disabled (the production path)."""
    sock = socket.create_connection((host, port), timeout=timeout_s)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


class BrokerError(Exception):
    """A structured failure from the daemon (or the transport).

    ``code`` matches :class:`repro.broker.protocol.ErrorCode` values,
    plus the client-side ``CONNECT`` and ``TIMEOUT``.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message

    @property
    def transient(self) -> bool:
        """Whether retrying later can plausibly succeed."""
        return self.code in TRANSIENT_ERROR_CODES


@dataclass(frozen=True)
class Grant:
    """A successful allocation as seen by the client."""

    lease_id: str
    nodes: tuple[str, ...]
    procs: Mapping[str, int]
    hostfile: str
    policy: str
    ttl_s: float
    expires_at: float


class BrokerClient:
    """Blocking JSON-lines client with connect retries and timeouts."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7077,
        *,
        timeout_s: float = 10.0,
        connect_retries: int = 20,
        retry_delay_s: float = 0.1,
        transport_retries: int = 1,
        backoff_s: float = 0.05,
        socket_factory: Callable[[str, int, float], socket.socket] | None = None,
        rng: random.Random | None = None,
        seed: int | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """``rng`` (an already-seeded generator) wins over ``seed``; with
        neither, the jitter stream is seeded from ``$REPRO_CLIENT_SEED``
        (default 0) so retry schedules replay byte-identically.
        """
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive: {timeout_s}")
        if connect_retries < 0 or retry_delay_s < 0:
            raise ValueError("retries/delay must be non-negative")
        if transport_retries < 0 or backoff_s < 0:
            raise ValueError("transport_retries/backoff_s must be non-negative")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.connect_retries = connect_retries
        self.retry_delay_s = retry_delay_s
        self.transport_retries = transport_retries
        self.backoff_s = backoff_s
        self.retries_used = 0
        self._socket_factory = socket_factory or _default_socket_factory
        self._rng = rng if rng is not None else _default_rng(seed)
        self._sleep = sleep
        self._sock: socket.socket | None = None
        self._rfile = None
        self._ids = itertools.count(1)
        # live transport state (re-negotiated on every reconnect)
        self._codec = "json"
        self._pipeline = False
        self._max_inflight = 1
        # desired negotiation, replayed by connect() after a reconnect
        self._negotiate: dict[str, Any] | None = None
        self._last_hello: dict[str, Any] = {}

    # -- connection -----------------------------------------------------
    def connect(self) -> "BrokerClient":
        """Establish the connection, retrying while the daemon boots.

        If :meth:`hello` negotiated transport options earlier, they are
        re-negotiated automatically — a transparent reconnect lands in
        the same codec/pipelining mode the caller chose.
        """
        if self._sock is not None:
            return self
        last: Exception | None = None
        for attempt in range(self.connect_retries + 1):
            try:
                sock = self._socket_factory(
                    self.host, self.port, self.timeout_s
                )
                self._sock = sock
                self._rfile = sock.makefile("rb")
                break
            except OSError as exc:
                last = exc
                if attempt < self.connect_retries:
                    self._sleep(self.retry_delay_s)
        else:
            raise BrokerError(
                "CONNECT",
                f"cannot reach broker at {self.host}:{self.port} "
                f"after {self.connect_retries + 1} attempts: {last}",
            )
        if self._negotiate is not None:
            try:
                self._hello_exchange(self._negotiate)
            except BrokerError:
                self.close()
                raise
        return self

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        # a fresh connection always starts in JSON-lines mode
        self._codec = "json"
        self._pipeline = False
        self._max_inflight = 1

    def __enter__(self) -> "BrokerClient":
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- RPC ------------------------------------------------------------
    def call(self, op: str, params: dict[str, Any] | None = None) -> dict:
        """One request/response round-trip; returns the result dict.

        Raises :class:`BrokerError` with the server's error code on
        failure responses, ``TIMEOUT`` when the daemon doesn't answer in
        ``timeout_s``, and ``CONNECT`` when the connection cannot be
        (re-)established.

        Transport deaths (``CONNECT``/``TIMEOUT``) are retried up to
        ``transport_retries`` times with jittered exponential backoff —
        but only for operations that are safe to replay: ``status`` is
        read-only, and ``allocate`` only when the request carries an
        idempotency ``token`` the server dedupes on.  ``renew``,
        ``release`` and ``reconfigure`` are never replayed automatically;
        the caller sees the transport error and decides.
        """
        retryable = op in _RETRY_SAFE_OPS and (
            op != "allocate" or bool((params or {}).get("token"))
        )
        attempts = self.transport_retries + 1 if retryable else 1
        for attempt in range(attempts):
            try:
                return self._call_once(op, params)
            except BrokerError as exc:
                transient = exc.code in ("CONNECT", "TIMEOUT")
                if not transient or attempt + 1 >= attempts:
                    raise
                self.retries_used += 1
                delay = self.backoff_s * (2**attempt) * (
                    0.5 + self._rng.random()
                )
                self._sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def _call_once(self, op: str, params: dict[str, Any] | None = None) -> dict:
        self.connect()
        return self._exchange(op, params)

    def _exchange(self, op: str, params: dict[str, Any] | None) -> dict:
        """One raw round-trip on the live connection (no reconnect)."""
        assert self._sock is not None and self._rfile is not None
        req_id = f"c{next(self._ids)}"
        try:
            self._sock.sendall(self._encode(req_id, op, params))
            obj = self._read_response_obj()
        except socket.timeout:
            self.close()
            raise BrokerError(
                "TIMEOUT", f"no response to {op!r} within {self.timeout_s}s"
            ) from None
        except OSError as exc:
            self.close()
            raise BrokerError("CONNECT", f"connection lost: {exc}") from None
        outcome = self._outcome(obj)
        if isinstance(outcome, BrokerError):
            raise outcome
        return outcome

    def _encode(
        self, req_id: str, op: str, params: dict[str, Any] | None
    ) -> bytes:
        if self._codec == "json":
            return encode_request(req_id, op, params)
        return encode_frame(request_obj(req_id, op, params), self._codec)

    def _read_exact(self, n: int) -> bytes:
        assert self._rfile is not None
        data = self._rfile.read(n)
        if data is None or len(data) < n:
            self.close()
            raise BrokerError("CONNECT", "server closed the connection")
        return data

    def _read_response_obj(self) -> dict:
        """Read and decode one response in the connection's codec."""
        assert self._rfile is not None
        if self._codec == "json":
            raw = self._rfile.readline()
            if not raw:
                self.close()
                raise BrokerError("CONNECT", "server closed the connection")
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError as exc:
                self.close()
                raise BrokerError(
                    "INTERNAL", f"unparseable response: {exc}"
                ) from None
        else:
            header = self._read_exact(FRAME_HEADER.size)
            (length,) = FRAME_HEADER.unpack(header)
            payload = self._read_exact(length)
            try:
                obj = load_payload(payload, self._codec)
            except Exception as exc:  # noqa: BLE001 — any decode fault
                self.close()
                raise BrokerError(
                    "INTERNAL", f"unparseable response: {exc}"
                ) from None
        if not isinstance(obj, dict):
            self.close()
            raise BrokerError("INTERNAL", "response is not an object")
        return obj

    @staticmethod
    def _outcome(obj: dict) -> dict | BrokerError:
        """Map a decoded response to its result dict or a BrokerError."""
        if obj.get("v") != PROTOCOL_VERSION:
            return BrokerError(
                "UNSUPPORTED_VERSION",
                f"server answered v{obj.get('v')}, client speaks "
                f"v{PROTOCOL_VERSION}",
            )
        if not obj.get("ok"):
            err = obj.get("error") or {}
            return BrokerError(
                str(err.get("code", "INTERNAL")),
                str(err.get("message", "unknown error")),
            )
        result = obj.get("result")
        return result if isinstance(result, dict) else {}

    # -- transport negotiation ------------------------------------------
    def hello(
        self,
        *,
        codec: str = "json",
        pipeline: bool = False,
        max_inflight: int = 32,
    ) -> dict:
        """Negotiate the connection's codec and pipelining window.

        The choice is remembered: a transparent reconnect after a
        transport death re-negotiates the same options before the next
        request is sent.  Returns the server's hello result (granted
        codec, window, and its full codec list).
        """
        self._negotiate = {
            "codec": codec,
            "pipeline": pipeline,
            "max_inflight": max_inflight,
        }
        if self._sock is None:
            self.connect()  # connect() replays the negotiation
            return dict(self._last_hello)
        return self._hello_exchange(self._negotiate)

    def _hello_exchange(self, want: dict[str, Any]) -> dict:
        result = self._exchange("hello", dict(want))
        self._codec = str(result.get("codec", "json"))
        self._pipeline = bool(result.get("pipeline", False))
        self._max_inflight = int(result.get("max_inflight", 1))
        self._last_hello = result
        return result

    # -- pipelined bursts -----------------------------------------------
    def call_many(
        self, op: str, params_list: list[dict[str, Any] | None]
    ) -> list[dict | BrokerError]:
        """Issue many calls down one pipelined connection.

        Requests are written in bursts of the negotiated in-flight
        window (one ``sendall`` per burst) and responses are matched
        back by request id, in whatever order the server finishes them.
        Per-request failures come back as :class:`BrokerError` *values*;
        only transport death raises — and is **never** retried
        automatically, because half a burst may already be decided
        (attach idempotency tokens and replay yourself if you need
        exactly-once allocates).  Requires a prior
        :meth:`hello(pipeline=True) <hello>`.
        """
        if not params_list:
            return []
        if not self._pipeline:
            raise BrokerError(
                "BAD_REQUEST",
                "call_many requires hello(pipeline=True) first",
            )
        self.connect()
        assert self._sock is not None
        results: list[dict | BrokerError | None] = [None] * len(params_list)
        window = max(1, self._max_inflight)
        pos = 0
        try:
            while pos < len(params_list):
                chunk = params_list[pos : pos + window]
                frames: list[bytes] = []
                id_to_index: dict[str, int] = {}
                for offset, params in enumerate(chunk):
                    req_id = f"c{next(self._ids)}"
                    id_to_index[req_id] = pos + offset
                    frames.append(self._encode(req_id, op, params))
                self._sock.sendall(b"".join(frames))
                while id_to_index:
                    obj = self._read_response_obj()
                    index = id_to_index.pop(str(obj.get("id")), None)
                    if index is not None:
                        results[index] = self._outcome(obj)
                pos += len(chunk)
        except socket.timeout:
            self.close()
            raise BrokerError(
                "TIMEOUT",
                f"pipelined {op!r} burst timed out after {self.timeout_s}s",
            ) from None
        except OSError as exc:
            self.close()
            raise BrokerError("CONNECT", f"connection lost: {exc}") from None
        return results  # type: ignore[return-value]

    # -- typed operations ----------------------------------------------
    def allocate(
        self,
        n: int,
        *,
        ppn: int | None = None,
        alpha: float = 0.3,
        policy: str | None = None,
        ttl_s: float | None = None,
        token: str | None = None,
        priority: float = 0.0,
    ) -> Grant:
        """Request nodes for ``n`` processes; returns the lease grant.

        A fresh idempotency ``token`` is attached when the caller does
        not supply one, so a request replayed after a transport death is
        deduped server-side rather than granted twice.  ``priority``
        orders the request within the server's micro-batch (higher
        decides first under contention).
        """
        result = self.call(
            "allocate",
            {"n": n, "ppn": ppn, "alpha": alpha, "policy": policy,
             "ttl_s": ttl_s, "token": token or uuid.uuid4().hex,
             "priority": priority if priority else None},
        )
        return Grant(
            lease_id=str(result["lease_id"]),
            nodes=tuple(result["nodes"]),
            procs={str(k): int(v) for k, v in result["procs"].items()},
            hostfile=str(result["hostfile"]),
            policy=str(result["policy"]),
            ttl_s=float(result["ttl_s"]),
            expires_at=float(result["expires_at"]),
        )

    def renew(self, lease_id: str, *, ttl_s: float | None = None) -> dict:
        """Extend a lease's TTL; returns the renewal record."""
        return self.call("renew", {"lease_id": lease_id, "ttl_s": ttl_s})

    def release(self, lease_id: str) -> dict:
        """Release a lease; returns the release record."""
        return self.call("release", {"lease_id": lease_id})

    def reconfigure(
        self,
        lease_id: str,
        *,
        remaining_s: float | None = None,
        alpha: float | None = None,
    ) -> dict:
        """Ask the broker to replan the lease against current conditions.

        ``remaining_s`` is this client's estimate of how much work its
        job still has (the cost/benefit gate amortizes migration cost
        over it); without it the broker uses the lease's remaining TTL.

        Returns the decision record.  When ``result["reconfigured"]`` is
        true the caller must checkpoint, restart on ``result["hostfile"]``,
        and treat ``result["drop_nodes"]`` as gone; when false,
        ``result["reason"]`` says why staying put won.
        """
        return self.call(
            "reconfigure",
            {
                "lease_id": lease_id,
                "remaining_s": remaining_s,
                "alpha": alpha,
            },
        )

    def status(self) -> dict:
        """The daemon's status/metrics block."""
        return self.call("status")

    def fleet_plan(
        self, *, dry_run: bool = False, max_actions: int = 8
    ) -> dict:
        """Run one coordinated malleability pass over every live lease.

        The broker replans each lease against one snapshot, gates each
        candidate under the global fleet rate limiter, and applies the
        accepted plans shrinks-first through the two-phase executor.
        ``dry_run=True`` returns the ordered plan without executing it.
        Never retried on transport death — a replayed pass would migrate
        the fleet twice; inspect ``fleet_status`` and decide yourself.
        """
        return self.call(
            "fleet_plan",
            {"dry_run": dry_run or None, "max_actions": max_actions},
        )

    def fleet_status(self) -> dict:
        """Fleet-pass counters and rate-limiter state (read-only)."""
        return self.call("fleet_status")

    def shards(self) -> dict:
        """The federation router's per-shard aggregates and scores.

        Only a federation daemon (``serve --shards N``) answers this; a
        single-broker daemon returns ``UNKNOWN_OP``.
        """
        return self.call("shards")

    def resolve(self, lease_id: str) -> dict:
        """Which federation shard owns ``lease_id`` (router verb)."""
        return self.call("resolve", {"lease_id": lease_id})
