"""The broker daemon — asyncio JSON-lines over TCP.

Transport architecture:

* one :func:`asyncio.start_server` connection handler per client,
  reading newline-delimited requests and writing one response line per
  request, in order.  A ``hello`` request may upgrade the connection:
  to the length-prefixed ``binary``/``msgpack`` codec (the hello
  response itself still travels in the old codec), and/or to
  **pipelined** mode, where up to ``max_inflight`` allocate requests
  ride the admission queue concurrently and responses are written as
  they complete — possibly out of order, matched by request ``id``.
  Exceeding the in-flight window answers ``BUSY`` immediately;
* ``allocate`` requests flow through a **bounded admission queue** into
  a single batcher task.  The batcher drains whatever accumulated while
  the previous batch was being decided (plus, optionally, waits
  ``batch_window_s`` for stragglers), then decides the whole batch
  against one shared snapshot via
  :meth:`~repro.broker.service.BrokerService.allocate_batch`.  When the
  queue is full the connection handler answers ``BUSY`` immediately —
  explicit backpressure instead of unbounded buffering;
* ``renew``/``release``/``status`` are cheap bookkeeping and are served
  inline by the connection handler;
* a **sweeper task** reclaims expired leases every ``sweep_period_s`` so
  capacity held by dead clients returns to the pool even if nobody ever
  allocates again.

:class:`BrokerDaemonThread` hosts the event loop in a daemon thread so
synchronous code (benchmarks, tests, notebooks) can run a broker without
touching asyncio.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from typing import Any

from repro.broker.protocol import (
    CODECS,
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    AllocateParams,
    ErrorCode,
    HelloParams,
    ProtocolError,
    Request,
    Response,
    encode_frame,
    encode_response,
    error_response,
    load_payload,
    ok_response,
    parse_request,
    parse_request_obj,
    response_obj,
)
from repro.broker.service import BrokerService

log = logging.getLogger(__name__)

#: Coalesced-response cap: a pipelined burst flushes at least this often
#: even while further requests are still buffered, bounding both memory
#: and the client's wait for the first response of a very large burst.
_FLUSH_HIGH_WATER = 256 * 1024


class _TransportViolation(Exception):
    """A framing-level fault the connection cannot recover from."""

    def __init__(self, error: ProtocolError) -> None:
        super().__init__(error.message)
        self.error = error


class _ConnState:
    """Per-connection transport options negotiated via ``hello``."""

    __slots__ = ("codec", "pipeline", "max_inflight", "write_lock", "out")

    def __init__(self) -> None:
        self.codec = "json"
        self.pipeline = False
        self.max_inflight = 1
        self.write_lock = asyncio.Lock()
        # Coalesced inline responses awaiting one flush (reader loop only).
        self.out = bytearray()


class BrokerServer:
    """Asyncio TCP daemon around a :class:`BrokerService`.

    ``port=0`` binds an ephemeral port (read it back from ``self.port``
    after :meth:`start`).  ``batch_window_s=0`` (the default) batches
    *adaptively*: each batch is whatever arrived while the previous one
    was being decided — no added latency when traffic is light, large
    batches exactly when traffic is heavy.  A positive window additionally
    waits that long for stragglers before deciding.
    """

    def __init__(
        self,
        service: BrokerService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window_s: float = 0.0,
        max_batch: int = 64,
        max_queue: int = 128,
        sweep_period_s: float = 1.0,
    ) -> None:
        if batch_window_s < 0:
            raise ValueError(f"batch_window_s must be >= 0: {batch_window_s}")
        if max_batch <= 0 or max_queue <= 0:
            raise ValueError("max_batch and max_queue must be positive")
        if sweep_period_s <= 0:
            raise ValueError(f"sweep_period_s must be positive: {sweep_period_s}")
        self.service = service
        self.host = host
        self.port = port
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.sweep_period_s = sweep_period_s
        self._server: asyncio.base_events.Server | None = None
        self._queue: asyncio.Queue | None = None
        self._tasks: list[asyncio.Task] = []

    # ------------------------------------------------------------------
    async def start(
        self, *, start_batcher: bool = True, start_sweeper: bool = True
    ) -> tuple[str, int]:
        """Bind and start serving; returns the actual ``(host, port)``.

        The batcher/sweeper switches exist for deterministic tests (a
        paused batcher makes the admission queue fill synchronously).
        """
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        # The stream limit must exceed MAX_LINE_BYTES so oversized-but-
        # bounded lines are *read* and then rejected (and counted) by
        # parse_request, instead of blowing up readline() mid-transport.
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=4 * MAX_LINE_BYTES,
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]  # lint: allow(RACE001) — start() runs once; rebinding host/port to the resolved socket address is the point
        if start_batcher:
            self._spawn(self._batcher(), "batcher")
        if start_sweeper:
            self._spawn(self._sweeper(), "sweeper")
        log.info("broker listening on %s:%d", self.host, self.port)
        return self.host, self.port

    def _spawn(self, coro: Any, name: str) -> "asyncio.Task[Any]":
        """Start a background task with its failure accounted for.

        The reference is retained in ``self._tasks`` (the loop keeps only
        a weak one) and a done-callback logs and counts any unexpected
        death into ``metrics.background_task_failures`` — a silently dead
        sweeper would otherwise leak every expired lease forever.
        """
        task = asyncio.ensure_future(coro)

        def _on_done(done: "asyncio.Task[Any]") -> None:
            if done.cancelled():
                return
            exc = done.exception()
            if exc is not None:
                self.service.metrics.background_task_failures += 1
                log.error("background task %r died: %r", name, exc)

        task.add_done_callback(_on_done)
        self._tasks.append(task)
        return task

    async def serve_forever(self) -> None:
        """Run until cancelled (after :meth:`start`)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, cancel background tasks, fail queued waiters.

        Safe to call twice or concurrently: every shared handle is
        swapped out *before* the first await touching it, so a task
        registered while the drain awaits lands in a fresh list and is
        drained by the next round instead of being ``clear()``-ed away
        uncancelled, and a second ``stop()`` closing the listener finds
        it already taken.
        """
        while self._tasks:
            tasks, self._tasks = self._tasks, []
            for task in tasks:
                task.cancel()
            for task in tasks:
                try:
                    await task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001 — shutdown drains every background task; a task that died earlier must not abort stop()
                    pass
        if self._queue is not None:
            while not self._queue.empty():
                _, fut = self._queue.get_nowait()
                if not fut.done():
                    fut.set_exception(
                        ProtocolError(ErrorCode.INTERNAL, "server shutting down")
                    )
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        conn = _ConnState()
        pending: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    raw = await self._read_message(reader, conn)
                except _TransportViolation as exc:
                    # Oversized line/frame: the stream cannot be resynced
                    # mid-message, so answer once, count it, and drop the
                    # connection.
                    metrics = self.service.metrics
                    metrics.protocol_errors += 1
                    metrics.oversized_requests += 1
                    try:
                        await self._send(writer, conn, error_response("", exc.error))
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                    break
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                if raw is None:
                    break
                try:
                    await self._handle_message(raw, conn, writer, pending)
                    if conn.out and not self._defer_flush(reader, conn):
                        await self._flush(writer, conn)
                except (ConnectionResetError, BrokenPipeError):
                    break
        finally:
            for task in pending:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            log.debug("connection from %s closed", peer)

    async def _read_message(
        self, reader: asyncio.StreamReader, conn: _ConnState
    ) -> bytes | None:
        """One raw message in the connection's codec; ``None`` on EOF."""
        if conn.codec == "json":
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # A line even the raised stream limit couldn't hold.
                    raise _TransportViolation(ProtocolError(
                        ErrorCode.BAD_REQUEST,
                        f"request exceeds {MAX_LINE_BYTES} bytes",
                    )) from None
                if not line:
                    return None
                if line.strip() == b"":
                    continue
                return line
        try:
            header = await reader.readexactly(FRAME_HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between frames
            raise ConnectionResetError from None
        (length,) = FRAME_HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise _TransportViolation(ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"frame exceeds {MAX_FRAME_BYTES} bytes",
            ))
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ConnectionResetError from None

    @staticmethod
    def _encode_payload(conn: _ConnState, response: Response) -> bytes:
        """One response serialized in the connection's current codec."""
        if conn.codec == "json":
            return encode_response(response)
        return encode_frame(response_obj(response), conn.codec)

    async def _send(
        self, writer: asyncio.StreamWriter, conn: _ConnState, response: Response
    ) -> None:
        """Serialize and write one response in the connection's codec.

        The lock serializes writers: in pipelined mode the reader loop
        and any number of completion tasks share one socket.
        """
        data = self._encode_payload(conn, response)
        async with conn.write_lock:
            writer.write(data)
            await writer.drain()

    @staticmethod
    def _defer_flush(reader: asyncio.StreamReader, conn: _ConnState) -> bool:
        """Whether coalesced responses may wait for the next request.

        Only a *pipelined* connection (which has promised to read
        responses concurrently) with more request bytes already buffered
        gets its inline responses coalesced into one write — a burst of
        N cheap ops then costs one syscall instead of N.  Everyone else
        is flushed before the reader blocks, preserving strict
        request/response alternation for stop-and-wait clients.
        """
        return (
            conn.pipeline
            and len(conn.out) < _FLUSH_HIGH_WATER
            and bool(getattr(reader, "_buffer", None))
        )

    async def _flush(
        self, writer: asyncio.StreamWriter, conn: _ConnState
    ) -> None:
        """Write every coalesced inline response in one locked burst."""
        data = bytes(conn.out)
        del conn.out[:]
        async with conn.write_lock:
            writer.write(data)
            await writer.drain()

    async def _handle_message(
        self,
        raw: bytes,
        conn: _ConnState,
        writer: asyncio.StreamWriter,
        pending: set[asyncio.Task],
    ) -> None:
        try:
            if conn.codec == "json":
                request = parse_request(raw)
            else:
                request = parse_request_obj(load_payload(raw, conn.codec))
        except ProtocolError as exc:
            metrics = self.service.metrics
            metrics.protocol_errors += 1
            if len(raw) > MAX_LINE_BYTES:
                metrics.oversized_requests += 1
            elif conn.codec == "json" and not _parses_as_object(raw):
                metrics.malformed_lines += 1
            req_id = _best_effort_id(raw) if conn.codec == "json" else ""
            conn.out += self._encode_payload(conn, error_response(req_id, exc))
            return
        self.service.metrics.record_request(request.op)
        if request.op == "hello":
            # Answered in the *current* codec; the upgrade applies to
            # every message after the response.
            response, upgrade = self._hello(request)
            conn.out += self._encode_payload(conn, response)
            if upgrade is not None:
                conn.codec, conn.pipeline, conn.max_inflight = upgrade
            return
        if conn.pipeline and request.op == "allocate":
            if len(pending) >= conn.max_inflight:
                self.service.metrics.busy_rejected += 1
                conn.out += self._encode_payload(conn, error_response(
                    request.id,
                    ProtocolError(
                        ErrorCode.BUSY,
                        f"pipeline window full ({conn.max_inflight}); "
                        "read some responses before sending more",
                    ),
                ))
                return
            task = asyncio.ensure_future(
                self._serve_pipelined(request, conn, writer)
            )
            pending.add(task)
            task.add_done_callback(pending.discard)
            return
        response = await self._dispatch_safe(request)
        conn.out += self._encode_payload(conn, response)

    def _hello(
        self, request: Request
    ) -> tuple[Response, tuple[str, bool, int] | None]:
        """Negotiate transport options; returns (response, upgrade)."""
        params = request.params
        assert isinstance(params, HelloParams)
        if params.codec not in CODECS:
            return error_response(request.id, ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"unsupported codec {params.codec!r}; "
                f"server offers {list(CODECS)}",
            )), None
        granted_inflight = min(params.max_inflight, self.max_queue)
        result = {
            "codec": params.codec,
            "pipeline": params.pipeline,
            "max_inflight": granted_inflight if params.pipeline else 1,
            "codecs": list(CODECS),
            "protocol_version": PROTOCOL_VERSION,
        }
        upgrade = (
            params.codec,
            params.pipeline,
            granted_inflight if params.pipeline else 1,
        )
        return ok_response(request.id, result), upgrade

    async def _serve_pipelined(
        self,
        request: Request,
        conn: _ConnState,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Decide one pipelined allocate and write its response when done."""
        response = await self._dispatch_safe(request)
        try:
            await self._send(writer, conn, response)
        except (ConnectionResetError, BrokenPipeError, OSError, RuntimeError):
            log.debug("pipelined response for %s lost: peer gone", request.id)

    async def _dispatch_safe(self, request: Request) -> Response:
        try:
            return await self._dispatch(request)
        except ProtocolError as exc:
            return error_response(request.id, exc)
        except Exception as exc:  # noqa: BLE001 — daemon must not die
            log.exception("internal error serving %s", request.op)
            return error_response(
                request.id,
                ProtocolError(ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"),
            )

    async def _dispatch(self, request: Request) -> Response:
        if request.op == "allocate":
            return await self._admit(request)
        if request.op == "renew":
            return ok_response(request.id, self.service.renew(request.params))
        if request.op == "release":
            return ok_response(request.id, self.service.release(request.params))
        if request.op == "reconfigure":
            # Served inline: replanning is heavier than renew/release but
            # the service is synchronous anyway, and reconfigure traffic
            # is orders of magnitude rarer than allocate.
            return ok_response(
                request.id, self.service.reconfigure(request.params)
            )
        if request.op == "fleet_plan":
            # Inline like reconfigure: a pass replans every lease, but
            # fleet traffic is a rare control-plane operation.
            return ok_response(
                request.id, self.service.fleet_plan(request.params)
            )
        if request.op == "fleet_status":
            return ok_response(request.id, self.service.fleet_status())
        assert request.op == "status"
        return ok_response(request.id, self.service.status())

    async def _admit(self, request: Request) -> Response:
        """Queue an allocate request, or reject with ``BUSY`` when full."""
        assert self._queue is not None, "server not started"
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((request.params, fut))
        except asyncio.QueueFull:
            self.service.metrics.busy_rejected += 1
            return error_response(
                request.id,
                ProtocolError(
                    ErrorCode.BUSY,
                    f"admission queue full ({self.max_queue}); retry later",
                ),
            )
        outcome = await fut
        if isinstance(outcome, ProtocolError):
            return error_response(request.id, outcome)
        return ok_response(request.id, outcome)

    # ------------------------------------------------------------------
    async def _batcher(self) -> None:
        """Collect micro-batches off the admission queue and decide them."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch: list[tuple[AllocateParams, asyncio.Future]] = [first]
            if self.batch_window_s > 0:
                deadline = loop.time() + self.batch_window_s
                while len(batch) < self.max_batch:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self._queue.get(), timeout)
                        )
                    except asyncio.TimeoutError:
                        break
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                results = self.service.allocate_batch([p for p, _ in batch])
            except Exception as exc:  # noqa: BLE001 — keep the batcher alive
                log.exception("batch decision failed")
                err = ProtocolError(
                    ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"
                )
                results = [err] * len(batch)
            for (_, fut), result in zip(batch, results):
                if not fut.done():
                    fut.set_result(result)

    async def _sweeper(self) -> None:
        """Periodically reclaim expired leases."""
        while True:
            await asyncio.sleep(self.sweep_period_s)
            reclaimed = self.service.sweep_expired()
            if reclaimed:
                log.info(
                    "sweeper reclaimed %d expired lease(s): %s",
                    len(reclaimed),
                    ", ".join(l.lease_id for l in reclaimed),
                )


def _parses_as_object(line: bytes) -> bool:
    """Whether the line is at least a JSON object (vs. raw garbage)."""
    import json

    try:
        return isinstance(json.loads(line), dict)
    except ValueError:  # JSONDecodeError and UnicodeDecodeError both are
        return False


def _best_effort_id(line: bytes) -> str:
    """Salvage the request id from an unparseable line (for the reply)."""
    import json

    try:
        obj = json.loads(line)
        if isinstance(obj, dict) and isinstance(obj.get("id"), (str, int)):
            return str(obj["id"])
    except ValueError:  # JSONDecodeError and UnicodeDecodeError both are
        pass
    return ""


class BrokerDaemonThread:
    """A broker daemon running its event loop in a background thread.

    Lets synchronous code (benchmarks, the CLI smoke test, notebooks)
    start a real TCP broker, talk to it with the blocking
    :class:`~repro.broker.client.BrokerClient`, and tear it down —
    without writing any asyncio.
    """

    def __init__(self, server: BrokerServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None

    @property
    def port(self) -> int:
        """The bound port (valid after :meth:`start`)."""
        return self.server.port

    def start(self, timeout_s: float = 10.0) -> "BrokerDaemonThread":
        """Start the loop thread and wait until the server is listening."""

        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            async def boot() -> None:
                try:
                    await self.server.start()
                except BaseException as exc:  # noqa: BLE001 — captured for the foreground thread to re-raise; swallowing any failure here would hang start()'s wait
                    self._start_error = exc
                    raise
                finally:
                    self._started.set()

            try:
                loop.run_until_complete(boot())
            except BaseException:  # noqa: BLE001 — reported via _start_error
                return
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(self.server.stop())
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-broker", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout_s):
            raise RuntimeError("broker daemon failed to start in time")
        if self._start_error is not None:
            raise RuntimeError(
                f"broker daemon failed to start: {self._start_error}"
            )
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop the server and join the loop thread."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout_s)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "BrokerDaemonThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
