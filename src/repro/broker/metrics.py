"""Operational metrics of the broker daemon.

Everything the ``status`` RPC reports lives here: monotonically
increasing counters (requests by op, grants/denials, lease expiries,
``BUSY`` rejects), a batch-size histogram for the micro-batching
admission queue, and a bounded reservoir of decision latencies from
which p50/p99 are computed on demand.

The implementation is allocation-free on the hot path (one dict update
and one deque append per decision) so metrics never become the
bottleneck they are meant to observe.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Any


def percentile(sorted_values: list[float], q: float) -> float:
    """The ``q``-quantile (0..1) by linear interpolation.

    ``sorted_values`` must be non-empty and ascending; matches
    ``numpy.percentile``'s default (linear) method without requiring the
    samples to live in an array.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must lie in [0, 1], got {q}")
    n = len(sorted_values)
    if n == 1:
        return sorted_values[0]
    pos = q * (n - 1)
    lo = int(pos)
    hi = min(lo + 1, n - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


class BrokerMetrics:
    """Counters + histograms backing the ``status`` RPC."""

    def __init__(self, *, latency_window: int = 4096) -> None:
        if latency_window <= 0:
            raise ValueError(f"latency_window must be positive: {latency_window}")
        self.requests_by_op: Counter[str] = Counter()
        self.granted = 0
        self.denied = 0
        self.busy_rejected = 0
        self.released = 0
        self.expired = 0
        self.renewed = 0
        self.protocol_errors = 0
        #: protocol errors that were not even parseable JSON objects
        #: (subset of ``protocol_errors``; garbage on the socket)
        self.malformed_lines = 0
        #: request lines rejected for exceeding ``MAX_LINE_BYTES``
        #: (subset of ``protocol_errors``; client bug or abuse)
        self.oversized_requests = 0
        #: reconfigure requests that committed a new placement
        self.reconfigured = 0
        #: reconfigure requests answered "stay put" (no plan or gated off)
        self.reconfig_rejected = 0
        #: executed (non-dry-run) fleet_plan passes
        self.fleet_passes = 0
        #: fleet-pass actions that committed a new placement
        self.fleet_actions_applied = 0
        #: fleet-pass actions that died mid-flight and were rolled back
        self.fleet_actions_failed = 0
        self.decisions_memoized = 0
        #: decision-memo entries evicted by a lineage change (delta
        #: invalidation or a wholesale clear on a fresh snapshot)
        self.decisions_invalidated = 0
        #: batch order-swaps adopted by the improvement pass (each one
        #: strictly lowered a pair's summed raw Equation-4 cost)
        self.batch_swaps_adopted = 0
        #: allocate replays answered from the idempotency-token memo
        #: (a retried request that did NOT grant a second lease)
        self.allocates_deduped = 0
        #: background tasks (batcher/sweeper/pipelined) that died with an
        #: unexpected exception — counted by their done-callbacks so a
        #: fire-and-forget failure is never silently dropped
        self.background_task_failures = 0
        self.batches = 0
        self.batch_size_hist: Counter[int] = Counter()
        #: last ``latency_window`` allocate decision latencies, seconds
        self._latencies: deque[float] = deque(maxlen=latency_window)

    # -- recording ------------------------------------------------------
    def record_request(self, op: str) -> None:
        """Count one inbound request by operation name."""
        self.requests_by_op[op] += 1

    def record_batch(self, size: int) -> None:
        """Count one decided micro-batch of ``size`` allocate requests."""
        self.batches += 1
        self.batch_size_hist[size] += 1

    def record_decision(self, latency_s: float, *, granted: bool) -> None:
        """Count one allocate decision and sample its latency."""
        if granted:
            self.granted += 1
        else:
            self.denied += 1
        self._latencies.append(latency_s)

    # -- reporting ------------------------------------------------------
    def latency_quantiles_ms(self) -> dict[str, float]:
        """p50/p99/max decision latency in milliseconds (0.0 when empty)."""
        if not self._latencies:
            return {"p50": 0.0, "p99": 0.0, "max": 0.0}
        values = sorted(self._latencies)
        return {
            "p50": percentile(values, 0.50) * 1e3,
            "p99": percentile(values, 0.99) * 1e3,
            "max": values[-1] * 1e3,
        }

    def snapshot(self) -> dict[str, Any]:
        """The JSON-serializable metrics block of the ``status`` RPC."""
        return {
            "requests": dict(self.requests_by_op),
            "granted": self.granted,
            "denied": self.denied,
            "busy_rejected": self.busy_rejected,
            "released": self.released,
            "expired": self.expired,
            "renewed": self.renewed,
            "protocol_errors": self.protocol_errors,
            "malformed_lines": self.malformed_lines,
            "oversized_requests": self.oversized_requests,
            "reconfigured": self.reconfigured,
            "reconfig_rejected": self.reconfig_rejected,
            "fleet_passes": self.fleet_passes,
            "fleet_actions_applied": self.fleet_actions_applied,
            "fleet_actions_failed": self.fleet_actions_failed,
            "decisions_memoized": self.decisions_memoized,
            "decisions_invalidated": self.decisions_invalidated,
            "batch_swaps_adopted": self.batch_swaps_adopted,
            "allocates_deduped": self.allocates_deduped,
            "background_task_failures": self.background_task_failures,
            "batches": self.batches,
            "batch_size_hist": {
                str(k): v for k, v in sorted(self.batch_size_hist.items())
            },
            "decision_latency_ms": self.latency_quantiles_ms(),
            "latency_samples": len(self._latencies),
        }
