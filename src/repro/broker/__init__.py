"""Allocation broker service — the paper's Resource Manager as a daemon.

The one-shot library/CLI path rebuilds a simulated cluster per call; this
package turns allocation into a *persistent service* the way the paper
deploys it: a long-lived asyncio daemon owns the monitor state and a
single allocation pipeline, and MPI launchers talk to it over a tiny
JSON-lines-over-TCP protocol.

* :mod:`repro.broker.protocol` — versioned request/response schema,
  validation, structured error codes;
* :mod:`repro.broker.service` — the transport-free allocation engine:
  lease lifecycle, micro-batch decisions against one shared
  :class:`~repro.core.arrays.LoadState`, decision memoization, metrics;
* :mod:`repro.broker.server` — the asyncio JSON-lines daemon with a
  bounded admission queue (``BUSY`` backpressure) and an expiry sweeper;
* :mod:`repro.broker.client` — the synchronous client library with
  connect retries and timeouts;
* :mod:`repro.broker.metrics` — counters, batch-size histogram and
  p50/p99 decision-latency tracking surfaced by the ``status`` RPC.
"""

from repro.broker.client import BrokerClient, BrokerError, Grant
from repro.broker.metrics import BrokerMetrics
from repro.broker.protocol import (
    PROTOCOL_VERSION,
    ErrorCode,
    ProtocolError,
    Request,
    Response,
)
from repro.broker.server import BrokerDaemonThread, BrokerServer
from repro.broker.service import BrokerService

__all__ = [
    "BrokerClient",
    "BrokerDaemonThread",
    "BrokerError",
    "BrokerMetrics",
    "BrokerServer",
    "BrokerService",
    "ErrorCode",
    "Grant",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "Response",
]
