"""Wire protocol of the allocation broker (JSON lines over TCP).

One request per line, one response line per request, always in order:

.. code-block:: json

    {"v": 1, "id": "c1-7", "op": "allocate",
     "params": {"n": 32, "ppn": 4, "alpha": 0.3, "ttl_s": 60.0}}

    {"v": 1, "id": "c1-7", "ok": true, "result": {"lease_id": "L00000001",
     "nodes": ["node-03", "..."], "procs": {"node-03": 4}, "...": "..."}}

Failures carry a structured error instead of a result:

.. code-block:: json

    {"v": 1, "id": "c1-8", "ok": false,
     "error": {"code": "BUSY", "message": "admission queue full"}}

Everything here is transport-free: parsing, validation and encoding only.
The daemon (:mod:`repro.broker.server`) and the client library
(:mod:`repro.broker.client`) share this module, so a version or schema
change happens in exactly one place.

Transport negotiation (still protocol v1, fully backward compatible): a
connection starts in JSON-lines mode; a ``hello`` request may switch it
to the length-prefixed ``binary`` codec (4-byte big-endian length +
compact JSON payload — no newline scanning, cheap framing) and/or enable
*pipelining* (many requests in flight per connection, responses matched
by ``id`` and possibly out of order).  ``hello`` is a transport verb
(:data:`TRANSPORT_OPS`): the daemon answers it itself and it never
reaches :class:`~repro.broker.service.BrokerService`.  Clients that
never send ``hello`` see exactly the historical one-line-in,
one-line-out protocol.
"""

from __future__ import annotations

import enum
import json
import math
import struct
from dataclasses import dataclass, field
from typing import Any, Mapping

try:  # optional accelerator; the wire format gates on importability
    import msgpack as _msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover — exercised only without msgpack
    _msgpack = None

#: Protocol version spoken by this build.  Requests carrying a different
#: ``v`` are rejected with ``UNSUPPORTED_VERSION`` (no negotiation — the
#: client library always sends the version it was built with).
PROTOCOL_VERSION = 1

#: Hard cap on one request line; longer lines are a client bug (or an
#: attack) and are rejected before JSON parsing.
MAX_LINE_BYTES = 64 * 1024


class ErrorCode(str, enum.Enum):
    """Structured failure codes carried in error responses."""

    #: malformed JSON, missing/invalid fields, bad parameter values
    BAD_REQUEST = "BAD_REQUEST"
    #: request ``v`` differs from :data:`PROTOCOL_VERSION`
    UNSUPPORTED_VERSION = "UNSUPPORTED_VERSION"
    #: ``op`` is not one of allocate/renew/release/reconfigure/status
    UNKNOWN_OP = "UNKNOWN_OP"
    #: admission queue full — retry later (backpressure, not failure)
    BUSY = "BUSY"
    #: the policy could not produce an allocation (no capacity/data)
    NO_CAPACITY = "NO_CAPACITY"
    #: §6 saturation guard tripped — the broker recommends waiting
    WAIT = "WAIT"
    #: ``lease_id`` was never granted, or already released/reclaimed
    UNKNOWN_LEASE = "UNKNOWN_LEASE"
    #: the lease's TTL elapsed; its nodes have been reclaimed
    EXPIRED_LEASE = "EXPIRED_LEASE"
    #: a reconfigure would add nodes another lease holds (all-or-nothing)
    NODE_CONFLICT = "NODE_CONFLICT"
    #: structurally invalid lease swap (overlapping/unheld/empty sets)
    BAD_SWAP = "BAD_SWAP"
    #: the lease changed between planning and applying; retry
    STALE_PLAN = "STALE_PLAN"
    #: the migration itself failed; the original allocation is intact
    RECONFIG_FAILED = "RECONFIG_FAILED"
    #: the monitor pipeline is down and the last-known-good snapshot is
    #: too old to allocate from — retry once monitoring recovers
    MONITOR_STALE = "MONITOR_STALE"
    #: the federation shard owning this lease (or chosen for placement)
    #: is down/detached — retry after the router re-admits it
    SHARD_DOWN = "SHARD_DOWN"
    #: unexpected server-side failure (bug — check daemon logs)
    INTERNAL = "INTERNAL"


class ProtocolError(Exception):
    """A request that cannot be served, with its wire error code."""

    def __init__(self, code: ErrorCode, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


#: Operations a client may request.
OPS = ("allocate", "renew", "release", "reconfigure", "status")

#: Transport-negotiation verbs — answered by the transport layer itself
#: (the daemon or the chaos transport mirror), never dispatched to the
#: service.  Kept out of :data:`OPS` so service-level surfaces (dispatch
#: ladders, retry policy) are not forced to know about them.
TRANSPORT_OPS = ("hello",)

#: Router verbs spoken only by a federation daemon (``serve --shards N``).
#: ``shards`` reports the router's per-subtree aggregates and scores;
#: ``resolve`` maps a lease id to the shard that owns it.  Kept out of
#: :data:`OPS` so a plain single-broker daemon (and the chaos transport
#: mirror) is not forced to grow dead branches for them — the PRO lint
#: family checks the federation ladders separately (PRO006/PRO007).
FEDERATION_OPS = ("shards", "resolve")

#: Fleet verbs — one coordinated malleability pass over every live
#: lease (``fleet_plan``) and its counters (``fleet_status``).  Kept
#: out of :data:`OPS` because, like the federation verbs, they are an
#: opt-in control-plane surface: a client that never speaks them sees
#: exactly the historical per-lease protocol.  The PRO lint family
#: checks the fleet ladders separately (PRO009/PRO010).
FLEET_OPS = ("fleet_plan", "fleet_status")

#: Codecs a connection may negotiate via ``hello``.  ``json`` is the
#: JSON-lines default; ``binary`` is length-prefixed compact JSON;
#: ``msgpack`` is length-prefixed MessagePack, offered only when the
#: library is importable (it is optional and never required).
CODECS = ("json", "binary") + (() if _msgpack is None else ("msgpack",))

#: Framed codecs prefix every payload with this 4-byte big-endian length.
FRAME_HEADER = struct.Struct(">I")

#: Hard cap on one framed payload — same budget as a JSON line.
MAX_FRAME_BYTES = MAX_LINE_BYTES

#: Upper bound a server will grant for pipelined in-flight requests.
MAX_INFLIGHT_LIMIT = 1024


#: longest accepted client dedupe token (they're opaque ids, not payloads)
MAX_TOKEN_CHARS = 128


@dataclass(frozen=True)
class AllocateParams:
    """Parameters of an ``allocate`` request.

    ``token`` is an optional client-chosen idempotency key: retrying an
    allocate with the same token returns the *original* grant (or the
    original denial) instead of creating a second lease — the safety net
    for a response lost to a mid-request transport death.

    ``priority`` orders jobs *within one micro-batch*: the batch solver
    decides higher-priority jobs first, so under contention they get the
    better placements.  Ties (including the default ``0.0``) keep
    arrival order, which makes an all-default batch byte-identical to
    the historical sequential behaviour.
    """

    n_processes: int
    ppn: int | None = None
    alpha: float = 0.3
    policy: str | None = None
    ttl_s: float | None = None
    token: str | None = None
    priority: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.priority):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.priority must be finite, got {self.priority}",
            )
        if self.token is not None and not (
            0 < len(self.token) <= MAX_TOKEN_CHARS
        ):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.token must be 1..{MAX_TOKEN_CHARS} chars, "
                f"got {len(self.token)}",
            )
        if self.n_processes <= 0:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.n must be a positive integer, got {self.n_processes}",
            )
        if self.ppn is not None and self.ppn <= 0:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.ppn must be a positive integer, got {self.ppn}",
            )
        if not 0.0 <= self.alpha <= 1.0:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.alpha must lie in [0, 1], got {self.alpha}",
            )
        if self.ttl_s is not None and self.ttl_s <= 0:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.ttl_s must be positive, got {self.ttl_s}",
            )


@dataclass(frozen=True)
class RenewParams:
    """Parameters of a ``renew`` request."""

    lease_id: str
    ttl_s: float | None = None

    def __post_init__(self) -> None:
        if not self.lease_id:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "params.lease_id must be non-empty"
            )
        if self.ttl_s is not None and self.ttl_s <= 0:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.ttl_s must be positive, got {self.ttl_s}",
            )


@dataclass(frozen=True)
class ReleaseParams:
    """Parameters of a ``release`` request."""

    lease_id: str

    def __post_init__(self) -> None:
        if not self.lease_id:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "params.lease_id must be non-empty"
            )


@dataclass(frozen=True)
class ReconfigureParams:
    """Parameters of a ``reconfigure`` request.

    Asks the broker to replan the lease's placement against the current
    snapshot.  ``remaining_s`` is the client's estimate of how long its
    job still has to run — the cost/benefit gate amortizes the migration
    bill over it; without it the broker falls back to the lease's
    remaining TTL (a conservative lower bound).  ``alpha`` overrides the
    Equation-4 trade-off recorded at grant time.
    """

    lease_id: str
    remaining_s: float | None = None
    alpha: float | None = None

    def __post_init__(self) -> None:
        if not self.lease_id:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "params.lease_id must be non-empty"
            )
        if self.remaining_s is not None and self.remaining_s <= 0:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.remaining_s must be positive, got {self.remaining_s}",
            )
        if self.alpha is not None and not 0.0 <= self.alpha <= 1.0:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.alpha must lie in [0, 1], got {self.alpha}",
            )


@dataclass(frozen=True)
class StatusParams:
    """Parameters of a ``status`` request (none defined in v1)."""


@dataclass(frozen=True)
class ShardsParams:
    """Parameters of a ``shards`` router request (none defined in v1)."""


@dataclass(frozen=True)
class ResolveParams:
    """Parameters of a ``resolve`` router request."""

    lease_id: str

    def __post_init__(self) -> None:
        if not self.lease_id:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "params.lease_id must be non-empty"
            )


#: Hard cap on actions one fleet pass may attempt.
MAX_FLEET_ACTIONS = 64


@dataclass(frozen=True)
class FleetPlanParams:
    """Parameters of a ``fleet_plan`` request.

    ``dry_run`` plans the pass (ordered action list, objective
    arithmetic) without touching the lease table.  ``max_actions``
    bounds how many migrations one pass may attempt — the wire-level
    backstop on top of the broker's global rate limiter.
    """

    dry_run: bool = False
    max_actions: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.max_actions <= MAX_FLEET_ACTIONS:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.max_actions must lie in [1, {MAX_FLEET_ACTIONS}], "
                f"got {self.max_actions}",
            )


@dataclass(frozen=True)
class FleetStatusParams:
    """Parameters of a ``fleet_status`` request (none defined in v1)."""


@dataclass(frozen=True)
class HelloParams:
    """Parameters of a ``hello`` transport-negotiation request.

    ``codec`` picks the framing for *subsequent* traffic on the
    connection (the hello exchange itself always runs in the codec the
    connection is currently speaking).  ``pipeline`` opts into
    out-of-order responses with up to ``max_inflight`` requests in
    flight; without it the server keeps the historical strict
    request/response alternation.
    """

    codec: str = "json"
    pipeline: bool = False
    max_inflight: int = 32

    def __post_init__(self) -> None:
        if not self.codec:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "params.codec must be non-empty"
            )
        if not 1 <= self.max_inflight <= MAX_INFLIGHT_LIMIT:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.max_inflight must lie in "
                f"[1, {MAX_INFLIGHT_LIMIT}], got {self.max_inflight}",
            )


Params = (
    AllocateParams
    | RenewParams
    | ReleaseParams
    | ReconfigureParams
    | StatusParams
    | ShardsParams
    | ResolveParams
    | FleetPlanParams
    | FleetStatusParams
    | HelloParams
)


@dataclass(frozen=True)
class Request:
    """A parsed, validated client request."""

    id: str
    op: str
    params: Params
    v: int = PROTOCOL_VERSION


@dataclass(frozen=True)
class Response:
    """A server response; exactly one of ``result``/``error`` is set."""

    id: str
    ok: bool
    result: Mapping[str, Any] | None = None
    error: ProtocolError | None = None
    v: int = PROTOCOL_VERSION


# ----------------------------------------------------------------------
# parsing

def _require(obj: Mapping[str, Any], key: str, types: tuple, where: str) -> Any:
    value = obj.get(key)
    if not isinstance(value, types) or isinstance(value, bool):
        names = "/".join(t.__name__ for t in types)
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"{where}.{key} must be {names}, got {value!r}"
        )
    return value


def _opt(obj: Mapping[str, Any], key: str, types: tuple, where: str) -> Any:
    if obj.get(key) is None:
        return None
    return _require(obj, key, types, where)


def parse_request(line: str | bytes) -> Request:
    """Parse one JSON wire line into a :class:`Request`.

    Raises :class:`ProtocolError` with ``BAD_REQUEST``,
    ``UNSUPPORTED_VERSION`` or ``UNKNOWN_OP`` on anything off-spec.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"request exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"request is not valid JSON: {exc}"
        ) from None
    return parse_request_obj(obj)


def parse_request_obj(obj: Any) -> Request:
    """Validate an already-decoded request object (any codec)."""
    if not isinstance(obj, dict):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "request must be a JSON object"
        )
    version = _require(obj, "v", (int,), "request")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            ErrorCode.UNSUPPORTED_VERSION,
            f"server speaks v{PROTOCOL_VERSION}, request is v{version}",
        )
    req_id = str(_require(obj, "id", (str, int), "request"))
    op = _require(obj, "op", (str,), "request")
    raw = obj.get("params") or {}
    if not isinstance(raw, dict):
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, "request.params must be an object"
        )
    if op == "allocate":
        alpha = _opt(raw, "alpha", (int, float), "params")
        priority = _opt(raw, "priority", (int, float), "params")
        params: Params = AllocateParams(
            n_processes=_require(raw, "n", (int,), "params"),
            ppn=_opt(raw, "ppn", (int,), "params"),
            alpha=0.3 if alpha is None else float(alpha),
            policy=_opt(raw, "policy", (str,), "params"),
            ttl_s=_opt(raw, "ttl_s", (int, float), "params"),
            token=_opt(raw, "token", (str,), "params"),
            priority=0.0 if priority is None else float(priority),
        )
    elif op == "renew":
        params = RenewParams(
            lease_id=_require(raw, "lease_id", (str,), "params"),
            ttl_s=_opt(raw, "ttl_s", (int, float), "params"),
        )
    elif op == "release":
        params = ReleaseParams(
            lease_id=_require(raw, "lease_id", (str,), "params")
        )
    elif op == "reconfigure":
        alpha = _opt(raw, "alpha", (int, float), "params")
        params = ReconfigureParams(
            lease_id=_require(raw, "lease_id", (str,), "params"),
            remaining_s=_opt(raw, "remaining_s", (int, float), "params"),
            alpha=None if alpha is None else float(alpha),
        )
    elif op == "status":
        params = StatusParams()
    elif op == "shards":
        params = ShardsParams()
    elif op == "resolve":
        params = ResolveParams(
            lease_id=_require(raw, "lease_id", (str,), "params")
        )
    elif op == "fleet_plan":
        dry_run = raw.get("dry_run", False)
        if not isinstance(dry_run, bool):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.dry_run must be a boolean, got {dry_run!r}",
            )
        max_actions = _opt(raw, "max_actions", (int,), "params")
        params = FleetPlanParams(
            dry_run=dry_run,
            max_actions=8 if max_actions is None else max_actions,
        )
    elif op == "fleet_status":
        params = FleetStatusParams()
    elif op == "hello":
        pipeline = raw.get("pipeline", False)
        if not isinstance(pipeline, bool):
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"params.pipeline must be a boolean, got {pipeline!r}",
            )
        max_inflight = _opt(raw, "max_inflight", (int,), "params")
        params = HelloParams(
            codec=_opt(raw, "codec", (str,), "params") or "json",
            pipeline=pipeline,
            max_inflight=32 if max_inflight is None else max_inflight,
        )
    else:
        raise ProtocolError(
            ErrorCode.UNKNOWN_OP,
            f"unknown op {op!r}; choose from "
            f"{OPS + FEDERATION_OPS + FLEET_OPS + TRANSPORT_OPS}",
        )
    return Request(id=req_id, op=op, params=params, v=version)


# ----------------------------------------------------------------------
# encoding

def request_obj(
    req_id: str, op: str, params: Mapping[str, Any] | None = None
) -> dict[str, Any]:
    """The request object all codecs serialize (``None`` params dropped)."""
    obj: dict[str, Any] = {"v": PROTOCOL_VERSION, "id": req_id, "op": op}
    if params:
        obj["params"] = {k: v for k, v in params.items() if v is not None}
    return obj


def encode_request(
    req_id: str, op: str, params: Mapping[str, Any] | None = None
) -> bytes:
    """One request wire line (used by the client library)."""
    obj = request_obj(req_id, op, params)
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode()


def ok_response(req_id: str, result: Mapping[str, Any]) -> Response:
    """A success :class:`Response`."""
    return Response(id=req_id, ok=True, result=result)


def error_response(req_id: str, error: ProtocolError) -> Response:
    """A failure :class:`Response`."""
    return Response(id=req_id, ok=False, error=error)


def response_obj(response: Response) -> dict[str, Any]:
    """The response object all codecs serialize."""
    obj: dict[str, Any] = {
        "v": response.v,
        "id": response.id,
        "ok": response.ok,
    }
    if response.ok:
        obj["result"] = response.result or {}
    else:
        assert response.error is not None
        obj["error"] = {
            "code": response.error.code.value,
            "message": response.error.message,
        }
    return obj


def encode_response(response: Response) -> bytes:
    """One response wire line."""
    return (json.dumps(response_obj(response), separators=(",", ":")) + "\n").encode()


# ----------------------------------------------------------------------
# framed codecs ("binary" / "msgpack")

def dump_payload(obj: Mapping[str, Any], codec: str) -> bytes:
    """Serialize one request/response object for a framed codec."""
    if codec == "msgpack":
        if _msgpack is None:  # pragma: no cover — guarded by CODECS
            raise ProtocolError(
                ErrorCode.BAD_REQUEST, "msgpack codec is not available"
            )
        return _msgpack.packb(obj, use_bin_type=True)
    return json.dumps(obj, separators=(",", ":")).encode()


def load_payload(data: bytes, codec: str) -> Any:
    """Deserialize one framed payload; raises ``BAD_REQUEST`` on garbage."""
    try:
        if codec == "msgpack":
            if _msgpack is None:  # pragma: no cover — guarded by CODECS
                raise ProtocolError(
                    ErrorCode.BAD_REQUEST, "msgpack codec is not available"
                )
            obj = _msgpack.unpackb(data, raw=False)
            # msgpack map keys arrive as decoded already; pair keys are
            # not used on the wire, so nothing further to normalize
            return obj
        return json.loads(data)
    except ProtocolError:
        raise
    except Exception as exc:  # noqa: BLE001 — decoder faults differ per codec library; all of them must become a typed BAD_REQUEST, never kill the connection handler
        raise ProtocolError(
            ErrorCode.BAD_REQUEST, f"undecodable {codec} payload: {exc}"
        ) from None


def encode_frame(obj: Mapping[str, Any], codec: str) -> bytes:
    """One framed message: 4-byte big-endian length + payload."""
    payload = dump_payload(obj, codec)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            ErrorCode.BAD_REQUEST,
            f"frame exceeds {MAX_FRAME_BYTES} bytes",
        )
    return FRAME_HEADER.pack(len(payload)) + payload
