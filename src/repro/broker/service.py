"""The broker's decision engine — transport-free, deterministic, testable.

:class:`BrokerService` owns the pieces a persistent Resource Manager
needs beyond the one-shot :class:`~repro.core.broker.ResourceBroker`:

* a **lease table** (:class:`~repro.scheduler.leases.LeaseTable`) so
  grants expire and dead clients cannot leak capacity;
* **micro-batch decisions**: :meth:`allocate_batch` resolves every
  request of a batch against *one* snapshot object, so the PR-1
  snapshot-keyed :class:`~repro.core.arrays.LoadState` memo is computed
  once and shared — concurrent requests pay Eq. 1–2 once, not N times;
* **decision memoization**: allocation is a pure function of
  ``(snapshot, request, held nodes)``, so repeated identical requests on
  an unchanged cluster return the cached answer in microseconds.  The
  memo lives in the snapshot's ``derived_cache`` and therefore can never
  outlive the snapshot it was computed from;
* **metrics** for every grant/denial/renewal/expiry and decision latency.

The asyncio daemon in :mod:`repro.broker.server` is a thin transport
around this class; tests drive it directly with an injected clock.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Mapping

import numpy as np

from repro.broker.metrics import BrokerMetrics
from repro.broker.protocol import (
    PROTOCOL_VERSION,
    AllocateParams,
    ErrorCode,
    ProtocolError,
    ReconfigureParams,
    ReleaseParams,
    RenewParams,
)
from repro.elastic.cost import MigrationCostConfig, SnapshotMigrationCost
from repro.elastic.executor import ReconfigError, TwoPhaseExecutor
from repro.elastic.gate import GateConfig, PlanGate
from repro.elastic.plan import ReconfigPlan, ReconfigPlanner
from repro.core.broker import ResourceBroker, WaitRecommended
from repro.core.policies import (
    Allocation,
    AllocationError,
    AllocationRequest,
    PAPER_POLICIES,
)
from repro.core.weights import TradeOff
from repro.monitor.quarantine import NodeQuarantine
from repro.monitor.snapshot import (
    CachedSnapshotSource,
    ClusterSnapshot,
    SnapshotUnavailableError,
    derived_cache,
)
from repro.scheduler.leases import Lease, LeaseError, LeaseTable

#: service-level counters start from this wall-clock origin
_DecisionKey = tuple

#: how many allocate idempotency tokens the dedupe memo remembers.
#: Bounded so a hostile or leaky client cannot grow service memory;
#: retries land within seconds, so even a small LRU is generous.
_TOKEN_MEMO_CAP = 4096


class _SnapshotCoster:
    """Migration-cost adapter bound to whichever snapshot is current.

    The gate holds one cost-model reference for its whole life, but the
    broker's snapshot changes between requests; this indirection lets
    :meth:`BrokerService.reconfigure` point the gate at the snapshot the
    plan was computed from (the service is single-threaded, so the
    assignment cannot race).
    """

    def __init__(self, config: MigrationCostConfig | None = None) -> None:
        self.config = config
        self.snapshot: ClusterSnapshot | None = None

    def migration_cost_s(self, plan: ReconfigPlan) -> float:
        assert self.snapshot is not None, "set .snapshot before evaluating"
        return SnapshotMigrationCost(
            self.snapshot, self.config
        ).migration_cost_s(plan)


class BrokerService:
    """Lease-granting allocation service over a snapshot source.

    ``clock`` drives lease TTLs and uptime; inject a fake for
    deterministic expiry tests.  ``snapshot_source`` is any
    ``() -> ClusterSnapshot`` callable — wrap it in
    :class:`~repro.monitor.snapshot.CachedSnapshotSource` to bound
    rebuild frequency (the serve command does).
    """

    def __init__(
        self,
        snapshot_source: Callable[[], ClusterSnapshot],
        *,
        clock: Callable[[], float] = time.monotonic,
        default_policy: str = "network_load_aware",
        default_ttl_s: float = 60.0,
        min_ttl_s: float = 1.0,
        max_ttl_s: float = 3600.0,
        wait_threshold_load_per_core: float | None = None,
        rng: np.random.Generator | None = None,
        memoize_decisions: bool = True,
        gate_config: GateConfig | None = None,
        migration_cost_config: MigrationCostConfig | None = None,
        quarantine: NodeQuarantine | None = None,
        migrate_hook: Callable[[Any], None] | None = None,
    ) -> None:
        if default_policy not in PAPER_POLICIES:
            raise ValueError(
                f"unknown policy {default_policy!r}; "
                f"choose from {sorted(PAPER_POLICIES)}"
            )
        self._snapshots = snapshot_source
        self._clock = clock
        self.default_policy = default_policy
        self._broker = ResourceBroker(
            snapshot_source,
            wait_threshold_load_per_core=wait_threshold_load_per_core,
        )
        self.leases = LeaseTable(
            clock=clock,
            default_ttl_s=default_ttl_s,
            min_ttl_s=min_ttl_s,
            max_ttl_s=max_ttl_s,
        )
        self.metrics = BrokerMetrics()
        self._rng = rng
        self.memoize_decisions = memoize_decisions
        # -- elastic reconfiguration plumbing ---------------------------
        self.planner = ReconfigPlanner()
        self._coster = _SnapshotCoster(migration_cost_config)
        self.gate = PlanGate(self._coster, gate_config)
        self._executor = TwoPhaseExecutor(
            self.leases, reserve_ttl_s=default_ttl_s
        )
        self.quarantine = quarantine
        self.migrate_hook = migrate_hook
        # idempotency-token → decided result (grant dict or ProtocolError)
        self._token_memo: OrderedDict[str, dict[str, Any] | ProtocolError] = (
            OrderedDict()
        )
        self._started_at = clock()

    # ------------------------------------------------------------------
    # allocate (micro-batched)

    def allocate_batch(
        self, batch: list[AllocateParams]
    ) -> list[dict[str, Any] | ProtocolError]:
        """Decide a micro-batch of allocate requests against one snapshot.

        Requests are decided in order; each grant's nodes join the
        exclusion mask of the requests behind it, so one batch can never
        double-book a node.  Returns, per request, either a result dict
        for the wire or a :class:`ProtocolError` (``NO_CAPACITY``/
        ``WAIT``).
        """
        if not batch:
            return []
        try:
            snapshot = self._snapshots()
        except SnapshotUnavailableError as exc:
            # Degradation floor: no fresh snapshot and the last-known-good
            # one aged out.  Denying is safer than placing jobs blind —
            # the whole batch gets the same typed, retryable error.
            self.metrics.record_batch(len(batch))
            err = ProtocolError(ErrorCode.MONITOR_STALE, str(exc))
            for _ in batch:
                self.metrics.record_decision(0.0, granted=False)
            return [err] * len(batch)
        if self.quarantine is not None:
            self.quarantine.observe(snapshot.livehosts)
        self.metrics.record_batch(len(batch))
        out: list[dict[str, Any] | ProtocolError] = []
        for params in batch:
            out.append(self._allocate_one(snapshot, params))
        return out

    def _allocate_one(
        self, snapshot: ClusterSnapshot, params: AllocateParams
    ) -> dict[str, Any] | ProtocolError:
        if params.token is not None:
            memoized = self._token_memo.get(params.token)
            if memoized is not None:
                # Replay of a request whose answer the client never saw
                # (transport died mid-response).  Return the *same*
                # outcome — critically, without granting a second lease.
                self._token_memo.move_to_end(params.token)
                self.metrics.allocates_deduped += 1
                return memoized
        result = self._allocate_one_uncached(snapshot, params)
        if params.token is not None:
            self._token_memo[params.token] = result
            while len(self._token_memo) > _TOKEN_MEMO_CAP:
                self._token_memo.popitem(last=False)
        return result

    def _allocate_one_uncached(
        self, snapshot: ClusterSnapshot, params: AllocateParams
    ) -> dict[str, Any] | ProtocolError:
        policy = params.policy or self.default_policy
        if policy not in PAPER_POLICIES:
            self.metrics.record_decision(0.0, granted=False)
            return ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"unknown policy {policy!r}; choose from {sorted(PAPER_POLICIES)}",
            )
        held = self.leases.held_nodes()
        if self.quarantine is not None:
            quarantined = self.quarantine.excluded()
            if quarantined:
                held = frozenset(held | quarantined)
        t0 = time.perf_counter()
        try:
            allocation = self._decide(snapshot, params, policy, held)
        except WaitRecommended as exc:
            self.metrics.record_decision(time.perf_counter() - t0, granted=False)
            return ProtocolError(ErrorCode.WAIT, str(exc))
        except AllocationError as exc:
            self.metrics.record_decision(time.perf_counter() - t0, granted=False)
            return ProtocolError(ErrorCode.NO_CAPACITY, str(exc))
        lease = self.leases.grant(
            allocation.nodes,
            allocation.procs,
            ttl_s=params.ttl_s,
            policy=allocation.policy,
            # kept on the lease so reconfigure can rebuild the request
            ppn=params.ppn,
            alpha=params.alpha,
        )
        self.metrics.record_decision(time.perf_counter() - t0, granted=True)
        return self._grant_result(lease, allocation)

    def _decide(
        self,
        snapshot: ClusterSnapshot,
        params: AllocateParams,
        policy: str,
        held: frozenset[str],
    ) -> Allocation:
        request = AllocationRequest(
            n_processes=params.n_processes,
            ppn=params.ppn,
            tradeoff=TradeOff.from_alpha(params.alpha),
        )
        # Stochastic policies must not be memoized — two clients asking
        # twice expect two draws — and are the only rng consumers.
        memoizable = self.memoize_decisions and policy != "random"
        if not memoizable:
            return self._broker.request(
                request,
                rng=self._rng,
                policy=policy,
                exclude=held or None,
                snapshot=snapshot,
            ).allocation
        key: _DecisionKey = (
            "broker_decision",
            policy,
            params.n_processes,
            params.ppn,
            round(params.alpha, 12),
            held,
        )
        cache = derived_cache(snapshot)
        hit = cache.get(key)
        if hit is not None:
            self.metrics.decisions_memoized += 1
            if isinstance(hit, AllocationError):
                raise hit
            return hit
        try:
            allocation = self._broker.request(
                request, policy=policy, exclude=held or None, snapshot=snapshot
            ).allocation
        except WaitRecommended:
            raise  # depends on the threshold config, not worth caching
        except AllocationError as exc:
            cache[key] = exc  # a denial is as deterministic as a grant
            raise
        cache[key] = allocation
        return allocation

    def _grant_result(
        self, lease: Lease, allocation: Allocation
    ) -> dict[str, Any]:
        return {
            "lease_id": lease.lease_id,
            "nodes": list(lease.nodes),
            "procs": dict(lease.procs),
            "hostfile": allocation.hostfile(),
            "policy": lease.policy,
            "ttl_s": lease.ttl_s,
            "expires_at": lease.expires_at,
            "snapshot_time": allocation.snapshot_time,
        }

    # ------------------------------------------------------------------
    # lease lifecycle

    def renew(self, params: RenewParams) -> dict[str, Any]:
        """Extend a lease; raises :class:`ProtocolError` on bad leases."""
        try:
            lease = self.leases.renew(params.lease_id, ttl_s=params.ttl_s)
        except LeaseError as exc:
            if exc.code == "EXPIRED_LEASE":
                self.metrics.expired += 1
            raise ProtocolError(ErrorCode(exc.code), exc.message) from None
        self.metrics.renewed += 1
        return {
            "lease_id": lease.lease_id,
            "ttl_s": lease.ttl_s,
            "expires_at": lease.expires_at,
            "renewals": lease.renewals,
        }

    def release(self, params: ReleaseParams) -> dict[str, Any]:
        """End a lease; raises :class:`ProtocolError` on bad leases."""
        try:
            lease = self.leases.release(params.lease_id)
        except LeaseError as exc:
            if exc.code == "EXPIRED_LEASE":
                self.metrics.expired += 1
            raise ProtocolError(ErrorCode(exc.code), exc.message) from None
        self.metrics.released += 1
        return {
            "lease_id": lease.lease_id,
            "released": True,
            "nodes": list(lease.nodes),
        }

    def reconfigure(self, params: ReconfigureParams) -> dict[str, Any]:
        """Replan a live lease; apply the plan if the gate accepts it.

        The planner re-runs Algorithm 1/2 over the lease's own nodes plus
        every unleased node; the gate weighs the Equation-4 gain (applied
        to ``remaining_s``) against the checkpoint-transfer bill priced
        from the snapshot's measured bandwidths.  An accepted plan is
        applied to the lease table through the two-phase executor, and
        the result carries the new node set and hostfile — the *client*
        performs the actual migration after reading the response, exactly
        as it launches ``mpiexec`` after ``allocate``.

        Returns ``{"reconfigured": false, "reason": ...}`` when staying
        put wins; raises :class:`ProtocolError` for dead leases or a
        failed swap.
        """
        now = self._clock()
        lease = self.leases.get(params.lease_id)
        if lease is None:
            raise ProtocolError(
                ErrorCode.UNKNOWN_LEASE,
                f"lease {params.lease_id!r} is not active",
            )
        if lease.expired(now):
            self.leases.sweep()
            self.metrics.expired += 1
            raise ProtocolError(
                ErrorCode.EXPIRED_LEASE,
                f"lease {params.lease_id} expired; nodes reclaimed — "
                "re-allocate instead of reconfiguring",
            )
        try:
            snapshot = self._snapshots()
        except SnapshotUnavailableError as exc:
            self.metrics.reconfig_rejected += 1
            raise ProtocolError(ErrorCode.MONITOR_STALE, str(exc)) from None
        if self.quarantine is not None:
            self.quarantine.observe(snapshot.livehosts)
        alpha = params.alpha if params.alpha is not None else lease.alpha
        request = AllocationRequest(
            n_processes=sum(lease.procs.values()),
            ppn=lease.ppn,
            tradeoff=TradeOff.from_alpha(alpha),
        )
        exclude = self.leases.held_nodes()
        if self.quarantine is not None:
            quarantined = self.quarantine.excluded()
            if quarantined:
                exclude = frozenset(exclude | quarantined)
        t0 = time.perf_counter()
        plan = self.planner.propose(
            snapshot,
            lease_id=lease.lease_id,
            nodes=lease.nodes,
            procs=lease.procs,
            request=request,
            exclude=exclude,
        )
        if plan is None:
            self.metrics.reconfig_rejected += 1
            return {
                "lease_id": lease.lease_id,
                "reconfigured": False,
                "reason": "placement_already_best",
                "plan_latency_s": time.perf_counter() - t0,
            }
        self._coster.snapshot = snapshot
        remaining_s = (
            params.remaining_s
            if params.remaining_s is not None
            else lease.remaining_s(now)
        )
        decision = self.gate.evaluate(plan, remaining_s=remaining_s, now=now)
        if not decision:
            self.metrics.reconfig_rejected += 1
            return {
                "lease_id": lease.lease_id,
                "reconfigured": False,
                "reason": decision.reason,
                "kind": plan.kind,
                "predicted_gain": plan.predicted_gain,
                "benefit_s": decision.benefit_s,
                "cost_s": decision.cost_s,
                "plan_latency_s": time.perf_counter() - t0,
            }
        try:
            swapped = self._executor.apply(plan, migrate=self.migrate_hook)
        except ReconfigError as exc:
            try:
                code = ErrorCode(exc.code)
            except ValueError:  # pragma: no cover — all codes are mapped
                code = ErrorCode.INTERNAL
            raise ProtocolError(code, exc.message) from None
        self.metrics.reconfigured += 1
        return {
            "lease_id": swapped.lease_id,
            "reconfigured": True,
            "kind": plan.kind,
            "nodes": list(swapped.nodes),
            "procs": dict(swapped.procs),
            "hostfile": plan.allocation().hostfile(),
            "add_nodes": list(plan.add_nodes),
            "drop_nodes": list(plan.drop_nodes),
            "predicted_gain": plan.predicted_gain,
            "benefit_s": decision.benefit_s,
            "cost_s": decision.cost_s,
            "reconfigs": swapped.reconfigs,
            "expires_at": swapped.expires_at,
            "plan_latency_s": time.perf_counter() - t0,
        }

    def sweep_expired(self) -> list[Lease]:
        """Reclaim expired leases (the daemon calls this periodically)."""
        reclaimed = self.leases.sweep()
        self.metrics.expired += len(reclaimed)
        return reclaimed

    # ------------------------------------------------------------------
    # status

    def status(self) -> dict[str, Any]:
        """The ``status`` RPC result: leases, metrics, snapshot health."""
        now = self._clock()
        leases = self.leases.active()
        result: dict[str, Any] = {
            "protocol_version": PROTOCOL_VERSION,
            "uptime_s": max(0.0, now - self._started_at),
            "policy": self.default_policy,
            "leases": {
                "active": len(leases),
                "nodes_held": len(self.leases.held_nodes()),
                "soonest_expiry_s": min(
                    (l.remaining_s(now) for l in leases), default=None
                ),
            },
            "metrics": self.metrics.snapshot(),
        }
        if isinstance(self._snapshots, CachedSnapshotSource):
            age = self._snapshots.age_s()
            result["snapshot"] = {
                "age_s": None if age == float("inf") else age,
                "max_age_s": self._snapshots.max_age_s,
                "refreshes": self._snapshots.refreshes,
                "hits": self._snapshots.hits,
                "fallbacks": self._snapshots.fallbacks,
            }
        if self.quarantine is not None:
            result["quarantine"] = self.quarantine.stats()
        return result
