"""The broker's decision engine — transport-free, deterministic, testable.

:class:`BrokerService` owns the pieces a persistent Resource Manager
needs beyond the one-shot :class:`~repro.core.broker.ResourceBroker`:

* a **lease table** (:class:`~repro.scheduler.leases.LeaseTable`) so
  grants expire and dead clients cannot leak capacity;
* **micro-batch decisions**: :meth:`allocate_batch` resolves every
  request of a batch against *one* snapshot object, so the PR-1
  snapshot-keyed :class:`~repro.core.arrays.LoadState` memo is computed
  once and shared — concurrent requests pay Eq. 1–2 once, not N times;
* **decision memoization**: allocation is a pure function of
  ``(snapshot, request, held nodes)``, so repeated identical requests on
  an unchanged cluster return the cached answer in microseconds.  The
  memo is keyed on the snapshot's *lineage* (``serial, generation`` from
  :func:`repro.monitor.delta.snapshot_lineage`): a delta-patched
  snapshot advances the generation and evicts exactly the entries whose
  usable-node scope intersects the delta's affected nodes, while any
  other lineage change clears the memo wholesale;
* a **batch solver**: :meth:`allocate_batch` decides every request
  before granting any lease — greedy in priority order, then a pairwise
  order-swap improvement pass — so a batch's total Equation-4 cost is
  never worse than the historical decide-and-grant-one-at-a-time loop;
* **metrics** for every grant/denial/renewal/expiry and decision latency.

The asyncio daemon in :mod:`repro.broker.server` is a thin transport
around this class; tests drive it directly with an injected clock.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Any, Callable, Mapping

import numpy as np

from repro.broker.metrics import BrokerMetrics
from repro.broker.protocol import (
    PROTOCOL_VERSION,
    AllocateParams,
    ErrorCode,
    FleetPlanParams,
    ProtocolError,
    ReconfigureParams,
    ReleaseParams,
    RenewParams,
)
from repro.elastic.cost import MigrationCostConfig, SnapshotMigrationCost
from repro.elastic.executor import ReconfigError, TwoPhaseExecutor
from repro.elastic.gate import FleetRateLimiter, GateConfig, PlanGate
from repro.elastic.plan import ReconfigPlan, ReconfigPlanner
from repro.fleet.executor import FleetExecutor, order_plans
from repro.core.broker import ResourceBroker, WaitRecommended
from repro.core.policies import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
    PAPER_POLICIES,
)
from repro.core.weights import TradeOff
from repro.monitor.delta import snapshot_lineage
from repro.monitor.quarantine import NodeQuarantine
from repro.monitor.snapshot import (
    CachedSnapshotSource,
    ClusterSnapshot,
    SnapshotUnavailableError,
)
from repro.scheduler.leases import Lease, LeaseError, LeaseTable
from repro.util.atomic import atomic_between_awaits

#: service-level counters start from this wall-clock origin
_DecisionKey = tuple

#: how many allocate idempotency tokens the dedupe memo remembers.
#: Bounded so a hostile or leaky client cannot grow service memory;
#: retries land within seconds, so even a small LRU is generous.
_TOKEN_MEMO_CAP = 4096

#: how many (request, held-set) decisions the lineage-keyed memo holds
_DECISION_MEMO_CAP = 4096


class _BatchEntry:
    """One successfully decided (not yet granted) batch member."""

    __slots__ = ("params", "policy", "allocation", "latency_s")

    def __init__(
        self,
        params: AllocateParams,
        policy: str,
        allocation: Allocation,
        latency_s: float,
    ) -> None:
        self.params = params
        self.policy = policy
        self.allocation = allocation
        self.latency_s = latency_s

    def raw_cost(self) -> float | None:
        """``α·C_G + β·N_G`` from the allocation's raw Equation-4 terms.

        Raw (un-normalized) costs are the only ones comparable across
        decisions — the normalized totals each divide by a different
        candidate-set denominator.  ``None`` when the policy does not
        report cost metadata (e.g. ``random``).
        """
        meta = self.allocation.metadata
        c, n = meta.get("compute_cost"), meta.get("network_cost")
        if c is None or n is None:
            return None
        alpha = self.params.alpha
        return alpha * float(c) + (1.0 - alpha) * float(n)


class _SnapshotCoster:
    """Migration-cost adapter bound to whichever snapshot is current.

    The gate holds one cost-model reference for its whole life, but the
    broker's snapshot changes between requests; this indirection lets
    :meth:`BrokerService.reconfigure` point the gate at the snapshot the
    plan was computed from (the service is single-threaded, so the
    assignment cannot race).
    """

    def __init__(self, config: MigrationCostConfig | None = None) -> None:
        self.config = config
        self.snapshot: ClusterSnapshot | None = None

    def migration_cost_s(self, plan: ReconfigPlan) -> float:
        assert self.snapshot is not None, "set .snapshot before evaluating"
        return SnapshotMigrationCost(
            self.snapshot, self.config
        ).migration_cost_s(plan)


class BrokerService:
    """Lease-granting allocation service over a snapshot source.

    ``clock`` drives lease TTLs and uptime; inject a fake for
    deterministic expiry tests.  ``snapshot_source`` is any
    ``() -> ClusterSnapshot`` callable — wrap it in
    :class:`~repro.monitor.snapshot.CachedSnapshotSource` to bound
    rebuild frequency (the serve command does).
    """

    def __init__(
        self,
        snapshot_source: Callable[[], ClusterSnapshot],
        *,
        clock: Callable[[], float] = time.monotonic,
        default_policy: str = "network_load_aware",
        default_ttl_s: float = 60.0,
        min_ttl_s: float = 1.0,
        max_ttl_s: float = 3600.0,
        wait_threshold_load_per_core: float | None = None,
        rng: np.random.Generator | None = None,
        memoize_decisions: bool = True,
        batch_improve: bool = True,
        batch_improve_passes: int = 2,
        gate_config: GateConfig | None = None,
        migration_cost_config: MigrationCostConfig | None = None,
        quarantine: NodeQuarantine | None = None,
        migrate_hook: Callable[[Any], None] | None = None,
        fleet_limiter: FleetRateLimiter | None = None,
        lease_namespace: str = "",
        policy_overrides: Mapping[str, AllocationPolicy] | None = None,
    ) -> None:
        if default_policy not in PAPER_POLICIES:
            raise ValueError(
                f"unknown policy {default_policy!r}; "
                f"choose from {sorted(PAPER_POLICIES)}"
            )
        self._snapshots = snapshot_source
        self._clock = clock
        self.default_policy = default_policy
        # name → configured policy instance used instead of the registry
        # default (e.g. a federation shard scaling its prune threshold)
        self._policy_overrides = dict(policy_overrides or {})
        for name in self._policy_overrides:
            if name not in PAPER_POLICIES:
                raise ValueError(
                    f"policy override for unknown policy {name!r}; "
                    f"choose from {sorted(PAPER_POLICIES)}"
                )
        self._broker = ResourceBroker(
            snapshot_source,
            wait_threshold_load_per_core=wait_threshold_load_per_core,
        )
        self.leases = LeaseTable(
            clock=clock,
            default_ttl_s=default_ttl_s,
            min_ttl_s=min_ttl_s,
            max_ttl_s=max_ttl_s,
            namespace=lease_namespace,
        )
        self.metrics = BrokerMetrics()
        self._rng = rng
        self.memoize_decisions = memoize_decisions
        #: run the pairwise order-swap improvement pass over each batch
        self.batch_improve = batch_improve
        self.batch_improve_passes = batch_improve_passes
        # lineage-keyed decision memo: key → (usable-node scope, outcome)
        self._decision_memo: OrderedDict[
            _DecisionKey, tuple[frozenset[str], Allocation | AllocationError]
        ] = OrderedDict()
        self._memo_lineage: tuple[int, int] | None = None
        # -- elastic reconfiguration plumbing ---------------------------
        self.planner = ReconfigPlanner()
        self._coster = _SnapshotCoster(migration_cost_config)
        self.gate = PlanGate(
            self._coster,
            gate_config,
            fleet_limiter=fleet_limiter or FleetRateLimiter(),
        )
        self._executor = TwoPhaseExecutor(
            self.leases, reserve_ttl_s=default_ttl_s
        )
        self._fleet = FleetExecutor(self._executor)
        self.quarantine = quarantine
        self.migrate_hook = migrate_hook
        # idempotency-token → decided result (grant dict or ProtocolError)
        self._token_memo: OrderedDict[str, dict[str, Any] | ProtocolError] = (
            OrderedDict()
        )
        self._started_at = clock()

    # ------------------------------------------------------------------
    # allocate (micro-batched)

    @atomic_between_awaits
    def allocate_batch(
        self, batch: list[AllocateParams]
    ) -> list[dict[str, Any] | ProtocolError]:
        """Solve a micro-batch of allocate requests against one snapshot.

        Three stages, all before any lease is granted:

        1. **replay** — idempotency tokens already answered return the
           original outcome without re-deciding;
        2. **greedy** — remaining requests are decided in stable
           priority order (ties keep arrival order, so an all-default
           batch reproduces the historical sequential behaviour); each
           decision's nodes join the exclusion mask of the ones after
           it, so one batch can never double-book a node;
        3. **improve** — adjacent pairs in decision order are re-decided
           in swapped order; a swap is adopted only when it strictly
           lowers the pair's summed raw Equation-4 cost, so the batch
           total is never worse than the greedy (= sequential) solution.

        Leases are then granted in arrival order.  Returns, per request,
        either a result dict for the wire or a :class:`ProtocolError`
        (``NO_CAPACITY``/``WAIT``/``BAD_REQUEST``).
        """
        if not batch:
            return []
        try:
            snapshot = self._snapshots()
        except SnapshotUnavailableError as exc:
            # Degradation floor: no fresh snapshot and the last-known-good
            # one aged out.  Denying is safer than placing jobs blind —
            # the whole batch gets the same typed, retryable error.
            self.metrics.record_batch(len(batch))
            err = ProtocolError(ErrorCode.MONITOR_STALE, str(exc))
            for _ in batch:
                self.metrics.record_decision(0.0, granted=False)
            return [err] * len(batch)
        if self.quarantine is not None:
            self.quarantine.observe(snapshot.livehosts)
        self.metrics.record_batch(len(batch))

        results: list[dict[str, Any] | ProtocolError | None] = [None] * len(batch)
        pending: list[int] = []
        for i, params in enumerate(batch):
            if params.token is not None:
                memoized = self._token_memo.get(params.token)
                if memoized is not None:
                    # Replay of a request whose answer the client never
                    # saw (transport died mid-response).  Return the
                    # *same* outcome — critically, without granting a
                    # second lease.
                    self._token_memo.move_to_end(params.token)
                    self.metrics.allocates_deduped += 1
                    results[i] = memoized
                    continue
            pending.append(i)

        held = self.leases.held_nodes()
        if self.quarantine is not None:
            quarantined = self.quarantine.excluded()
            if quarantined:
                held = frozenset(held | quarantined)

        # -- stage 2: greedy decide, priority order --------------------
        order = sorted(pending, key=lambda i: -batch[i].priority)
        decided: dict[int, _BatchEntry] = {}
        failed: dict[int, tuple[ProtocolError, float]] = {}
        solved: list[int] = []  # batch indexes, in decision order
        taken: set[str] = set()
        for i in order:
            params = batch[i]
            policy = params.policy or self.default_policy
            if policy not in PAPER_POLICIES:
                failed[i] = (
                    ProtocolError(
                        ErrorCode.BAD_REQUEST,
                        f"unknown policy {policy!r}; "
                        f"choose from {sorted(PAPER_POLICIES)}",
                    ),
                    0.0,
                )
                continue
            exclude = frozenset(held | taken) if taken else held
            t0 = time.perf_counter()
            try:
                allocation = self._decide(snapshot, params, policy, exclude)
            except WaitRecommended as exc:
                failed[i] = (
                    ProtocolError(ErrorCode.WAIT, str(exc)),
                    time.perf_counter() - t0,
                )
                continue
            except AllocationError as exc:
                failed[i] = (
                    ProtocolError(ErrorCode.NO_CAPACITY, str(exc)),
                    time.perf_counter() - t0,
                )
                continue
            decided[i] = _BatchEntry(
                params, policy, allocation, time.perf_counter() - t0
            )
            taken.update(allocation.nodes)
            solved.append(i)

        # -- stage 3: pairwise order-swap improvement ------------------
        if self.batch_improve and len(solved) >= 2:
            self._improve_batch(snapshot, held, solved, decided)

        # -- grant in arrival order ------------------------------------
        for i in pending:
            if i in failed:
                error, latency_s = failed[i]
                self.metrics.record_decision(latency_s, granted=False)
                results[i] = error
            else:
                entry = decided[i]
                lease = self.leases.grant(
                    entry.allocation.nodes,
                    entry.allocation.procs,
                    ttl_s=entry.params.ttl_s,
                    policy=entry.allocation.policy,
                    # kept on the lease so reconfigure can rebuild the request
                    ppn=entry.params.ppn,
                    alpha=entry.params.alpha,
                )
                self.metrics.record_decision(entry.latency_s, granted=True)
                results[i] = self._grant_result(lease, entry.allocation)
            params = batch[i]
            if params.token is not None:
                self._token_memo[params.token] = results[i]
                while len(self._token_memo) > _TOKEN_MEMO_CAP:
                    self._token_memo.popitem(last=False)
        return results  # type: ignore[return-value]

    def _improve_batch(
        self,
        snapshot: ClusterSnapshot,
        held: frozenset[str],
        solved: list[int],
        decided: dict[int, _BatchEntry],
    ) -> None:
        """Adjacent order-swap improvement over the greedy solution.

        A single job re-decided against the same exclusion superset can
        never beat its own greedy decision, so the only gains live in
        *ordering*: decide ``b`` before ``a`` and both may land better.
        Each probe re-decides the pair against all other final node sets
        (through the decision memo, so repeated shapes are cheap) and is
        adopted only on a strict decrease of the pair's summed raw
        Equation-4 cost — the batch total can only go down, and the loop
        terminates because the total is bounded below.
        """
        for _ in range(max(0, self.batch_improve_passes)):
            improved = False
            for pos in range(len(solved) - 1):
                a, b = solved[pos], solved[pos + 1]
                ea, eb = decided[a], decided[b]
                if ea.policy == "random" or eb.policy == "random":
                    continue
                old_cost_a, old_cost_b = ea.raw_cost(), eb.raw_cost()
                if old_cost_a is None or old_cost_b is None:
                    continue
                base = set(held)
                for j in solved:
                    if j != a and j != b:
                        base.update(decided[j].allocation.nodes)
                t0 = time.perf_counter()
                try:
                    alloc_b = self._decide(
                        snapshot, eb.params, eb.policy, frozenset(base)
                    )
                    alloc_a = self._decide(
                        snapshot,
                        ea.params,
                        ea.policy,
                        frozenset(base | set(alloc_b.nodes)),
                    )
                except (WaitRecommended, AllocationError):
                    continue
                finally:
                    probe_s = time.perf_counter() - t0
                new_b = _BatchEntry(eb.params, eb.policy, alloc_b, eb.latency_s)
                new_a = _BatchEntry(ea.params, ea.policy, alloc_a, ea.latency_s)
                new_cost_a, new_cost_b = new_a.raw_cost(), new_b.raw_cost()
                if new_cost_a is None or new_cost_b is None:
                    continue
                gain = (old_cost_a + old_cost_b) - (new_cost_a + new_cost_b)
                if gain > 1e-12:
                    new_a.latency_s += probe_s
                    decided[a], decided[b] = new_a, new_b
                    solved[pos], solved[pos + 1] = b, a
                    self.metrics.batch_swaps_adopted += 1
                    improved = True
            if not improved:
                break

    def _decide(
        self,
        snapshot: ClusterSnapshot,
        params: AllocateParams,
        policy: str,
        held: frozenset[str],
    ) -> Allocation:
        request = AllocationRequest(
            n_processes=params.n_processes,
            ppn=params.ppn,
            tradeoff=TradeOff.from_alpha(params.alpha),
        )
        # An override swaps in a configured instance; the memo still
        # keys on the *name* (the override is fixed for this service).
        chosen: AllocationPolicy | str = self._policy_overrides.get(
            policy, policy
        )
        # Stochastic policies must not be memoized — two clients asking
        # twice expect two draws — and are the only rng consumers.
        memoizable = self.memoize_decisions and policy != "random"
        if not memoizable:
            return self._broker.request(
                request,
                rng=self._rng,
                policy=chosen,
                exclude=held or None,
                snapshot=snapshot,
            ).allocation
        serial, generation, affected = snapshot_lineage(snapshot)
        self._sync_decision_memo(serial, generation, affected)
        key: _DecisionKey = (
            policy,
            params.n_processes,
            params.ppn,
            round(params.alpha, 12),
            held,
        )
        hit = self._decision_memo.get(key)
        if hit is not None:
            self._decision_memo.move_to_end(key)
            self.metrics.decisions_memoized += 1
            outcome = hit[1]
            if isinstance(outcome, AllocationError):
                raise outcome
            return outcome
        # The decision depends on every usable node (normalization runs
        # over the whole set), so the entry's invalidation scope is the
        # usable set itself — a delta touching none of these nodes
        # cannot change the outcome.
        scope = frozenset(snapshot.nodes) & frozenset(snapshot.livehosts)
        if held:
            scope = scope - held
        try:
            allocation = self._broker.request(
                request, policy=chosen, exclude=held or None, snapshot=snapshot
            ).allocation
        except WaitRecommended:
            raise  # depends on the threshold config, not worth caching
        except AllocationError as exc:
            self._memo_store(key, scope, exc)  # a denial is deterministic too
            raise
        self._memo_store(key, scope, allocation)
        return allocation

    def _memo_store(
        self,
        key: _DecisionKey,
        scope: frozenset[str],
        outcome: Allocation | AllocationError,
    ) -> None:
        self._decision_memo[key] = (scope, outcome)
        while len(self._decision_memo) > _DECISION_MEMO_CAP:
            self._decision_memo.popitem(last=False)

    def _sync_decision_memo(
        self,
        serial: int,
        generation: int,
        affected: frozenset[str] | None,
    ) -> None:
        """Reconcile the decision memo with the current snapshot lineage.

        A one-step advance on the same lineage (``generation == memo
        generation + 1`` with a known affected set) evicts exactly the
        entries whose usable-node scope intersects the delta; any other
        transition — new serial (full rebuild), a skipped generation, or
        an unknown affected set — clears the memo wholesale, which is
        the safe historical "memo dies with the snapshot" behaviour.
        """
        lineage = (serial, generation)
        if self._memo_lineage == lineage:
            return
        if (
            self._memo_lineage is not None
            and affected is not None
            and serial == self._memo_lineage[0]
            and generation == self._memo_lineage[1] + 1
        ):
            stale = [
                key
                for key, (scope, _) in self._decision_memo.items()
                if scope & affected
            ]
            for key in stale:
                del self._decision_memo[key]
            self.metrics.decisions_invalidated += len(stale)
        else:
            self.metrics.decisions_invalidated += len(self._decision_memo)
            self._decision_memo.clear()
        self._memo_lineage = lineage

    def _grant_result(
        self, lease: Lease, allocation: Allocation
    ) -> dict[str, Any]:
        meta = allocation.metadata
        return {
            "lease_id": lease.lease_id,
            "nodes": list(lease.nodes),
            "procs": dict(lease.procs),
            "hostfile": allocation.hostfile(),
            "policy": lease.policy,
            "ttl_s": lease.ttl_s,
            "expires_at": lease.expires_at,
            "snapshot_time": allocation.snapshot_time,
            "total_cost": meta.get("total_cost"),
            "compute_cost": meta.get("compute_cost"),
            "network_cost": meta.get("network_cost"),
        }

    # ------------------------------------------------------------------
    # lease lifecycle

    def renew(self, params: RenewParams) -> dict[str, Any]:
        """Extend a lease; raises :class:`ProtocolError` on bad leases."""
        try:
            lease = self.leases.renew(params.lease_id, ttl_s=params.ttl_s)
        except LeaseError as exc:
            if exc.code == "EXPIRED_LEASE":
                self.metrics.expired += 1
            raise ProtocolError(ErrorCode(exc.code), exc.message) from None
        self.metrics.renewed += 1
        return {
            "lease_id": lease.lease_id,
            "ttl_s": lease.ttl_s,
            "expires_at": lease.expires_at,
            "renewals": lease.renewals,
        }

    def release(self, params: ReleaseParams) -> dict[str, Any]:
        """End a lease; raises :class:`ProtocolError` on bad leases."""
        try:
            lease = self.leases.release(params.lease_id)
        except LeaseError as exc:
            if exc.code == "EXPIRED_LEASE":
                self.metrics.expired += 1
            raise ProtocolError(ErrorCode(exc.code), exc.message) from None
        self.metrics.released += 1
        return {
            "lease_id": lease.lease_id,
            "released": True,
            "nodes": list(lease.nodes),
        }

    @atomic_between_awaits
    def reconfigure(self, params: ReconfigureParams) -> dict[str, Any]:
        """Replan a live lease; apply the plan if the gate accepts it.

        The planner re-runs Algorithm 1/2 over the lease's own nodes plus
        every unleased node; the gate weighs the Equation-4 gain (applied
        to ``remaining_s``) against the checkpoint-transfer bill priced
        from the snapshot's measured bandwidths.  An accepted plan is
        applied to the lease table through the two-phase executor, and
        the result carries the new node set and hostfile — the *client*
        performs the actual migration after reading the response, exactly
        as it launches ``mpiexec`` after ``allocate``.

        Returns ``{"reconfigured": false, "reason": ...}`` when staying
        put wins; raises :class:`ProtocolError` for dead leases or a
        failed swap.
        """
        now = self._clock()
        lease = self.leases.get(params.lease_id)
        if lease is None:
            raise ProtocolError(
                ErrorCode.UNKNOWN_LEASE,
                f"lease {params.lease_id!r} is not active",
            )
        if lease.expired(now):
            self.leases.sweep()
            self.metrics.expired += 1
            raise ProtocolError(
                ErrorCode.EXPIRED_LEASE,
                f"lease {params.lease_id} expired; nodes reclaimed — "
                "re-allocate instead of reconfiguring",
            )
        try:
            snapshot = self._snapshots()
        except SnapshotUnavailableError as exc:
            self.metrics.reconfig_rejected += 1
            raise ProtocolError(ErrorCode.MONITOR_STALE, str(exc)) from None
        if self.quarantine is not None:
            self.quarantine.observe(snapshot.livehosts)
        alpha = params.alpha if params.alpha is not None else lease.alpha
        t0 = time.perf_counter()
        plan = self._propose_for_lease(lease, snapshot, alpha=alpha)
        if plan is None:
            self.metrics.reconfig_rejected += 1
            return {
                "lease_id": lease.lease_id,
                "reconfigured": False,
                "reason": "placement_already_best",
                "plan_latency_s": time.perf_counter() - t0,
            }
        self._coster.snapshot = snapshot
        remaining_s = (
            params.remaining_s
            if params.remaining_s is not None
            else lease.remaining_s(now)
        )
        decision = self.gate.evaluate(plan, remaining_s=remaining_s, now=now)
        if not decision:
            self.metrics.reconfig_rejected += 1
            return {
                "lease_id": lease.lease_id,
                "reconfigured": False,
                "reason": decision.reason,
                "kind": plan.kind,
                "predicted_gain": plan.predicted_gain,
                "benefit_s": decision.benefit_s,
                "cost_s": decision.cost_s,
                "plan_latency_s": time.perf_counter() - t0,
            }
        try:
            swapped = self._executor.apply(plan, migrate=self.migrate_hook)
        except ReconfigError as exc:
            try:
                code = ErrorCode(exc.code)
            except ValueError:  # pragma: no cover — all codes are mapped
                code = ErrorCode.INTERNAL
            raise ProtocolError(code, exc.message) from None
        self.metrics.reconfigured += 1
        return {
            "lease_id": swapped.lease_id,
            "reconfigured": True,
            "kind": plan.kind,
            "nodes": list(swapped.nodes),
            "procs": dict(swapped.procs),
            "hostfile": plan.allocation().hostfile(),
            "add_nodes": list(plan.add_nodes),
            "drop_nodes": list(plan.drop_nodes),
            "predicted_gain": plan.predicted_gain,
            "benefit_s": decision.benefit_s,
            "cost_s": decision.cost_s,
            "reconfigs": swapped.reconfigs,
            "expires_at": swapped.expires_at,
            "plan_latency_s": time.perf_counter() - t0,
        }

    def _propose_for_lease(
        self,
        lease: Lease,
        snapshot: ClusterSnapshot,
        *,
        alpha: float,
        exclude_extra: frozenset[str] = frozenset(),
    ) -> ReconfigPlan | None:
        """Same-size replanning for one lease against ``snapshot``.

        Shared by ``reconfigure`` (one lease, client-initiated) and
        ``fleet_plan`` (every lease, pass-initiated — ``exclude_extra``
        carries the nodes earlier plans of the same pass already
        claimed, so one pass never proposes conflicting placements).
        """
        request = AllocationRequest(
            n_processes=sum(lease.procs.values()),
            ppn=lease.ppn,
            tradeoff=TradeOff.from_alpha(alpha),
        )
        exclude = self.leases.held_nodes()
        if self.quarantine is not None:
            quarantined = self.quarantine.excluded()
            if quarantined:
                exclude = frozenset(exclude | quarantined)
        if exclude_extra:
            exclude = frozenset(exclude | exclude_extra)
        return self.planner.propose(
            snapshot,
            lease_id=lease.lease_id,
            nodes=lease.nodes,
            procs=lease.procs,
            request=request,
            exclude=exclude,
        )

    # ------------------------------------------------------------------
    # fleet pass

    @atomic_between_awaits
    def fleet_plan(self, params: FleetPlanParams) -> dict[str, Any]:
        """One coordinated malleability pass over every live lease.

        Replans each lease against the *same* snapshot (plans of one
        pass exclude each other's claimed nodes, so they never
        conflict), gates each candidate with ``fleet=True`` (per-lease
        cooldown bypassed, global rate limiter in charge), orders the
        accepted plans shrinks-first and applies them atomically one by
        one through the two-phase executor — a mid-flight failure rolls
        that action back and the pass carries on.

        ``dry_run=True`` returns the ordered plan without touching the
        lease table, cooldowns, or the rate limiter.  The broker only
        coordinates *placements* (migrate/rebalance); resize decisions
        need application speedup models, which live client-side (the DES
        :class:`~repro.fleet.sim.FleetScheduler` owns them).
        """
        now = self._clock()
        try:
            snapshot = self._snapshots()
        except SnapshotUnavailableError as exc:
            raise ProtocolError(ErrorCode.MONITOR_STALE, str(exc)) from None
        if self.quarantine is not None:
            self.quarantine.observe(snapshot.livehosts)
        t0 = time.perf_counter()
        self._coster.snapshot = snapshot
        leases = sorted(self.leases.active(), key=lambda l: l.lease_id)
        plans: list[ReconfigPlan] = []
        skipped: list[dict[str, Any]] = []
        claimed: set[str] = set()
        for lease in leases:
            if len(plans) >= params.max_actions:
                skipped.append(
                    {"lease_id": lease.lease_id, "reason": "max_actions"}
                )
                continue
            plan = self._propose_for_lease(
                lease,
                snapshot,
                alpha=lease.alpha,
                exclude_extra=frozenset(claimed),
            )
            if plan is None:
                continue  # this placement is already best — a no-op
            decision = self.gate.evaluate(
                plan,
                remaining_s=lease.remaining_s(now),
                now=now,
                fleet=True,
                record=not params.dry_run,
            )
            if not decision:
                skipped.append(
                    {
                        "lease_id": lease.lease_id,
                        "reason": decision.reason,
                        "kind": plan.kind,
                        "predicted_gain": plan.predicted_gain,
                    }
                )
                continue
            claimed.update(plan.add_nodes)
            plans.append(plan)
        ordered = order_plans(plans)
        result: dict[str, Any] = {
            "dry_run": params.dry_run,
            "considered": len(leases),
            "planned": [
                {
                    "lease_id": p.lease_id,
                    "kind": p.kind,
                    "add_nodes": list(p.add_nodes),
                    "drop_nodes": list(p.drop_nodes),
                    "predicted_gain": p.predicted_gain,
                }
                for p in ordered
            ],
            "skipped": skipped,
            # per-lease Equation-4 relative gains; comparable because
            # every plan of the pass is same-size under one snapshot
            "objective_gain": sum(p.predicted_gain for p in ordered),
        }
        if params.dry_run:
            result["applied"] = 0
            result["failed"] = 0
            result["plan_latency_s"] = time.perf_counter() - t0
            return result
        report = self._fleet.apply_pass(ordered, migrate=self.migrate_hook)
        self.metrics.fleet_passes += 1
        self.metrics.fleet_actions_applied += report.applied
        self.metrics.fleet_actions_failed += report.failed
        # fleet commits are reconfigurations too — the federation status
        # rows aggregate both paths under one pair of counters
        self.metrics.reconfigured += report.applied
        self.metrics.reconfig_rejected += len(skipped)
        result.update(report.to_dict())
        result["plan_latency_s"] = time.perf_counter() - t0
        return result

    def fleet_status(self) -> dict[str, Any]:
        """The ``fleet_status`` RPC: pass counters and limiter state."""
        limiter = self.gate.fleet_limiter
        assert limiter is not None  # constructor always installs one
        return {
            "passes": self._fleet.passes,
            "actions_applied": self._fleet.actions_applied,
            "actions_failed": self._fleet.actions_failed,
            "rate_limiter": {
                "max_actions": limiter.max_actions,
                "window_s": limiter.window_s,
                "in_window": limiter.in_window,
            },
            "gate_counts": dict(self.gate.counts),
        }

    def sweep_expired(self) -> list[Lease]:
        """Reclaim expired leases (the daemon calls this periodically)."""
        reclaimed = self.leases.sweep()
        self.metrics.expired += len(reclaimed)
        return reclaimed

    # ------------------------------------------------------------------
    # status

    def status(self) -> dict[str, Any]:
        """The ``status`` RPC result: leases, metrics, snapshot health."""
        now = self._clock()
        leases = self.leases.active()
        result: dict[str, Any] = {
            "protocol_version": PROTOCOL_VERSION,
            "uptime_s": max(0.0, now - self._started_at),
            "policy": self.default_policy,
            "leases": {
                "active": len(leases),
                "nodes_held": len(self.leases.held_nodes()),
                "soonest_expiry_s": min(
                    (l.remaining_s(now) for l in leases), default=None
                ),
            },
            "metrics": self.metrics.snapshot(),
        }
        if isinstance(self._snapshots, CachedSnapshotSource):
            age = self._snapshots.age_s()
            result["snapshot"] = {
                "age_s": None if age == float("inf") else age,
                "max_age_s": self._snapshots.max_age_s,
                "refreshes": self._snapshots.refreshes,
                "hits": self._snapshots.hits,
                "fallbacks": self._snapshots.fallbacks,
                "incremental": self._snapshots.incremental,
                "deltas_applied": self._snapshots.deltas_applied,
                "deltas_empty": self._snapshots.deltas_empty,
                "delta_full_rebuilds": self._snapshots.delta_full_rebuilds,
            }
        if self.quarantine is not None:
            result["quarantine"] = self.quarantine.stats()
        return result
