"""Invariants every chaos scenario asserts, and the checker that collects
violations instead of dying on the first one.

The contract under fault injection is graceful degradation, which
decomposes into four checkable properties:

1. **No unhandled exceptions** — every failure surfaces as one of the
   stack's typed errors (:data:`TYPED_ERRORS`); a raw ``KeyError`` or
   ``ZeroDivisionError`` escaping to the caller is a bug, full stop.
2. **Lease safety** — no node is ever held by two active leases
   (double-grant) and the table's active count always equals
   grants − releases − expiries (no leak), even across retries,
   rollbacks and mid-migration deaths.
3. **Liveness** — the service keeps granting when degraded-but-usable
   data exists, and denies with a *typed* error (``MONITOR_STALE``,
   ``NO_CAPACITY``) when it doesn't.
4. **Bounded quality** — a placement chosen from degraded data scores
   within :data:`DEFAULT_QUALITY_BOUND` of the fault-free oracle's
   choice under Equation 4 *evaluated on ground truth*.  Degradation may
   cost quality; it may not produce arbitrarily bad placements.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.broker.client import BrokerError
from repro.broker.protocol import ProtocolError
from repro.core.broker import WaitRecommended
from repro.core.compute_load import compute_loads
from repro.core.network_load import network_loads, total_group_network_load
from repro.core.policies import AllocationError, AllocationRequest
from repro.elastic.executor import ReconfigError
from repro.monitor.snapshot import ClusterSnapshot, SnapshotUnavailableError
from repro.monitor.store import StoreCorruptError
from repro.scheduler.leases import LeaseError, LeaseTable

#: the exception types a degraded stack is ALLOWED to raise — anything
#: else escaping to the caller is an unhandled-exception violation.
TYPED_ERRORS: tuple[type[BaseException], ...] = (
    ProtocolError,
    BrokerError,
    AllocationError,
    WaitRecommended,
    LeaseError,
    ReconfigError,
    StoreCorruptError,
    SnapshotUnavailableError,
)

#: how much worse (Eq.-4 score ratio on ground truth) a degraded
#: placement may be than the oracle's before it counts as a violation
DEFAULT_QUALITY_BOUND = 3.0


@dataclass(frozen=True)
class Violation:
    """One broken invariant."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


@dataclass
class InvariantChecker:
    """Collects violations and degradation statistics across a scenario."""

    scenario: str
    violations: list[Violation] = field(default_factory=list)
    stats: Counter = field(default_factory=Counter)
    error_codes: Counter = field(default_factory=Counter)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violate(self, invariant: str, detail: str) -> None:
        self.violations.append(Violation(invariant, detail))

    # -- invariant 1: typed errors only ---------------------------------
    def guard(self, label: str, fn: Callable[[], Any]) -> Any | None:
        """Run ``fn``; typed errors count as degradation, raw ones as bugs.

        Returns the result, or ``None`` when a typed error occurred.
        """
        try:
            result = fn()
        except TYPED_ERRORS as exc:
            self.stats["typed_errors"] += 1
            code = getattr(exc, "code", type(exc).__name__)
            self.error_codes[str(code)] += 1
            return None
        except Exception as exc:  # noqa: BLE001 — this IS the invariant
            self.stats["unhandled"] += 1
            self.violate(
                "no_unhandled_exception",
                f"{label}: {type(exc).__name__}: {exc}",
            )
            return None
        self.stats["ok_calls"] += 1
        return result

    # -- invariant 2: lease safety --------------------------------------
    def check_no_double_grant(self, leases: LeaseTable) -> None:
        """No node may appear in more than one active lease."""
        owners: dict[str, str] = {}
        for lease in leases.active():
            for node in lease.nodes:
                if node in owners:
                    self.violate(
                        "no_double_grant",
                        f"node {node!r} held by both {owners[node]} "
                        f"and {lease.lease_id}",
                    )
                owners[node] = lease.lease_id

    def check_lease_accounting(
        self, leases: LeaseTable, expected_active: int
    ) -> None:
        """Active leases must equal grants − releases − expiries."""
        actual = len(leases.active())
        if actual != expected_active:
            self.violate(
                "no_lease_leak",
                f"expected {expected_active} active lease(s), table holds "
                f"{actual}",
            )

    # -- invariant 4: bounded quality ------------------------------------
    def check_quality(
        self,
        *,
        chosen: Iterable[str],
        oracle: Iterable[str],
        truth: ClusterSnapshot,
        request: AllocationRequest,
        bound: float = DEFAULT_QUALITY_BOUND,
        label: str = "",
    ) -> float:
        """Equation-4 score ratio of ``chosen`` vs ``oracle`` on ``truth``.

        Both groups are costed on the *ground-truth* snapshot — the
        degraded allocator picked blind, but it is judged with eyes open.
        Nodes the truth snapshot does not know (e.g. genuinely down)
        count as stale placements, not quality violations.
        """
        chosen = tuple(chosen)
        oracle = tuple(oracle)
        known = set(truth.nodes)
        if not set(chosen) <= known or not set(oracle) <= known:
            self.stats["stale_placements"] += 1
            return 1.0
        cl = compute_loads(truth, request.compute_weights)
        nl = network_loads(truth, request.network_weights)
        penalty = max(nl.values()) if nl else 0.0
        c_pair = [sum(cl[u] for u in g) for g in (chosen, oracle)]
        n_pair = [
            total_group_network_load(nl, g, missing_penalty=penalty)
            for g in (chosen, oracle)
        ]
        c_total, n_total = sum(c_pair), sum(n_pair)
        totals = [
            request.tradeoff.alpha * (c / c_total if c_total > 0 else 0.0)
            + request.tradeoff.beta * (n / n_total if n_total > 0 else 0.0)
            for c, n in zip(c_pair, n_pair)
        ]
        t_chosen, t_oracle = totals
        if t_oracle <= 1e-12:
            ratio = 1.0 if t_chosen <= 1e-12 else float("inf")
        else:
            ratio = t_chosen / t_oracle
        self.stats["quality_checks"] += 1
        if ratio > bound:
            self.violate(
                "bounded_quality",
                f"{label or 'placement'}: degraded choice scores "
                f"{ratio:.2f}× the oracle's (bound {bound:g}); "
                f"chosen={sorted(chosen)} oracle={sorted(oracle)}",
            )
        return ratio

    # -- reporting -------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "violations": [str(v) for v in self.violations],
            "stats": dict(self.stats),
            "error_codes": dict(self.error_codes),
        }
