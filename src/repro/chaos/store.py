"""ChaoticStore — deterministic fault injection at the store seam.

The paper's data plane is a shared filesystem: every failure mode of NFS
(torn writes, stale mounts, skewed mtimes, silently wrong bytes) reaches
the allocator through exactly one interface, :class:`SharedStore`.  This
wrapper injects those failures at that interface, so the rest of the
stack is exercised unmodified:

* ``corrupt``  — reads of matching keys raise :class:`StoreCorruptError`
  (what :class:`~repro.monitor.store.FileStore` raises on torn JSON);
* ``missing``  — reads of matching keys return ``None`` (file vanished);
* ``freeze``   — writes to matching keys are dropped (stale mount: the
  existing record survives but never refreshes — a staleness storm);
* ``skew``     — read timestamps are shifted by a constant (clock skew
  between the writer and the reader of the shared filesystem);
* ``poison``   — read values pass through a mutator (silent data
  corruption: NaN, negative, or absurd magnitudes).

Rules are plain objects; adding and removing them is how the scenario
runner turns faults on and off at scheduled simulation times.  Every
rule counts its hits so scenarios can assert the fault actually fired.
"""

from __future__ import annotations

import fnmatch
import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.monitor.store import SharedStore, StoreCorruptError

#: ``(key, value) -> value`` applied to reads of poisoned keys
Mutator = Callable[[str, Any], Any]


@dataclass
class ChaosRule:
    """One active fault: a mode applied to keys matching a glob pattern."""

    mode: str                      # corrupt | missing | freeze | skew | poison
    pattern: str                   # fnmatch glob over store keys
    skew_s: float = 0.0            # only for mode="skew"
    mutate: Mutator | None = None  # only for mode="poison"
    hits: int = field(default=0, compare=False)

    _MODES = frozenset({"corrupt", "missing", "freeze", "skew", "poison"})

    def __post_init__(self) -> None:
        if self.mode not in self._MODES:
            raise ValueError(
                f"unknown chaos mode {self.mode!r}; "
                f"choose from {sorted(self._MODES)}"
            )
        if self.mode == "poison" and self.mutate is None:
            raise ValueError("poison rules need a mutate callable")

    def matches(self, key: str) -> bool:
        return fnmatch.fnmatchcase(key, self.pattern)


class ChaoticStore(SharedStore):
    """A :class:`SharedStore` that misbehaves exactly as instructed."""

    def __init__(self, inner: SharedStore) -> None:
        self.inner = inner
        self._rules: list[ChaosRule] = []
        #: observability counters for scenario assertions
        self.corrupt_served = 0
        self.missing_served = 0
        self.writes_frozen = 0
        self.values_poisoned = 0
        self.times_skewed = 0

    # -- rule management ------------------------------------------------
    def add(self, rule: ChaosRule) -> ChaosRule:
        """Arm a rule; returns it so the caller can :meth:`remove` it."""
        self._rules.append(rule)
        return rule

    def remove(self, rule: ChaosRule) -> None:
        """Disarm a rule (no-op if already removed)."""
        try:
            self._rules.remove(rule)
        except ValueError:
            pass

    def clear(self) -> None:
        """Disarm every rule — the cluster heals."""
        self._rules.clear()

    def active_rules(self) -> tuple[ChaosRule, ...]:
        return tuple(self._rules)

    # -- convenience constructors ---------------------------------------
    def corrupt(self, pattern: str) -> ChaosRule:
        return self.add(ChaosRule("corrupt", pattern))

    def vanish(self, pattern: str) -> ChaosRule:
        return self.add(ChaosRule("missing", pattern))

    def freeze(self, pattern: str) -> ChaosRule:
        return self.add(ChaosRule("freeze", pattern))

    def skew(self, pattern: str, skew_s: float) -> ChaosRule:
        return self.add(ChaosRule("skew", pattern, skew_s=skew_s))

    def poison(self, pattern: str, mutate: Mutator) -> ChaosRule:
        return self.add(ChaosRule("poison", pattern, mutate=mutate))

    # -- SharedStore interface ------------------------------------------
    def put(self, key: str, value: Any, time: float) -> None:
        for rule in self._rules:
            if rule.mode == "freeze" and rule.matches(key):
                rule.hits += 1
                self.writes_frozen += 1
                return
        self.inner.put(key, value, time)

    def get(self, key: str) -> tuple[float, Any] | None:
        for rule in self._rules:
            if not rule.matches(key):
                continue
            if rule.mode == "corrupt":
                rule.hits += 1
                self.corrupt_served += 1
                raise StoreCorruptError(key, "chaos-injected corruption")
            if rule.mode == "missing":
                rule.hits += 1
                self.missing_served += 1
                return None
        rec = self.inner.get(key)
        if rec is None:
            return None
        t, value = rec
        for rule in self._rules:
            if not rule.matches(key):
                continue
            if rule.mode == "skew":
                rule.hits += 1
                self.times_skewed += 1
                t = t + rule.skew_s
            elif rule.mode == "poison":
                assert rule.mutate is not None
                rule.hits += 1
                self.values_poisoned += 1
                value = rule.mutate(key, value)
        return (t, value)

    def keys(self, prefix: str = "") -> list[str]:
        out = []
        for key in self.inner.keys(prefix):
            if any(
                r.mode == "missing" and r.matches(key) for r in self._rules
            ):
                continue
            out.append(key)
        return out

    def delete(self, key: str) -> bool:
        return self.inner.delete(key)


# -- stock poisons ------------------------------------------------------
def _map_floats(value: Any, fn: Callable[[float], float]) -> Any:
    """Apply ``fn`` to every float in a nested dict/list/tuple value.

    ``bool`` is deliberately left alone (it is an ``int`` subclass) and
    ints are preserved as ints only when ``fn`` is identity on them —
    the poisons below intentionally break numbers, so everything numeric
    goes through ``fn``.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return fn(float(value))
    if isinstance(value, dict):
        return {k: _map_floats(v, fn) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return type(value)(_map_floats(v, fn) for v in value)
    return value


def poison_nan(key: str, value: Any) -> Any:
    """Every number becomes NaN — validation must refuse the record."""
    return _map_floats(value, lambda _: math.nan)


def poison_negative(key: str, value: Any) -> Any:
    """Every number flips negative — loads/cores below physical floors."""
    return _map_floats(value, lambda x: -abs(x) - 1.0)


def poison_huge(key: str, value: Any) -> Any:
    """Every number explodes to 1e30 — beyond any plausibility bound."""
    return _map_floats(value, lambda _: 1e30)
