"""Deterministic interleaving fuzzer — forced task reordering by seed.

The static RACE pass (``repro/analysis/race/``) proves properties of
*one* function's yield points; this module attacks the complementary
dynamic question: of all the orders the event loop could run ready
tasks in, does any break an invariant?  asyncio's default loop drains
its ready queue FIFO, which hides every ordering bug that FIFO happens
to mask.  :class:`InterleavingLoop` shuffles the ready queue with a
seeded RNG before every drain — a mini-loom: same seed, same workload
⇒ bit-for-bit the same (adversarial) schedule, so a failing
interleaving replays exactly from its seed, just like every other
chaos scenario in this harness.

Usage::

    result = run_interleaved(lambda: my_async_main(), seed=7)

or across many seeds::

    failures = sweep_seeds(lambda: my_async_main(), seeds=range(32))

The atomic-section assertion helpers the scenarios drive
(:class:`AtomicViolation`, :func:`atomic_between_awaits`,
:func:`no_interleaving`) live in :mod:`repro.util.atomic` — production
code must not import the chaos package — and are re-exported here for
scenario authors.
"""

from __future__ import annotations

import asyncio
import random
import selectors
from typing import Any, Awaitable, Callable, Iterable

from repro.util.atomic import (  # noqa: F401  — re-exported API
    AtomicViolation,
    atomic_between_awaits,
    no_interleaving,
)

#: overall wall-clock guard per fuzzed run: an interleaving that
#: deadlocks must fail the scenario, not hang the harness
DEFAULT_TIMEOUT_S = 30.0


class InterleavingLoop(asyncio.SelectorEventLoop):
    """A selector event loop that steps same-tick *tasks* in seeded
    random order instead of FIFO.

    Only task-step wakeups are permuted, and only among their own queue
    positions — loop-internal plumbing callbacks (transport attachment,
    ``sock_connect`` bookkeeping) have ordering contracts with each
    other and stay FIFO.  Task wakeup order is exactly the freedom
    asyncio gives no guarantee about, so every schedule produced is one
    a legal loop could produce; the fuzzer widens coverage of the legal
    schedule space, it never fabricates an illegal one.
    """

    def __init__(self, seed: int = 0) -> None:
        super().__init__(selectors.DefaultSelector())
        self._interleave_rng = random.Random(seed)
        #: number of ticks on which task order was actually permuted
        self.reorders = 0

    @staticmethod
    def _is_task_step(handle: object) -> bool:
        callback = getattr(handle, "_callback", None)
        return isinstance(getattr(callback, "__self__", None), asyncio.Task)

    def _run_once(self) -> None:  # type: ignore[override]
        ready = getattr(self, "_ready", None)
        if ready is not None and len(ready) > 1:
            handles = list(ready)
            slots = [
                i for i, h in enumerate(handles) if self._is_task_step(h)
            ]
            if len(slots) > 1:
                steps = [handles[i] for i in slots]
                self._interleave_rng.shuffle(steps)
                for slot, step in zip(slots, steps):
                    handles[slot] = step
                ready.clear()
                ready.extend(handles)
                self.reorders += 1
        super()._run_once()  # type: ignore[misc]


def run_interleaved(
    main: Callable[[], Awaitable[Any]],
    seed: int = 0,
    *,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> Any:
    """Run ``main()`` to completion on a fresh :class:`InterleavingLoop`.

    The loop is installed as the thread's current loop for the duration
    (so ``get_event_loop``-era code still lands on it) and always closed
    afterwards.  A run exceeding ``timeout_s`` raises ``TimeoutError`` —
    a deadlocking interleaving is a finding, not a hang.
    """
    loop = InterleavingLoop(seed)
    asyncio.set_event_loop(loop)
    try:
        return loop.run_until_complete(
            asyncio.wait_for(main(), timeout=timeout_s)
        )
    finally:
        _drain_leftovers(loop)
        loop.close()
        asyncio.set_event_loop(None)


def sweep_seeds(
    main: Callable[[], Awaitable[Any]],
    seeds: Iterable[int],
    *,
    timeout_s: float = DEFAULT_TIMEOUT_S,
) -> dict[int, BaseException]:
    """Run ``main`` under every seed; map each failing seed to its error.

    An empty dict means every explored interleaving held.  Reproduce any
    failure exactly with ``run_interleaved(main, seed=<failing seed>)``.
    """
    failures: dict[int, BaseException] = {}
    for seed in seeds:
        try:
            run_interleaved(main, seed, timeout_s=timeout_s)
        except BaseException as exc:  # noqa: BLE001 — the sweep reports every failure mode, incl. AtomicViolation and TimeoutError, mapped to its seed
            failures[seed] = exc
    return failures


def _drain_leftovers(loop: InterleavingLoop) -> None:
    """Cancel and reap tasks a failed run left behind, before close()."""
    leftovers = [t for t in asyncio.all_tasks(loop) if not t.done()]
    for task in leftovers:
        task.cancel()
    if leftovers:
        loop.run_until_complete(
            asyncio.gather(*leftovers, return_exceptions=True)
        )
