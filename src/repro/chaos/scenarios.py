"""Named chaos scenarios: monitor → broker → elastic under injected faults.

Each scenario builds a small simulated cluster whose monitor writes
through a :class:`~repro.chaos.store.ChaoticStore`, fronts it with the
production service stack (``build_snapshot`` →
:class:`CachedSnapshotSource` → :class:`BrokerService` with quarantine
and idempotency armed), schedules faults at exact simulation times, and
drives an allocate/hold/release workload while an
:class:`~repro.chaos.invariants.InvariantChecker` records violations.

Determinism: one integer seed fixes the cluster workload, every fault
target, and every request — a failing scenario replays identically from
``python -m repro chaos --seed N --only <name>``.

The quality oracle is *ground truth*: at each grant we also run the same
policy on an :func:`~repro.monitor.snapshot.oracle_snapshot` (zero
monitoring delay, zero faults) with the same exclusions, and bound the
degraded choice's Equation-4 score against the oracle's — degraded data
may cost quality, but only boundedly so.
"""

from __future__ import annotations

import asyncio
import json
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.broker.client import BrokerClient
from repro.broker.protocol import AllocateParams, ProtocolError
from repro.broker.server import BrokerServer
from repro.broker.service import BrokerService
from repro.chaos.faults import FaultInjector
from repro.chaos.interleave import (
    AtomicViolation,
    atomic_between_awaits,
    no_interleaving,
    run_interleaved,
)
from repro.chaos.invariants import (
    DEFAULT_QUALITY_BOUND,
    InvariantChecker,
)
from repro.chaos.store import (
    ChaoticStore,
    poison_nan,
    poison_negative,
)
from repro.chaos.transport import (
    CLOSE,
    DIE_AFTER_SEND,
    DIE_BEFORE_SEND,
    OK,
    ScriptedSocketFactory,
)
from repro.cluster.topology import uniform_cluster
from repro.core.policies import PAPER_POLICIES, AllocationRequest
from repro.core.weights import TradeOff
from repro.elastic.executor import ReconfigError
from repro.elastic.plan import ReconfigPlan, plan_kind
from repro.experiments.scenario import Scenario
from repro.federation import (
    build_federation,
    snapshot_switches,
    subtree_partition,
)
from repro.fleet.executor import FleetExecutor, order_plans
from repro.monitor.quarantine import NodeQuarantine
from repro.monitor.snapshot import CachedSnapshotSource, oracle_snapshot
from repro.monitor.store import InMemoryStore

#: leases far outlive every scenario, so expiry never confounds the
#: lease-accounting invariant (expiry itself is tier-1-tested elsewhere)
_LEASE_TTL_S = 3500.0


# ----------------------------------------------------------------------
# world building


@dataclass
class ChaosWorld:
    """Everything one scenario drives."""

    scenario: Scenario
    store: ChaoticStore
    source: CachedSnapshotSource
    service: BrokerService
    injector: FaultInjector
    quarantine: NodeQuarantine | None = None
    #: bounded-quality invariant bound this world was calibrated for —
    #: faster-varying regimes (bursty worlds) honestly cost more quality
    #: per second of monitoring staleness than the legacy smooth load
    quality_bound: float = DEFAULT_QUALITY_BOUND

    @property
    def now(self) -> float:
        return self.scenario.engine.now

    def truth(self):
        """Ground-truth snapshot of the cluster, bypassing the monitor."""
        return oracle_snapshot(
            self.scenario.cluster, self.scenario.network, now=self.now
        )


def build_world(
    seed: int,
    *,
    scenario: str | None = None,
    n_nodes: int = 8,
    warmup_s: float = 600.0,
    lkg_max_age_s: float | None = 600.0,
    with_quarantine: bool = False,
    migrate_hook: Callable[[Any], None] | None = None,
) -> ChaosWorld:
    """One fault-injectable world; ``scenario`` swaps in a registered cell.

    ``scenario=None`` keeps the legacy 8-node uniform tree bit-for-bit;
    a registered name (e.g. ``"bursty"`` — fat-tree under arrival
    storms) replays every fault schedule against that cell's topology
    and background regime instead.
    """
    store = ChaoticStore(InMemoryStore())
    quality_bound = DEFAULT_QUALITY_BOUND
    if scenario is None:
        specs, topo = uniform_cluster(n_nodes, nodes_per_switch=4)
        workload_config = None
    else:
        from repro.scenarios import get_scenario

        spec = get_scenario(scenario)
        specs, topo = spec.build_cluster()
        workload_config = spec.workload_config
        quality_bound = spec.chaos_quality_bound
    sc = Scenario.build(
        specs, topo, seed=seed, store=store, workload_config=workload_config
    )
    sc.warm_up(warmup_s)
    clock = lambda: sc.engine.now  # noqa: E731 — the DES clock, injected
    source = CachedSnapshotSource(
        sc.snapshot,
        max_age_s=5.0,
        clock=clock,
        lkg_max_age_s=lkg_max_age_s,
    )
    quarantine = (
        NodeQuarantine(
            clock=clock, flap_threshold=3, window_s=600.0, cooldown_s=900.0
        )
        if with_quarantine
        else None
    )
    service = BrokerService(
        source,
        clock=clock,
        default_ttl_s=_LEASE_TTL_S,
        quarantine=quarantine,
        migrate_hook=migrate_hook,
    )
    injector = FaultInjector(sc, store=store, seed=seed)
    return ChaosWorld(
        sc, store, source, service, injector, quarantine,
        quality_bound=quality_bound,
    )


# ----------------------------------------------------------------------
# the driven workload


@dataclass
class DriveStats:
    """What happened while the workload ran."""

    grants: int = 0
    denials: int = 0
    releases: int = 0
    outstanding: deque = field(default_factory=deque)  # lease_ids
    granted_nodes: list[tuple[float, tuple[str, ...]]] = field(
        default_factory=list
    )


def _allocate(
    world: ChaosWorld,
    checker: InvariantChecker,
    params: AllocateParams,
    label: str,
) -> dict[str, Any] | None:
    """One guarded allocate; denials are typed degradation, not failure."""
    result = checker.guard(
        label, lambda: world.service.allocate_batch([params])[0]
    )
    if result is None:
        return None
    if isinstance(result, ProtocolError):
        checker.stats["typed_errors"] += 1
        checker.error_codes[str(result.code.value)] += 1
        return None
    return result


def drive(
    world: ChaosWorld,
    checker: InvariantChecker,
    *,
    steps: int,
    step_s: float = 30.0,
    n: int = 4,
    ppn: int = 2,
    hold_steps: int = 2,
    check_quality: bool = False,
    quality_bound: float = DEFAULT_QUALITY_BOUND,
) -> DriveStats:
    """Allocate every step, release ``hold_steps`` later, check always."""
    stats = DriveStats()
    request = AllocationRequest(
        n_processes=n, ppn=ppn, tradeoff=TradeOff.from_alpha(0.3)
    )
    oracle_policy = PAPER_POLICIES["network_load_aware"]()
    for step in range(steps):
        world.scenario.advance(step_s)
        params = AllocateParams(
            n_processes=n, ppn=ppn, alpha=0.3, ttl_s=_LEASE_TTL_S
        )
        result = _allocate(world, checker, params, f"allocate@step{step}")
        if result is not None:
            stats.grants += 1
            nodes = tuple(result["nodes"])
            stats.outstanding.append(result["lease_id"])
            stats.granted_nodes.append((world.now, nodes))
            if check_quality:
                held = world.service.leases.held_nodes() - set(nodes)
                oracle = checker.guard(
                    f"oracle@step{step}",
                    lambda: oracle_policy.allocate(
                        world.truth(), request, exclude=held or None
                    ),
                )
                if oracle is not None:
                    # Compose the fault scenario's bound with the
                    # world's calibration: whichever is looser wins.
                    checker.check_quality(
                        chosen=nodes,
                        oracle=oracle.nodes,
                        truth=world.truth(),
                        request=request,
                        bound=max(quality_bound, world.quality_bound),
                        label=f"step{step}",
                    )
        else:
            stats.denials += 1
        if len(stats.outstanding) > hold_steps:
            lease_id = stats.outstanding.popleft()
            released = checker.guard(
                f"release@step{step}",
                lambda: world.service.release(
                    _release_params(lease_id)
                ),
            )
            if released is not None:
                stats.releases += 1
        checker.check_no_double_grant(world.service.leases)
        checker.check_lease_accounting(
            world.service.leases, len(stats.outstanding)
        )
    return stats


def _release_params(lease_id: str):
    from repro.broker.protocol import ReleaseParams

    return ReleaseParams(lease_id=lease_id)


def finish(
    world: ChaosWorld, checker: InvariantChecker, stats: DriveStats
) -> None:
    """Drain outstanding leases and re-check the table is clean."""
    while stats.outstanding:
        lease_id = stats.outstanding.popleft()
        if (
            checker.guard(
                "final_release",
                lambda: world.service.release(_release_params(lease_id)),
            )
            is not None
        ):
            stats.releases += 1
    checker.check_no_double_grant(world.service.leases)
    checker.check_lease_accounting(world.service.leases, 0)


def _require_liveness(
    checker: InvariantChecker, stats: DriveStats, minimum: int
) -> None:
    if stats.grants < minimum:
        checker.violate(
            "liveness",
            f"only {stats.grants} grant(s); expected at least {minimum}",
        )


# ----------------------------------------------------------------------
# reports & registry


@dataclass
class ChaosReport:
    """The outcome of one scenario run."""

    name: str
    seed: int
    checker: InvariantChecker
    stats: dict[str, Any]
    fault_log: list[str]

    @property
    def ok(self) -> bool:
        return self.checker.ok

    def summary(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            **self.checker.summary(),
            "drive": self.stats,
            "faults": self.fault_log,
        }


@dataclass(frozen=True)
class ChaosScenario:
    name: str
    description: str
    #: ``run(seed, world_scenario)`` — the second argument selects a
    #: registered world scenario (None = legacy uniform tree)
    run: Callable[[int, str | None], ChaosReport]
    #: included in the CI smoke trio
    smoke: bool = False


def _report(
    name: str,
    seed: int,
    world: ChaosWorld,
    checker: InvariantChecker,
    stats: DriveStats,
    **extra: Any,
) -> ChaosReport:
    return ChaosReport(
        name=name,
        seed=seed,
        checker=checker,
        stats={
            "grants": stats.grants,
            "denials": stats.denials,
            "releases": stats.releases,
            "store": {
                "corrupt_served": world.store.corrupt_served,
                "missing_served": world.store.missing_served,
                "writes_frozen": world.store.writes_frozen,
                "values_poisoned": world.store.values_poisoned,
                "times_skewed": world.store.times_skewed,
            },
            "snapshot_fallbacks": world.source.fallbacks,
            **extra,
        },
        fault_log=world.injector.plan.describe(),
    )


# ----------------------------------------------------------------------
# scenarios


def scenario_baseline_no_faults(seed: int, scenario: str | None = None) -> ChaosReport:
    """Sanity floor: no faults, every invariant, quality ratio ≈ 1."""
    world = build_world(seed, scenario=scenario)
    checker = InvariantChecker("baseline_no_faults")
    stats = drive(world, checker, steps=10, check_quality=True)
    finish(world, checker, stats)
    _require_liveness(checker, stats, 8)
    if checker.stats["typed_errors"] > stats.denials:
        checker.violate(
            "liveness", "typed errors occurred in a fault-free run"
        )
    return _report("baseline_no_faults", seed, world, checker, stats)


def scenario_daemon_crash_storm(seed: int, scenario: str | None = None) -> ChaosReport:
    """A third of the NodeStateDs plus LivehostsD and LatencyD crash.

    The Central Monitor pair must restart them; allocations must keep
    flowing off stale-but-present records in the meantime.
    """
    world = build_world(seed, scenario=scenario)
    checker = InvariantChecker("daemon_crash_storm")
    mon = world.scenario.monitoring
    assert mon is not None
    t0 = world.now
    victims = world.injector.pick_nodes(3)
    for i, node in enumerate(victims):
        world.injector.crash_daemon(
            mon.nodestate[node], t0 + 30.0 + 10.0 * i, f"nodestate/{node}"
        )
    world.injector.crash_daemon(mon.livehosts[0], t0 + 45.0, "livehostsd/0")
    world.injector.crash_daemon(mon.latencyd, t0 + 60.0, "latencyd")
    stats = drive(world, checker, steps=12, check_quality=True)
    finish(world, checker, stats)
    _require_liveness(checker, stats, 10)
    if not any(
        d.alive for d in (mon.latencyd, *mon.livehosts)
    ):  # pragma: no cover — supervision failure
        checker.violate("recovery", "central monitor never restarted daemons")
    return _report("daemon_crash_storm", seed, world, checker, stats)


def scenario_stale_monitor(seed: int, scenario: str | None = None) -> ChaosReport:
    """Staleness storm: node-state writes freeze for five minutes.

    Records stay present but stop refreshing — the classic stale-NFS
    failure.  Allocations continue on stale data with bounded quality.
    """
    world = build_world(seed, scenario=scenario)
    checker = InvariantChecker("stale_monitor")
    world.injector.freeze_keys(
        "nodestate/*", world.now + 60.0, duration_s=300.0
    )
    stats = drive(world, checker, steps=14, check_quality=True)
    finish(world, checker, stats)
    _require_liveness(checker, stats, 12)
    if world.store.writes_frozen == 0:
        checker.violate("fault_fired", "freeze rule never intercepted a write")
    return _report("stale_monitor", seed, world, checker, stats)


def scenario_corrupt_store(seed: int, scenario: str | None = None) -> ChaosReport:
    """Torn JSON on two nodes' records plus all latency records.

    Snapshot assembly must skip-and-log the damaged keys; the damaged
    nodes must not be chosen while their records are unreadable.
    """
    world = build_world(seed, scenario=scenario)
    checker = InvariantChecker("corrupt_store")
    victims = world.injector.pick_nodes(2)
    t0 = world.now
    for node in victims:
        world.injector.corrupt_keys(
            f"nodestate/{node}", t0 + 60.0, duration_s=240.0
        )
    world.injector.corrupt_keys("latency/*", t0 + 90.0, duration_s=120.0)
    # This scenario blinds the allocator hardest (two nodes' records AND
    # all latencies gone), so the quality leash is one notch looser.
    stats = drive(
        world, checker, steps=14, check_quality=True, quality_bound=4.0
    )
    finish(world, checker, stats)
    _require_liveness(checker, stats, 12)
    if world.store.corrupt_served == 0:
        checker.violate("fault_fired", "corrupt rule never served a read")
    window = (t0 + 70.0, t0 + 290.0)
    for at, nodes in stats.granted_nodes:
        if window[0] <= at <= window[1]:
            chosen_victims = set(nodes) & set(victims)
            if chosen_victims:
                checker.violate(
                    "degraded_exclusion",
                    f"grant at t={at:.0f}s used corrupt-record node(s) "
                    f"{sorted(chosen_victims)}",
                )
    return _report("corrupt_store", seed, world, checker, stats)


def scenario_poisoned_records(seed: int, scenario: str | None = None) -> ChaosReport:
    """Silent data corruption: NaN and negative values in node records.

    Snapshot validation must reject the records (never letting NaN reach
    Eq. 1–4) and the poisoned nodes must drop out of placement.
    """
    world = build_world(seed, scenario=scenario)
    checker = InvariantChecker("poisoned_records")
    nan_node, neg_node = world.injector.pick_nodes(2)
    t0 = world.now
    world.injector.poison_keys(
        f"nodestate/{nan_node}", poison_nan, t0 + 60.0, duration_s=240.0
    )
    world.injector.poison_keys(
        f"nodestate/{neg_node}", poison_negative, t0 + 60.0, duration_s=240.0
    )
    stats = drive(world, checker, steps=14, check_quality=True)
    finish(world, checker, stats)
    _require_liveness(checker, stats, 12)
    if world.store.values_poisoned == 0:
        checker.violate("fault_fired", "poison rule never mutated a read")
    window = (t0 + 70.0, t0 + 290.0)
    for at, nodes in stats.granted_nodes:
        if window[0] <= at <= window[1]:
            bad = set(nodes) & {nan_node, neg_node}
            if bad:
                checker.violate(
                    "degraded_exclusion",
                    f"grant at t={at:.0f}s placed on poisoned node(s) "
                    f"{sorted(bad)}",
                )
    return _report("poisoned_records", seed, world, checker, stats)


def scenario_livehosts_blackout(seed: int, scenario: str | None = None) -> ChaosReport:
    """The livehosts record turns to garbage for four minutes.

    Snapshot assembly falls back to the static member list; allocations
    keep flowing (optimistically assuming nodes up beats refusing all).
    """
    world = build_world(seed, scenario=scenario)
    checker = InvariantChecker("livehosts_blackout")
    world.injector.corrupt_keys("livehosts", world.now + 60.0, duration_s=240.0)
    stats = drive(world, checker, steps=12, check_quality=True)
    finish(world, checker, stats)
    _require_liveness(checker, stats, 10)
    if world.store.corrupt_served == 0:
        checker.violate("fault_fired", "livehosts corruption never read")
    return _report("livehosts_blackout", seed, world, checker, stats)


def scenario_node_flapping(seed: int, scenario: str | None = None) -> ChaosReport:
    """One host bounces up/down; quarantine must stop placements on it."""
    world = build_world(seed, scenario=scenario, with_quarantine=True)
    checker = InvariantChecker("node_flapping")
    flapper = world.scenario.cluster.names[-1]
    t0 = world.now
    world.injector.flap_node(
        flapper, t0 + 30.0, down_s=50.0, up_s=70.0, cycles=4
    )
    stats = drive(world, checker, steps=24, check_quality=False)
    finish(world, checker, stats)
    _require_liveness(checker, stats, 18)
    quarantine = world.quarantine
    assert quarantine is not None
    if quarantine.quarantines == 0:
        checker.violate(
            "quarantine", f"{flapper} flapped 4× but never tripped quarantine"
        )
    else:
        # The third down-phase starts at t0+270 and is observed within a
        # couple of monitor/allocate cycles; by t0+450 the quarantine is
        # certainly armed, and its 900 s cooldown outlasts the run — so
        # no grant after that point may touch the flapper, even when the
        # node happens to be up.
        for at, nodes in stats.granted_nodes:
            if at > t0 + 450.0 and flapper in nodes:
                checker.violate(
                    "quarantine",
                    f"grant at t={at:.0f}s placed on quarantined flapper "
                    f"{flapper!r}",
                )
    return _report(
        "node_flapping",
        seed,
        world,
        checker,
        stats,
        quarantine=quarantine.stats() if quarantine else None,
    )


def scenario_snapshot_outage(seed: int, scenario: str | None = None) -> ChaosReport:
    """Every store key unreadable: LKG fallback, then typed denial, then
    recovery — the full degradation ladder in one run."""
    world = build_world(seed, scenario=scenario, lkg_max_age_s=120.0)
    checker = InvariantChecker("snapshot_outage")
    t0 = world.now
    world.injector.corrupt_keys("*", t0 + 150.0, duration_s=300.0)
    stats = drive(world, checker, steps=20, check_quality=False)
    finish(world, checker, stats)
    if world.source.fallbacks == 0:
        checker.violate(
            "degradation_ladder", "LKG fallback never engaged during outage"
        )
    if checker.error_codes.get("MONITOR_STALE", 0) == 0:
        checker.violate(
            "degradation_ladder",
            "no MONITOR_STALE denial after the LKG window expired",
        )
    granted_after_heal = [
        at for at, _ in stats.granted_nodes if at > t0 + 460.0
    ]
    if not granted_after_heal:
        checker.violate("recovery", "no grants after the store healed")
    _require_liveness(checker, stats, 6)
    return _report("snapshot_outage", seed, world, checker, stats)


def scenario_flaky_transport(seed: int, scenario: str | None = None) -> ChaosReport:
    """Connections die before and after the server processes requests.

    The client must retry safely: the post-processing death is the
    double-grant trap, closed by the idempotency token.
    """
    world = build_world(seed, scenario=scenario)
    checker = InvariantChecker("flaky_transport")
    factory = ScriptedSocketFactory(
        world.service,
        [DIE_AFTER_SEND, OK, DIE_BEFORE_SEND, OK, CLOSE, OK, OK, OK],
    )
    client = BrokerClient(
        socket_factory=factory,
        transport_retries=1,
        backoff_s=0.0,
        connect_retries=2,
        retry_delay_s=0.0,
        rng=random.Random(seed),
        sleep=lambda _s: None,
    )
    world.scenario.advance(30.0)
    metrics = world.service.metrics

    # 1. response lost AFTER the server granted → retry must dedupe
    grant1 = checker.guard("allocate#1", lambda: client.allocate(6, ppn=2))
    if grant1 is None:
        checker.violate("retry", "allocate#1 failed despite one retry")
    if metrics.allocates_deduped != 1:
        checker.violate(
            "idempotency",
            f"expected exactly 1 deduped allocate, saw "
            f"{metrics.allocates_deduped}",
        )
    checker.check_lease_accounting(world.service.leases, 1)
    checker.check_no_double_grant(world.service.leases)

    # 2. connection dies BEFORE the request is sent → plain retry
    grant2 = checker.guard("allocate#2", lambda: client.allocate(4, ppn=2))
    if grant2 is None:
        checker.violate("retry", "allocate#2 failed despite one retry")
    checker.check_lease_accounting(world.service.leases, 2)
    checker.check_no_double_grant(world.service.leases)

    # 3. orderly close with no response → status (read-only) retries
    status = checker.guard("status", client.status)
    if status is None:
        checker.violate("retry", "status failed despite one retry")

    for grant in (grant1, grant2):
        if grant is not None:
            checker.guard(
                "release", lambda g=grant: client.release(g.lease_id)
            )
    checker.check_lease_accounting(world.service.leases, 0)
    client.close()
    stats = DriveStats(
        grants=metrics.granted,
        denials=metrics.denied,
        releases=metrics.released,
    )
    return _report(
        "flaky_transport",
        seed,
        world,
        checker,
        stats,
        client_retries=client.retries_used,
        connections=factory.connections,
        dispatched=factory.dispatched,
    )


def scenario_mid_migration_death(seed: int, scenario: str | None = None) -> ChaosReport:
    """The migration callback dies mid-reconfiguration.

    The two-phase executor must roll back: the job keeps its original
    nodes, the reservation is freed (a follow-up allocate can take those
    nodes), and the retry with a working callback commits cleanly.
    """
    calls = {"n": 0}

    def flaky_migrate(plan: Any) -> None:
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("chaos: checkpoint transfer died")

    world = build_world(seed, scenario=scenario, migrate_hook=flaky_migrate)
    checker = InvariantChecker("mid_migration_death")
    world.scenario.advance(30.0)
    params = AllocateParams(n_processes=4, ppn=2, ttl_s=_LEASE_TTL_S)
    grant = _allocate(world, checker, params, "allocate")
    if grant is None:
        checker.violate("setup", "initial allocate failed")
        return _report(
            "mid_migration_death", seed, world, checker, DriveStats()
        )
    lease_id = grant["lease_id"]
    old_nodes = tuple(grant["nodes"])
    old_procs = {str(k): int(v) for k, v in grant["procs"].items()}

    # Hand-build a migration plan onto disjoint nodes: deterministic,
    # independent of whether the planner would currently bother.
    free = [
        n
        for n in world.scenario.cluster.names
        if n not in world.service.leases.held_nodes()
    ]
    new_nodes = tuple(free[: len(old_nodes)])
    request = AllocationRequest(
        n_processes=4, ppn=2, tradeoff=TradeOff.from_alpha(0.3)
    )
    plan = ReconfigPlan(
        lease_id=lease_id,
        kind=plan_kind(old_nodes, new_nodes),
        old_nodes=old_nodes,
        new_nodes=new_nodes,
        old_procs=old_procs,
        procs={n: 2 for n in new_nodes},
        current_total=1.0,
        proposed_total=0.7,
        predicted_gain=0.3,
        request=request,
        snapshot_time=world.now,
    )
    executor = world.service._executor

    # Attempt 1: migrate dies → RECONFIG_FAILED, rollback, lease intact.
    try:
        executor.apply(plan, migrate=world.service.migrate_hook)
        checker.violate("rollback", "failed migration reported success")
    except ReconfigError as exc:
        if exc.code != "RECONFIG_FAILED":
            checker.violate(
                "rollback", f"expected RECONFIG_FAILED, got {exc.code}"
            )
        checker.stats["typed_errors"] += 1
        checker.error_codes[exc.code] += 1
    except Exception as exc:  # noqa: BLE001 — the invariant under test is "typed errors only"; any other type IS the violation being recorded
        checker.violate(
            "no_unhandled_exception", f"{type(exc).__name__}: {exc}"
        )
    lease = world.service.leases.get(lease_id)
    if lease is None or set(lease.nodes) != set(old_nodes):
        checker.violate(
            "rollback",
            f"lease nodes changed after failed migration: "
            f"{None if lease is None else sorted(lease.nodes)}",
        )
    checker.check_lease_accounting(world.service.leases, 1)
    checker.check_no_double_grant(world.service.leases)
    if executor.rollbacks != 1:
        checker.violate(
            "rollback", f"executor rollbacks={executor.rollbacks}, expected 1"
        )

    # The reservation must be gone: the target nodes are allocatable.
    probe = checker.guard(
        "reservation_freed",
        lambda: world.service.leases.grant(
            new_nodes, {n: 1 for n in new_nodes}, ttl_s=60.0, policy="probe"
        ),
    )
    if probe is None:
        checker.violate(
            "rollback",
            f"reservation leaked: {sorted(new_nodes)} not allocatable "
            "after rollback",
        )
    else:
        world.service.leases.release(probe.lease_id)

    # Attempt 2: migrate succeeds → committed swap onto the new nodes.
    try:
        swapped = executor.apply(plan, migrate=world.service.migrate_hook)
        if set(swapped.nodes) != set(new_nodes):
            checker.violate(
                "commit",
                f"post-swap nodes {sorted(swapped.nodes)} != plan "
                f"{sorted(new_nodes)}",
            )
    except Exception as exc:  # noqa: BLE001 — any failure here, typed or not, is a commit-path violation; the scenario must keep driving to check accounting
        checker.violate(
            "commit", f"retried migration failed: {type(exc).__name__}: {exc}"
        )
    checker.check_lease_accounting(world.service.leases, 1)
    checker.check_no_double_grant(world.service.leases)
    checker.guard(
        "final_release",
        lambda: world.service.release(_release_params(lease_id)),
    )
    checker.check_lease_accounting(world.service.leases, 0)
    stats = DriveStats(grants=1, releases=1)
    return _report(
        "mid_migration_death",
        seed,
        world,
        checker,
        stats,
        migrate_calls=calls["n"],
        executor={
            "attempts": executor.attempts,
            "commits": executor.commits,
            "rollbacks": executor.rollbacks,
        },
    )


def scenario_fleet_pass_partial_failure(seed: int, scenario: str | None = None) -> ChaosReport:
    """A migration dies midway through a multi-action fleet pass.

    The fleet executor orders the batch but applies each action through
    its own two-phase transaction, so a mid-pass death must be *local*:
    the killed action rolls back completely (lease unchanged, target
    reservation freed), every other action in the pass commits, and the
    pass reports the split honestly instead of raising.
    """
    calls = {"n": 0}

    def flaky_migrate(plan: Any) -> None:
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("chaos: checkpoint transfer died mid-pass")

    world = build_world(seed, scenario=scenario, migrate_hook=flaky_migrate)
    checker = InvariantChecker("fleet_pass_partial_failure")
    world.scenario.advance(30.0)

    grants = []
    for i in range(2):
        params = AllocateParams(n_processes=4, ppn=2, ttl_s=_LEASE_TTL_S)
        grant = _allocate(world, checker, params, f"allocate#{i}")
        if grant is None:
            checker.violate("setup", f"initial allocate #{i} failed")
            return _report(
                "fleet_pass_partial_failure", seed, world, checker,
                DriveStats(),
            )
        grants.append(grant)

    # Hand-build one migration plan per lease onto disjoint free nodes:
    # deterministic, independent of what the planner would propose.
    free = [
        n
        for n in world.scenario.cluster.names
        if n not in world.service.leases.held_nodes()
    ]
    request = AllocationRequest(
        n_processes=4, ppn=2, tradeoff=TradeOff.from_alpha(0.3)
    )
    plans = []
    for i, grant in enumerate(grants):
        old_nodes = tuple(grant["nodes"])
        new_nodes = tuple(free[2 * i : 2 * i + 2])
        plans.append(
            ReconfigPlan(
                lease_id=grant["lease_id"],
                kind=plan_kind(old_nodes, new_nodes),
                old_nodes=old_nodes,
                new_nodes=new_nodes,
                old_procs={str(k): int(v) for k, v in grant["procs"].items()},
                procs={n: 2 for n in new_nodes},
                current_total=1.0,
                proposed_total=0.7,
                predicted_gain=0.3,
                request=request,
                snapshot_time=world.now,
            )
        )

    fleet = FleetExecutor(world.service._executor)
    report = checker.guard(
        "fleet_pass",
        lambda: fleet.apply_pass(
            order_plans(plans), migrate=world.service.migrate_hook
        ),
    )
    if report is None:
        checker.violate("atomicity", "fleet pass raised instead of reporting")
        return _report(
            "fleet_pass_partial_failure", seed, world, checker, DriveStats()
        )
    if report.applied != 1 or report.failed != 1:
        checker.violate(
            "atomicity",
            f"expected 1 applied + 1 failed, got applied={report.applied} "
            f"failed={report.failed}",
        )
    by_lease = {r.lease_id: r for r in report.results}
    for plan in plans:
        result = by_lease.get(plan.lease_id)
        lease = world.service.leases.get(plan.lease_id)
        if result is None or lease is None:
            checker.violate(
                "atomicity", f"lease {plan.lease_id} missing from pass/table"
            )
            continue
        if result.outcome == "committed":
            # committed action: fully on the new nodes
            if set(lease.nodes) != set(plan.new_nodes):
                checker.violate(
                    "atomicity",
                    f"applied action left lease on {sorted(lease.nodes)}, "
                    f"expected {sorted(plan.new_nodes)}",
                )
        else:
            # failed action: fully rolled back to the old nodes, and the
            # target reservation must not leak
            if set(lease.nodes) != set(plan.old_nodes):
                checker.violate(
                    "atomicity",
                    f"failed action left lease on {sorted(lease.nodes)}, "
                    f"expected rollback to {sorted(plan.old_nodes)}",
                )
            probe = checker.guard(
                "reservation_freed",
                lambda p=plan: world.service.leases.grant(
                    p.new_nodes,
                    {n: 1 for n in p.new_nodes},
                    ttl_s=60.0,
                    policy="probe",
                ),
            )
            if probe is None:
                checker.violate(
                    "rollback",
                    f"reservation leaked: {sorted(plan.new_nodes)} not "
                    "allocatable after mid-pass rollback",
                )
            else:
                world.service.leases.release(probe.lease_id)
    checker.check_lease_accounting(world.service.leases, 2)
    checker.check_no_double_grant(world.service.leases)

    for grant in grants:
        checker.guard(
            "final_release",
            lambda g=grant: world.service.release(
                _release_params(g["lease_id"])
            ),
        )
    checker.check_lease_accounting(world.service.leases, 0)
    stats = DriveStats(grants=2, releases=2)
    return _report(
        "fleet_pass_partial_failure",
        seed,
        world,
        checker,
        stats,
        migrate_calls=calls["n"],
        fleet={
            "passes": fleet.passes,
            "applied": fleet.actions_applied,
            "failed": fleet.actions_failed,
        },
    )


def scenario_shard_death_cross_reserve(seed: int, scenario: str | None = None) -> ChaosReport:
    """A shard dies between cross-shard reserve and commit.

    The federation router must roll the transaction back: surviving
    shards keep **zero** reservation leases, the caller sees a typed
    ``SHARD_DOWN`` denial (never a hang or a raw exception), and after
    the shard is re-admitted the same request commits across both
    subtrees.
    """
    world = build_world(seed, scenario=scenario)
    checker = InvariantChecker("shard_death_cross_reserve")
    world.scenario.advance(30.0)

    # 8 nodes / 4 per switch → two switch subtrees → two shards.
    partition = subtree_partition(snapshot_switches(world.source()), 2)
    killed: list[str] = []

    def die_at_commit(sid: str) -> None:
        # First commit call: the *other* shard's process dies, so the
        # in-flight transaction loses a member it already reserved.
        if not killed:
            victim = next(s for s in router.shard_ids if s != sid)
            router.kill(victim)
            killed.append(victim)

    router = build_federation(
        world.source,
        partition,
        clock=lambda: world.now,
        commit_hook=die_at_commit,
        default_ttl_s=_LEASE_TTL_S,
    )

    def fed_allocate(
        params: AllocateParams, label: str
    ) -> dict[str, Any] | None:
        result = checker.guard(
            label, lambda: router.allocate_batch([params])[0]
        )
        if result is None:
            return None
        if isinstance(result, ProtocolError):
            checker.stats["typed_errors"] += 1
            checker.error_codes[str(result.code.value)] += 1
            return None
        return result

    def cross_shard_n() -> int:
        """A process count no single shard can host but the fleet can.

        Sized from the router's own aggregates (the ``shards`` verb):
        bigger than the freest shard, comfortably under the fleet
        total, whatever load the warmup left behind.
        """
        frees = sorted(
            row["free_procs"] for row in router.shards()["shards"]
        )
        return frees[-1] + max(2, frees[0] // 4)

    stats = DriveStats()

    # Warm-up traffic: single-shard grants routed by the aggregates.
    for step in range(3):
        world.scenario.advance(30.0)
        small = AllocateParams(n_processes=4, ppn=2, ttl_s=_LEASE_TTL_S)
        result = fed_allocate(small, f"allocate@step{step}")
        if result is not None:
            stats.grants += 1
            stats.outstanding.append(result["lease_id"])
    while stats.outstanding:
        lease_id = stats.outstanding.popleft()
        released = checker.guard(
            "warmup_release",
            lambda: router.release(_release_params(lease_id)),
        )
        if released is not None:
            stats.releases += 1

    # The doomed transaction: more processes than either 4-node subtree
    # holds, so the router must reserve on both shards.
    big = AllocateParams(
        n_processes=cross_shard_n(),
        ttl_s=_LEASE_TTL_S,
        token="chaos-fed-1",
    )
    result = fed_allocate(big, "cross_shard_doomed")
    if result is not None:
        checker.violate(
            "rollback", "cross-shard grant succeeded despite shard death"
        )
        stats.grants += 1
    if not killed:
        checker.violate("fault_fired", "commit hook never killed a shard")
    if checker.error_codes["SHARD_DOWN"] != 1:
        checker.violate(
            "typed_errors",
            "expected exactly one SHARD_DOWN denial, saw "
            f"{dict(checker.error_codes)}",
        )
    if router.cross_shard_rollbacks != 1:
        checker.violate(
            "rollback",
            f"cross_shard_rollbacks={router.cross_shard_rollbacks}, "
            "expected 1",
        )
    # Zero leaked leases anywhere: the survivor's reservation was
    # rolled back and the dead shard's table died with its process.
    for sid in router.shard_ids:
        svc = router.shard(sid).service
        checker.check_lease_accounting(svc.leases, 0)
        checker.check_no_double_grant(svc.leases)

    # Recovery: re-admit the shard; the retried transaction commits.
    router.commit_hook = None
    for sid in killed:
        router.revive(sid)
    world.scenario.advance(30.0)
    retry_n = cross_shard_n()
    retry = AllocateParams(
        n_processes=retry_n, ttl_s=_LEASE_TTL_S, token="chaos-fed-2"
    )
    grant = fed_allocate(retry, "cross_shard_retry")
    if grant is None:
        checker.violate("liveness", "cross-shard retry denied after revive")
    else:
        stats.grants += 1
        if len(grant["shards"]) < 2:
            checker.violate(
                "cross_shard",
                f"grant spans {len(grant['shards'])} shard(s), expected ≥2",
            )
        total_procs = sum(int(v) for v in grant["procs"].values())
        if total_procs != retry_n:
            checker.violate(
                "cross_shard",
                f"granted {total_procs} procs, wanted {retry_n}",
            )
        released = checker.guard(
            "fed_release",
            lambda: router.release(_release_params(grant["lease_id"])),
        )
        if released is not None:
            stats.releases += 1
    router.sweep_expired()
    for sid in router.shard_ids:
        svc = router.shard(sid).service
        checker.check_lease_accounting(svc.leases, 0)
        checker.check_no_double_grant(svc.leases)
    _require_liveness(checker, stats, 3)
    return _report(
        "shard_death_cross_reserve",
        seed,
        world,
        checker,
        stats,
        federation={
            "partition": {
                sid: len(router.partition[sid]) for sid in router.shard_ids
            },
            "killed": killed,
            "forwards": router.forwards,
            "spills": router.spills,
            "cross_shard_attempts": router.cross_shard_attempts,
            "cross_shard_grants": router.cross_shard_grants,
            "cross_shard_rollbacks": router.cross_shard_rollbacks,
            "shard_down_errors": router.shard_down_errors,
        },
    )


def scenario_clock_skew(seed: int, scenario: str | None = None) -> ChaosReport:
    """Monitor record timestamps jump 15 minutes forward, then backward.

    Staleness arithmetic must survive negative and huge ages without a
    crash; allocations continue throughout.
    """
    world = build_world(seed, scenario=scenario)
    checker = InvariantChecker("clock_skew")
    t0 = world.now
    world.injector.skew_keys("nodestate/*", +900.0, t0 + 60.0, duration_s=150.0)
    world.injector.skew_keys("nodestate/*", -900.0, t0 + 240.0, duration_s=150.0)
    stats = drive(world, checker, steps=14, check_quality=True)
    finish(world, checker, stats)
    _require_liveness(checker, stats, 12)
    if world.store.times_skewed == 0:
        checker.violate("fault_fired", "skew rule never touched a read")
    return _report("clock_skew", seed, world, checker, stats)


# ----------------------------------------------------------------------
# interleaving sanitizer scenarios (repro/chaos/interleave.py): the
# dynamic counterpart of the static RACE pass — the same atomicity
# claims, exercised under seed-driven adversarial task schedules


def _wire_request(req_id: str, op: str, params: dict[str, Any]) -> bytes:
    return json.dumps(
        {"v": 1, "id": req_id, "op": op, "params": params}
    ).encode() + b"\n"


def scenario_interleave_pipelined_burst(
    seed: int, scenario: str | None = None
) -> ChaosReport:
    """A pipelined allocate burst under seeded task reordering.

    A real :class:`BrokerServer` serves a burst of pipelined allocates
    over loopback TCP while the fuzzer loop shuffles every ready-queue
    drain.  Whatever schedule the seed produces: every request must be
    answered exactly once, no node may be double-granted, and the lease
    table must account for exactly the grants that were answered.
    """
    world = build_world(seed, scenario=scenario)
    checker = InvariantChecker("interleave_pipelined_burst")
    n_requests = 12

    async def burst() -> tuple[dict[str, Any], int]:
        server = BrokerServer(world.service, batch_window_s=0.0, max_batch=8)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(_wire_request(
            "hello", "hello",
            {"codec": "json", "pipeline": True, "max_inflight": n_requests},
        ))
        await writer.drain()
        await reader.readline()
        for i in range(n_requests):
            writer.write(_wire_request(
                f"r{i}", "allocate",
                {"n": 2, "ppn": 2, "alpha": 0.3, "ttl_s": _LEASE_TTL_S},
            ))
        await writer.drain()
        responses: dict[str, Any] = {}
        for _ in range(n_requests):
            obj = json.loads(await reader.readline())
            responses[str(obj["id"])] = obj
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        await server.stop()
        loop = asyncio.get_running_loop()
        return responses, getattr(loop, "reorders", 0)

    outcome = checker.guard("burst", lambda: run_interleaved(burst, seed))
    responses: dict[str, Any] = {}
    reorders = 0
    if outcome is not None:
        responses, reorders = outcome
        expected = {f"r{i}" for i in range(n_requests)}
        if set(responses) != expected:
            checker.violate(
                "every_request_answered_once",
                f"ids answered: {sorted(responses)} != {sorted(expected)}",
            )
    grants = sum(1 for r in responses.values() if r.get("ok"))
    if outcome is not None and grants == 0:
        checker.violate("liveness", "burst produced zero grants")
    checker.check_no_double_grant(world.service.leases)
    checker.check_lease_accounting(world.service.leases, grants)
    return ChaosReport(
        name="interleave_pipelined_burst",
        seed=seed,
        checker=checker,
        stats={
            "grants": grants,
            "denials": len(responses) - grants,
            "reorders": reorders,
        },
        fault_log=[f"ready-queue shuffles: {reorders}"],
    )


def scenario_interleave_shutdown_drain(
    seed: int, scenario: str | None = None
) -> ChaosReport:
    """Two concurrent ``stop()`` calls race a live client connection.

    ``stop()`` swaps shared handles out before its first await exactly
    so this schedule is safe; under the fuzzer both stops must return,
    every background task spawned by ``start()`` must be reaped, and
    the task registry must end empty — the pre-fix ``clear()`` variant
    orphans a task here (see ``tests/chaos/test_interleave.py``).
    """
    world = build_world(seed, scenario=scenario)
    checker = InvariantChecker("interleave_shutdown_drain")

    async def drain() -> dict[str, Any]:
        server = BrokerServer(world.service)
        host, port = await server.start()
        spawned = list(server._tasks)

        async def client() -> str:
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(_wire_request(
                    "c0", "allocate",
                    {"n": 2, "ppn": 2, "alpha": 0.3, "ttl_s": _LEASE_TTL_S},
                ))
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                writer.close()
                return "answered" if line else "closed"
            except asyncio.TimeoutError:
                return "timeout"
            except (ConnectionError, OSError):
                return "refused"

        client_fate, stop_a, stop_b = await asyncio.gather(
            client(), server.stop(), server.stop(), return_exceptions=True
        )
        loop = asyncio.get_running_loop()
        return {
            "client": client_fate
            if isinstance(client_fate, str)
            else repr(client_fate),
            "stop_errors": [
                repr(r) for r in (stop_a, stop_b) if isinstance(r, BaseException)
            ],
            "orphans": sum(1 for t in spawned if not t.done()),
            "tasks_left": len(server._tasks),
            "reorders": getattr(loop, "reorders", 0),
        }

    out = checker.guard("drain", lambda: run_interleaved(drain, seed))
    if out is not None:
        if out["stop_errors"]:
            checker.violate(
                "idempotent_stop", f"stop() raised: {out['stop_errors']}"
            )
        if out["orphans"]:
            checker.violate(
                "no_orphaned_tasks",
                f"{out['orphans']} background task(s) never reaped by stop()",
            )
        if out["tasks_left"]:
            checker.violate(
                "task_registry_drained",
                f"{out['tasks_left']} task(s) left registered after stop()",
            )
    checker.check_no_double_grant(world.service.leases)
    return ChaosReport(
        name="interleave_shutdown_drain",
        seed=seed,
        checker=checker,
        stats=dict(out or {}, grants=0),
        fault_log=["concurrent stop()+stop()+client over fuzzer loop"],
    )


def scenario_interleave_atomic_sections(
    seed: int, scenario: str | None = None
) -> ChaosReport:
    """The sanitizer's own teeth, end to end.

    Four claims, each driven on a fuzzer loop: (1) the literal pre-fix
    decision-memo TOCTOU double-computes under interleaving (the fuzzer
    can actually reach the race); (2) the lock-guarded fix computes
    exactly once under the same seed; (3) ``@atomic_between_awaits``
    raises on a section that yields; (4) ``no_interleaving`` raises
    when two tasks overlap inside a marked section.
    """
    del scenario  # no world: this scenario exercises the sanitizer itself
    checker = InvariantChecker("interleave_atomic_sections")

    class Memo:
        """The decision-memo shape: check, await the compute, insert."""

        def __init__(self) -> None:
            self.data: dict[str, int] = {}
            self.computes = 0
            self.lock: asyncio.Lock | None = None

        async def get_racy(self, key: str) -> int:
            if key not in self.data:  # lint: allow(RACE002) — deliberate pre-fix TOCTOU; the scenario asserts the fuzzer reaches it
                await asyncio.sleep(0)
                self.computes += 1
                self.data[key] = self.computes
            return self.data[key]

        async def get_locked(self, key: str) -> int:
            if self.lock is None:
                self.lock = asyncio.Lock()
            async with self.lock:
                if key not in self.data:
                    await asyncio.sleep(0)
                    self.computes += 1
                    self.data[key] = self.computes
            return self.data[key]

    async def racy() -> int:
        memo = Memo()
        await asyncio.gather(*(memo.get_racy("k") for _ in range(4)))
        return memo.computes

    async def locked() -> int:
        memo = Memo()
        await asyncio.gather(*(memo.get_locked("k") for _ in range(4)))
        return memo.computes

    racy_computes = checker.guard("racy", lambda: run_interleaved(racy, seed))
    if racy_computes is not None and racy_computes <= 1:
        checker.violate(
            "fuzzer_reaches_race",
            f"pre-fix TOCTOU memo computed {racy_computes}× — the fuzzer "
            "failed to exercise the known race",
        )
    locked_computes = checker.guard(
        "locked", lambda: run_interleaved(locked, seed)
    )
    if locked_computes is not None and locked_computes != 1:
        checker.violate(
            "lock_fixes_race",
            f"lock-guarded memo computed {locked_computes}× (expected 1)",
        )

    @atomic_between_awaits
    async def yielding_section() -> None:
        await asyncio.sleep(0)  # declared atomic, but yields: must raise

    async def guard_trips() -> bool:
        try:
            await yielding_section()
        except AtomicViolation:
            return True
        return False

    tripped = checker.guard(
        "atomic_guard", lambda: run_interleaved(guard_trips, seed)
    )
    if tripped is not None and not tripped:
        checker.violate(
            "atomic_guard_trips",
            "@atomic_between_awaits let a yielding section pass",
        )

    monitor = object()

    async def overlap() -> int:
        async def section() -> None:
            async with no_interleaving(monitor, "memo-update"):
                await asyncio.sleep(0)

        results = await asyncio.gather(
            section(), section(), return_exceptions=True
        )
        return sum(isinstance(r, AtomicViolation) for r in results)

    caught = checker.guard(
        "no_interleaving", lambda: run_interleaved(overlap, seed)
    )
    if caught is not None and caught == 0:
        checker.violate(
            "overlap_detected",
            "no_interleaving let two tasks overlap inside a marked section",
        )
    return ChaosReport(
        name="interleave_atomic_sections",
        seed=seed,
        checker=checker,
        stats={
            "grants": 0,
            "racy_computes": racy_computes or 0,
            "locked_computes": locked_computes or 0,
            "guard_tripped": bool(tripped),
            "overlaps_caught": caught or 0,
        },
        fault_log=["seeded yield-point fuzzing of sanitizer primitives"],
    )


# ----------------------------------------------------------------------

SCENARIOS: dict[str, ChaosScenario] = {
    s.name: s
    for s in (
        ChaosScenario(
            "baseline_no_faults",
            "fault-free sanity floor for every invariant",
            scenario_baseline_no_faults,
            smoke=True,
        ),
        ChaosScenario(
            "daemon_crash_storm",
            "monitor daemons crash; supervision restarts them",
            scenario_daemon_crash_storm,
        ),
        ChaosScenario(
            "stale_monitor",
            "node-state writes freeze (staleness storm)",
            scenario_stale_monitor,
        ),
        ChaosScenario(
            "corrupt_store",
            "torn JSON in node and latency records",
            scenario_corrupt_store,
            smoke=True,
        ),
        ChaosScenario(
            "poisoned_records",
            "NaN/negative values injected into node records",
            scenario_poisoned_records,
        ),
        ChaosScenario(
            "livehosts_blackout",
            "livehosts record unreadable; fallback to member list",
            scenario_livehosts_blackout,
        ),
        ChaosScenario(
            "node_flapping",
            "a host bounces until quarantine excludes it",
            scenario_node_flapping,
        ),
        ChaosScenario(
            "snapshot_outage",
            "whole store dark: LKG → typed denial → recovery",
            scenario_snapshot_outage,
        ),
        ChaosScenario(
            "flaky_transport",
            "connections die around requests; idempotent retry",
            scenario_flaky_transport,
        ),
        ChaosScenario(
            "mid_migration_death",
            "migration callback dies; two-phase rollback",
            scenario_mid_migration_death,
            smoke=True,
        ),
        ChaosScenario(
            "fleet_pass_partial_failure",
            "migration dies mid fleet pass; per-action rollback",
            scenario_fleet_pass_partial_failure,
            smoke=True,
        ),
        ChaosScenario(
            "shard_death_cross_reserve",
            "shard dies mid cross-shard reserve; router rollback",
            scenario_shard_death_cross_reserve,
            smoke=True,
        ),
        ChaosScenario(
            "clock_skew",
            "record timestamps skew ±15 minutes",
            scenario_clock_skew,
        ),
        ChaosScenario(
            "interleave_pipelined_burst",
            "pipelined allocate burst under seeded task reordering",
            scenario_interleave_pipelined_burst,
            smoke=True,
        ),
        ChaosScenario(
            "interleave_shutdown_drain",
            "concurrent stop() calls race a live connection",
            scenario_interleave_shutdown_drain,
            smoke=True,
        ),
        ChaosScenario(
            "interleave_atomic_sections",
            "atomic-section guards tripped and vindicated by the fuzzer",
            scenario_interleave_atomic_sections,
            smoke=True,
        ),
    )
}

#: the fastest scenarios, run per-PR in CI
SMOKE_SCENARIOS: tuple[str, ...] = tuple(
    name for name, s in SCENARIOS.items() if s.smoke
)
