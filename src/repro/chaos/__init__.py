"""Deterministic chaos harness for the monitor → broker → elastic stack.

Seed-driven fault injection at every seam the stack exposes — the shared
store, the monitor daemons, the snapshot source, the broker transport,
and the two-phase migration executor — plus the invariants that define
graceful degradation and a registry of named end-to-end scenarios.

Entry points: ``python -m repro chaos`` (CLI), :func:`runner.main`
(programmatic), and :data:`scenarios.SCENARIOS` (the registry).
"""

from repro.chaos.faults import FaultEvent, FaultInjector, FaultPlan
from repro.chaos.invariants import (
    DEFAULT_QUALITY_BOUND,
    TYPED_ERRORS,
    InvariantChecker,
    Violation,
)
from repro.chaos.scenarios import (
    SCENARIOS,
    SMOKE_SCENARIOS,
    ChaosReport,
    ChaosScenario,
    ChaosWorld,
    build_world,
)
from repro.chaos.store import (
    ChaosRule,
    ChaoticStore,
    poison_huge,
    poison_nan,
    poison_negative,
)
from repro.chaos.transport import ScriptedSocketFactory, dispatch_line

__all__ = [
    "DEFAULT_QUALITY_BOUND",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "TYPED_ERRORS",
    "ChaosReport",
    "ChaosRule",
    "ChaosScenario",
    "ChaosWorld",
    "ChaoticStore",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "ScriptedSocketFactory",
    "Violation",
    "build_world",
    "dispatch_line",
    "poison_huge",
    "poison_nan",
    "poison_negative",
]
