"""FaultPlan / FaultInjector — seed-driven scheduling of every fault kind.

One object schedules faults across all three seams the stack exposes:

* **store** faults (corrupt / vanish / freeze / skew / poison) through a
  :class:`~repro.chaos.store.ChaoticStore`, armed and disarmed at exact
  simulation times;
* **daemon** faults (crash, pause) and **node** faults (outage, flap)
  through the existing :class:`~repro.monitor.failures.FailureInjector`;
* a :class:`FaultPlan` records everything injected, so a scenario report
  can print *what* chaos ran alongside *what* invariants held — and so a
  given ``(seed, plan)`` pair replays identically forever.

All timing uses the DES engine clock; nothing here reads wall time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.chaos.store import ChaoticStore, Mutator
from repro.experiments.scenario import Scenario
from repro.monitor.failures import FailureInjector


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, for the audit trail."""

    at: float
    kind: str
    target: str
    duration_s: float | None = None


@dataclass
class FaultPlan:
    """The audit trail of everything a scenario injected."""

    seed: int
    events: list[FaultEvent] = field(default_factory=list)

    def record(
        self,
        at: float,
        kind: str,
        target: str,
        duration_s: float | None = None,
    ) -> None:
        self.events.append(FaultEvent(at, kind, target, duration_s))

    def describe(self) -> list[str]:
        return [
            f"t={e.at:.0f}s {e.kind}({e.target})"
            + (f" for {e.duration_s:.0f}s" if e.duration_s is not None else "")
            for e in self.events
        ]


class FaultInjector:
    """Schedules faults against one scenario, deterministically.

    ``seed`` drives only *which* targets random helpers pick
    (:meth:`pick_nodes`); *when* faults fire is always explicit, so a
    scenario is reproducible from its seed alone.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        store: ChaoticStore | None = None,
        seed: int = 0,
    ) -> None:
        self.scenario = scenario
        self.store = store
        self.rng = random.Random(seed)
        self.plan = FaultPlan(seed)
        self.daemons = FailureInjector(scenario.engine, scenario.cluster)

    # -- helpers --------------------------------------------------------
    def pick_nodes(self, k: int) -> list[str]:
        """``k`` distinct node names, chosen by this injector's seed."""
        names = list(self.scenario.cluster.names)
        if k > len(names):
            raise ValueError(f"cannot pick {k} of {len(names)} nodes")
        return self.rng.sample(names, k)

    def _require_store(self) -> ChaoticStore:
        if self.store is None:
            raise RuntimeError(
                "this injector was built without a ChaoticStore; "
                "store faults are unavailable"
            )
        return self.store

    def _arm(
        self,
        kind: str,
        pattern: str,
        at: float,
        duration_s: float | None,
        arm,
    ) -> None:
        """Schedule ``arm()`` at ``at`` and auto-heal after ``duration_s``."""
        store = self._require_store()
        engine = self.scenario.engine

        def start() -> None:
            rule = arm()
            if duration_s is not None:
                engine.schedule_at(
                    engine.now + duration_s, lambda: store.remove(rule)
                )

        engine.schedule_at(at, start)
        self.plan.record(at, kind, pattern, duration_s)

    # -- store faults ---------------------------------------------------
    def corrupt_keys(
        self, pattern: str, at: float, duration_s: float | None = None
    ) -> None:
        store = self._require_store()
        self._arm(
            "corrupt", pattern, at, duration_s, lambda: store.corrupt(pattern)
        )

    def vanish_keys(
        self, pattern: str, at: float, duration_s: float | None = None
    ) -> None:
        store = self._require_store()
        self._arm(
            "vanish", pattern, at, duration_s, lambda: store.vanish(pattern)
        )

    def freeze_keys(
        self, pattern: str, at: float, duration_s: float | None = None
    ) -> None:
        store = self._require_store()
        self._arm(
            "freeze", pattern, at, duration_s, lambda: store.freeze(pattern)
        )

    def skew_keys(
        self,
        pattern: str,
        skew_s: float,
        at: float,
        duration_s: float | None = None,
    ) -> None:
        store = self._require_store()
        self._arm(
            f"skew{skew_s:+.0f}s",
            pattern,
            at,
            duration_s,
            lambda: store.skew(pattern, skew_s),
        )

    def poison_keys(
        self,
        pattern: str,
        mutate: Mutator,
        at: float,
        duration_s: float | None = None,
    ) -> None:
        store = self._require_store()
        name = getattr(mutate, "__name__", "mutator")
        self._arm(
            f"poison:{name}",
            pattern,
            at,
            duration_s,
            lambda: store.poison(pattern, mutate),
        )

    # -- daemon faults --------------------------------------------------
    def crash_daemon(self, target, at: float, label: str = "") -> None:
        self.daemons.crash(target, at, label)
        self.plan.record(at, "crash", label or repr(target))

    def pause_daemon(
        self, target, at: float, duration_s: float, label: str = ""
    ) -> None:
        self.daemons.pause(target, at, duration_s, label)
        self.plan.record(at, "pause", label or repr(target), duration_s)

    # -- node faults ----------------------------------------------------
    def node_down(
        self, node: str, at: float, duration_s: float | None = None
    ) -> None:
        self.daemons.node_down(node, at, duration=duration_s)
        self.plan.record(at, "node_down", node, duration_s)

    def flap_node(
        self,
        node: str,
        at: float,
        *,
        down_s: float,
        up_s: float,
        cycles: int,
    ) -> None:
        self.daemons.flap_node(
            node, at, down_s=down_s, up_s=up_s, cycles=cycles
        )
        self.plan.record(
            at, f"flap×{cycles}", node, cycles * (down_s + up_s)
        )
