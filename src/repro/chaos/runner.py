"""Chaos scenario runner — ``python -m repro chaos`` / ``make chaos``.

Runs named scenarios (all, a selection, or the CI smoke trio), prints a
per-scenario verdict with degradation statistics, and exits non-zero if
any invariant was violated — so the harness gates CI exactly like a test
suite, while staying runnable (and replayable by seed) from the shell.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.chaos.scenarios import SCENARIOS, SMOKE_SCENARIOS, ChaosReport


def select_scenarios(
    only: Iterable[str] | None = None, *, smoke: bool = False
) -> list[str]:
    """Resolve which scenario names to run, validating unknown names."""
    if only:
        names = list(only)
        unknown = [n for n in names if n not in SCENARIOS]
        if unknown:
            raise KeyError(
                f"unknown scenario(s) {unknown}; "
                f"available: {sorted(SCENARIOS)}"
            )
        return names
    if smoke:
        return list(SMOKE_SCENARIOS)
    return list(SCENARIOS)


def run_scenarios(
    names: Iterable[str], *, seed: int = 0, world: str | None = None
) -> list[ChaosReport]:
    """Run fault scenarios, optionally against a registered world scenario.

    ``world`` is a name from :func:`repro.scenarios.list_scenarios`
    (e.g. ``"bursty"``); ``None`` keeps the legacy uniform tree.
    """
    return [SCENARIOS[name].run(seed, world) for name in names]


def format_report(report: ChaosReport, *, verbose: bool = False) -> str:
    verdict = "OK      " if report.ok else "VIOLATED"
    stats = report.checker.stats
    line = (
        f"{verdict}  {report.name:<22s}"
        f" grants={report.stats.get('grants', 0):<3d}"
        f" typed_errors={stats.get('typed_errors', 0):<3d}"
        f" quality_checks={stats.get('quality_checks', 0)}"
    )
    parts = [line]
    if report.checker.error_codes:
        codes = ", ".join(
            f"{code}×{n}" for code, n in sorted(report.checker.error_codes.items())
        )
        parts.append(f"          error codes: {codes}")
    for violation in report.checker.violations:
        parts.append(f"          !! {violation}")
    if verbose:
        for fault in report.fault_log:
            parts.append(f"          fault: {fault}")
    return "\n".join(parts)


def main(
    *,
    seed: int = 0,
    only: Iterable[str] | None = None,
    smoke: bool = False,
    world: str | None = None,
    list_only: bool = False,
    as_json: bool = False,
    verbose: bool = False,
) -> int:
    """Run the harness; returns the process exit code (0 = all held)."""
    # Degradation warnings (skip-and-log, LKG fallbacks) are the point
    # of the harness, but hundreds of them drown the verdict table; the
    # checkers count them either way.  --verbose restores the log.
    if not verbose:
        import logging

        logging.getLogger("repro").setLevel(logging.ERROR)
    if list_only:
        for name, scenario in SCENARIOS.items():
            tag = " [smoke]" if scenario.smoke else ""
            print(f"{name:<22s} {scenario.description}{tag}")
        return 0
    names = select_scenarios(only, smoke=smoke)
    reports = run_scenarios(names, seed=seed, world=world)
    if as_json:
        print(json.dumps([r.summary() for r in reports], indent=2))
    else:
        where = f", world={world}" if world else ""
        print(f"chaos harness: {len(reports)} scenario(s), seed={seed}{where}")
        for report in reports:
            print(format_report(report, verbose=verbose))
        failed = [r.name for r in reports if not r.ok]
        if failed:
            print(f"\nFAILED: {len(failed)}/{len(reports)} — {', '.join(failed)}")
        else:
            print(f"\nall invariants held across {len(reports)} scenario(s)")
    return 0 if all(r.ok for r in reports) else 1
