"""Scripted in-memory transport — broker wire faults without sockets.

:class:`ScriptedSocketFactory` plugs into ``BrokerClient(socket_factory=…)``
and serves each request by calling :func:`dispatch_line` — a synchronous
mirror of the daemon's parse → dispatch pipeline — against a real
:class:`~repro.broker.service.BrokerService`.  A *script* of behaviors,
consumed one per request (plus ``REFUSE`` consumed at connect), injects
the transport failures that matter for client correctness:

``DIE_BEFORE_SEND``
    the connection dies before the request reaches the server — the
    server never saw it, so a retry is trivially safe;
``DIE_AFTER_SEND``
    the server *processed* the request but the response was lost — the
    dangerous case: a naive allocate retry would double-grant, which is
    exactly what the idempotency token must prevent;
``GARBAGE`` / ``CLOSE``
    an unparseable response line / an orderly close with no response.

Everything is deterministic: no threads, no ports, no timing.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Iterable

from repro.broker.protocol import (
    PROTOCOL_VERSION,
    ErrorCode,
    HelloParams,
    ProtocolError,
    Request,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)
from repro.broker.service import BrokerService

#: per-request behaviors a script may contain
OK = "ok"
REFUSE = "refuse"
DIE_BEFORE_SEND = "die_before_send"
DIE_AFTER_SEND = "die_after_send"
GARBAGE = "garbage"
CLOSE = "close"

BEHAVIORS = frozenset(
    {OK, REFUSE, DIE_BEFORE_SEND, DIE_AFTER_SEND, GARBAGE, CLOSE}
)


def dispatch_line(service: BrokerService, line: bytes) -> bytes:
    """One request line → one response line, synchronously.

    Mirrors ``BrokerServer._handle_line`` + ``_dispatch`` without the
    admission queue: allocate requests are decided as singleton batches.
    Internal exceptions become ``INTERNAL`` error responses, exactly as
    the daemon must never die on a request.
    """
    try:
        request = parse_request(line)
    except ProtocolError as exc:
        service.metrics.protocol_errors += 1
        return encode_response(error_response(_best_effort_id(line), exc))
    service.metrics.record_request(request.op)
    try:
        return encode_response(_dispatch(service, request))
    except ProtocolError as exc:
        return encode_response(error_response(request.id, exc))
    except Exception as exc:  # noqa: BLE001 — the daemon must not die
        return encode_response(
            error_response(
                request.id,
                ProtocolError(
                    ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"
                ),
            )
        )


def _dispatch(service: BrokerService, request: Request):
    if request.op == "hello":
        # Transport-verb mirror: this in-memory transport speaks exactly
        # one framing (JSON lines, strict alternation), so it answers
        # hello honestly but never upgrades.
        params = request.params
        assert isinstance(params, HelloParams)
        if params.codec != "json" or params.pipeline:
            return error_response(request.id, ProtocolError(
                ErrorCode.BAD_REQUEST,
                "chaos transport speaks JSON lines only",
            ))
        return ok_response(request.id, {
            "codec": "json",
            "pipeline": False,
            "max_inflight": 1,
            "codecs": ["json"],
            "protocol_version": PROTOCOL_VERSION,
        })
    if request.op == "allocate":
        outcome = service.allocate_batch([request.params])[0]
        if isinstance(outcome, ProtocolError):
            return error_response(request.id, outcome)
        return ok_response(request.id, outcome)
    if request.op == "renew":
        return ok_response(request.id, service.renew(request.params))
    if request.op == "release":
        return ok_response(request.id, service.release(request.params))
    if request.op == "reconfigure":
        return ok_response(request.id, service.reconfigure(request.params))
    if request.op == "fleet_plan":
        return ok_response(request.id, service.fleet_plan(request.params))
    if request.op == "fleet_status":
        return ok_response(request.id, service.fleet_status())
    assert request.op == "status"
    return ok_response(request.id, service.status())


def _best_effort_id(line: bytes) -> str:
    try:
        obj = json.loads(line)
        if isinstance(obj, dict) and isinstance(obj.get("id"), (str, int)):
            return str(obj["id"])
    except ValueError:  # JSONDecodeError and UnicodeDecodeError both are
        pass
    return ""


class ScriptedSocketFactory:
    """``(host, port, timeout_s) -> socket``-alike driving a service.

    The script is a sequence of behaviors consumed in order — one per
    request sent (``REFUSE`` entries are consumed at connect time
    instead).  An exhausted script behaves as ``OK`` forever.
    """

    def __init__(
        self,
        service: BrokerService,
        script: Iterable[str] = (),
        *,
        dispatch: Callable[[BrokerService, bytes], bytes] = dispatch_line,
    ) -> None:
        script = list(script)
        unknown = set(script) - BEHAVIORS
        if unknown:
            raise ValueError(f"unknown behaviors in script: {sorted(unknown)}")
        self.service = service
        self.script: deque[str] = deque(script)
        self.dispatch = dispatch
        #: observability for test assertions
        self.connections = 0
        self.dispatched = 0

    def next_behavior(self) -> str:
        return self.script.popleft() if self.script else OK

    def __call__(self, host: str, port: int, timeout_s: float) -> "_FakeSocket":
        if self.script and self.script[0] == REFUSE:
            self.script.popleft()
            raise OSError("chaos: connection refused")
        self.connections += 1
        return _FakeSocket(self)


class _FakeSocket:
    """Just enough socket surface for ``BrokerClient``."""

    def __init__(self, factory: ScriptedSocketFactory) -> None:
        self._factory = factory
        self._responses: deque[Any] = deque()
        self._closed = False

    def makefile(self, mode: str) -> "_FakeReadFile":
        assert mode == "rb", f"unexpected makefile mode {mode!r}"
        return _FakeReadFile(self)

    def sendall(self, line: bytes) -> None:
        if self._closed:
            raise OSError("chaos: socket already closed")
        behavior = self._factory.next_behavior()
        if behavior == DIE_BEFORE_SEND:
            self._closed = True
            raise OSError("chaos: connection reset before send")
        # From here on the server HAS processed the request — any further
        # fault loses only the response, never the side effect.
        response = self._factory.dispatch(self._factory.service, line)
        self._factory.dispatched += 1
        if behavior == DIE_AFTER_SEND:
            self._responses.append(
                OSError("chaos: connection reset mid-response")
            )
        elif behavior == GARBAGE:
            self._responses.append(b"%%% not json %%%\n")
        elif behavior == CLOSE:
            self._responses.append(b"")
        else:
            self._responses.append(response)

    def close(self) -> None:
        self._closed = True

    # BrokerClient's default factory sets TCP options; a custom factory
    # controls its own socket, but keep the method for drop-in safety.
    def setsockopt(self, *args: Any) -> None:  # pragma: no cover
        pass


class _FakeReadFile:
    def __init__(self, sock: _FakeSocket) -> None:
        self._sock = sock

    def readline(self) -> bytes:
        if not self._sock._responses:
            return b""
        item = self._sock._responses.popleft()
        if isinstance(item, Exception):
            raise item
        return item

    def close(self) -> None:
        pass
