"""Global malleability search — one fleet objective, joint actions.

The per-job elastic loop (PR 3) answers "is *this* job better off
elsewhere?".  This module answers the coordinated question the
malleability literature shows is worth much more: given **all** running
malleable jobs and the pending queue, which joint set of expand /
shrink / admit actions maximizes fleet productivity?

The objective is a weighted sum of

* **productivity** — Σ weightⱼ · Sⱼ(ranksⱼ) over active jobs, the
  aggregate rate of serial-equivalent work (speedup curves from
  :mod:`repro.fleet.utility`); queued jobs contribute nothing, which is
  exactly the cost of leaving them queued;
* **utilization** — allocated ranks over cluster capacity;
* **fairness** — Jain's index over per-job rank counts.

The search is a greedy-by-marginal-utility pass (repeatedly adopt the
single best strictly-improving move: expand one job a step, admit the
queue head, or the compound "shrink lowest-marginal donors until the
head fits, then admit") followed by a swap-improvement refinement
(move one step of ranks between job pairs while that strictly
improves).  Every adopted move strictly improves the objective, so
**objective-after ≥ objective-before holds by construction** — and
because the search starts from the current allocation (the state the
per-job elastic loop left behind) and no-op is always available, the
fleet pass is never worse than per-job elasticity under this model.

The optimizer is a pure function of its inputs: no clocks, no RNG —
the same fleet state always yields the same plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.fleet.utility import SpeedupCurve

#: minimum objective improvement a move must deliver to be adopted —
#: guards against floating-point churn masquerading as progress
MIN_IMPROVEMENT = 1e-9


@dataclass(frozen=True)
class FleetJobState:
    """One running malleable job as the optimizer sees it."""

    job_id: str
    ranks: int
    curve: SpeedupCurve
    #: resize bounds (inclusive); ``max_ranks=None`` means unbounded
    min_ranks: int = 1
    max_ranks: int | None = None
    #: resize granularity in ranks (typically the job's ppn)
    step: int = 1
    #: relative importance in the productivity term
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.min_ranks < 1 or self.min_ranks > self.ranks:
            raise ValueError(
                f"min_ranks must be in [1, ranks], got {self.min_ranks}"
            )
        if self.max_ranks is not None and self.max_ranks < self.ranks:
            raise ValueError(
                f"max_ranks must be >= ranks, got {self.max_ranks}"
            )
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class PendingJobState:
    """One queued job the pass may admit (FIFO order preserved)."""

    job_id: str
    ranks: int
    curve: SpeedupCurve
    wait_s: float = 0.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.wait_s < 0:
            raise ValueError(f"wait_s must be >= 0, got {self.wait_s}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


@dataclass(frozen=True)
class FleetWeights:
    """Relative weights of the fleet-objective terms."""

    productivity: float = 1.0
    utilization: float = 2.0
    fairness: float = 0.5

    def __post_init__(self) -> None:
        for name in ("productivity", "utilization", "fairness"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} weight must be >= 0")


def jain_index(values: Sequence[int]) -> float:
    """Jain's fairness index over positive counts — 1.0 when equal."""
    if not values:
        return 1.0
    total = float(sum(values))
    squares = float(sum(v * v for v in values))
    if squares <= 0:
        return 1.0
    return total * total / (len(values) * squares)


def fleet_objective(
    jobs: Sequence[FleetJobState],
    capacity: int,
    weights: FleetWeights | None = None,
) -> float:
    """The fleet objective for a set of *active* jobs.

    Queued jobs are simply absent from ``jobs`` — their zero
    contribution is what makes admission attractive.
    """
    w = weights or FleetWeights()
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    used = sum(j.ranks for j in jobs)
    prod = sum(j.weight * j.curve.speedup(j.ranks) for j in jobs)
    util = min(used / capacity, 1.0)
    fair = jain_index([j.ranks for j in jobs])
    return w.productivity * prod + w.utilization * util + w.fairness * fair


@dataclass(frozen=True)
class FleetAction:
    """One element of the chosen joint action set."""

    #: expand / shrink / admit (no-ops are simply omitted)
    kind: str
    job_id: str
    #: signed rank change for resizes; the admitted size for admits
    delta_ranks: int
    target_ranks: int
    #: heuristic objective contribution attributed to this action (the
    #: pass-level invariant is on the *total* objective, not this split)
    gain: float = 0.0


@dataclass(frozen=True)
class FleetPlanResult:
    """What one optimizer pass decided, with its arithmetic shown."""

    actions: tuple[FleetAction, ...]
    objective_before: float
    objective_after: float
    rounds: int = 0

    @property
    def objective_gain(self) -> float:
        return self.objective_after - self.objective_before


class FleetOptimizer:
    """Greedy-by-marginal-utility search with swap refinement."""

    def __init__(
        self,
        weights: FleetWeights | None = None,
        *,
        max_rounds: int = 64,
        swap_passes: int = 4,
        reserve_frac: float = 0.25,
    ) -> None:
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        if swap_passes < 0:
            raise ValueError(f"swap_passes must be >= 0, got {swap_passes}")
        if not 0.0 <= reserve_frac < 1.0:
            raise ValueError(
                f"reserve_frac must be in [0, 1), got {reserve_frac}"
            )
        self.weights = weights or FleetWeights()
        self.max_rounds = max_rounds
        self.swap_passes = swap_passes
        #: expansions must leave this fraction of capacity free — the
        #: headroom drift migrations (and the next arrival) escape into;
        #: a fleet that packs itself solid has no room to react
        self.reserve_frac = reserve_frac

    # ------------------------------------------------------------------
    def optimize(
        self,
        jobs: Sequence[FleetJobState],
        pending: Sequence[PendingJobState],
        capacity: int,
    ) -> FleetPlanResult:
        """The best strictly-improving joint action set found.

        ``pending`` must be in queue (FIFO) order; only a prefix is ever
        admitted, so the pass cannot starve the queue head.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        jobs = sorted(jobs, key=lambda j: j.job_id)
        by_id = {j.job_id: j for j in jobs}
        if len(by_id) != len(jobs):
            raise ValueError("duplicate job_id in fleet state")
        ranks = {j.job_id: j.ranks for j in jobs}
        admitted: list[PendingJobState] = []
        before = self._objective(by_id, ranks, admitted, capacity)
        current = before
        rounds = 0
        while rounds < self.max_rounds:
            rounds += 1
            adopted = self._adopt_best_move(
                by_id, ranks, admitted, list(pending), capacity, current
            )
            if adopted is None:
                break
            current = adopted
        current = self._swap_refine(by_id, ranks, admitted, capacity, current)
        actions = self._actions(by_id, ranks, admitted, current - before)
        return FleetPlanResult(
            actions=tuple(actions),
            objective_before=before,
            objective_after=current,
            rounds=rounds,
        )

    # ------------------------------------------------------------------
    def _objective(
        self,
        by_id: Mapping[str, FleetJobState],
        ranks: Mapping[str, int],
        admitted: Sequence[PendingJobState],
        capacity: int,
    ) -> float:
        w = self.weights
        used = sum(ranks.values()) + sum(p.ranks for p in admitted)
        prod = sum(
            j.weight * j.curve.speedup(ranks[j.job_id])
            for j in by_id.values()
        )
        prod += sum(p.weight * p.curve.speedup(p.ranks) for p in admitted)
        util = min(used / capacity, 1.0)
        counts = list(ranks.values()) + [p.ranks for p in admitted]
        fair = jain_index(counts)
        return w.productivity * prod + w.utilization * util + w.fairness * fair

    def _free(
        self,
        ranks: Mapping[str, int],
        admitted: Sequence[PendingJobState],
        capacity: int,
    ) -> int:
        return capacity - sum(ranks.values()) - sum(
            p.ranks for p in admitted
        )

    def _adopt_best_move(
        self,
        by_id: Mapping[str, FleetJobState],
        ranks: dict[str, int],
        admitted: list[PendingJobState],
        pending: list[PendingJobState],
        capacity: int,
        current: float,
    ) -> float | None:
        """Try every single move; adopt the best strict improvement."""
        free = self._free(ranks, admitted, capacity)
        queue = [p for p in pending if p not in admitted]
        head = queue[0] if queue else None

        best_value: float | None = None
        best_apply: tuple[dict[str, int], list[PendingJobState]] | None = None

        def consider(
            new_ranks: dict[str, int], new_admitted: list[PendingJobState]
        ) -> None:
            nonlocal best_value, best_apply
            value = self._objective(by_id, new_ranks, new_admitted, capacity)
            if value <= current + MIN_IMPROVEMENT:
                return
            if best_value is None or value > best_value:
                best_value = value
                best_apply = (new_ranks, new_admitted)

        # 1) Admit the queue head outright when it fits.
        if head is not None and head.ranks <= free:
            consider(dict(ranks), admitted + [head])
        # 2) Shrink-to-admit: free ranks from the cheapest donors until
        #    the head fits (the coordinated move per-job elasticity can
        #    never make).  Unlike a plain FIFO admission, this move
        #    *forces* occupancy the scheduler would not otherwise take
        #    on, so it must also leave the capacity reserve free —
        #    otherwise one pass can pack the cluster solid and the
        #    crowding (visible only through later repricing) costs more
        #    than the admitted job's avoided wait.
        if head is not None and head.ranks > free:
            compound = self._shrink_to_admit(
                by_id, ranks, admitted, head, capacity
            )
            if compound is not None:
                consider(*compound)
        # 3) Expansions — only once the queue is fully admitted (so a
        #    running job never grows past a waiting one) and only while
        #    they leave the capacity reserve free.
        if head is None:
            reserve = int(math.ceil(self.reserve_frac * capacity))
            for jid in sorted(ranks):
                job = by_id[jid]
                target = ranks[jid] + job.step
                if job.max_ranks is not None and target > job.max_ranks:
                    continue
                if free - job.step < reserve:
                    continue
                new_ranks = dict(ranks)
                new_ranks[jid] = target
                consider(new_ranks, list(admitted))

        if best_value is None or best_apply is None:
            return None
        new_ranks, new_admitted = best_apply
        ranks.clear()
        ranks.update(new_ranks)
        admitted.clear()
        admitted.extend(new_admitted)
        return best_value

    def _shrink_to_admit(
        self,
        by_id: Mapping[str, FleetJobState],
        ranks: Mapping[str, int],
        admitted: Sequence[PendingJobState],
        head: PendingJobState,
        capacity: int,
    ) -> tuple[dict[str, int], list[PendingJobState]] | None:
        """Donor shrinks (cheapest marginal loss first) to fit ``head``.

        The donors must free enough for the head *plus* the capacity
        reserve, so the compound never packs the cluster solid.
        """
        reserve = int(math.ceil(self.reserve_frac * capacity))
        need = (
            head.ranks + reserve - self._free(ranks, admitted, capacity)
        )
        new_ranks = dict(ranks)
        while need > 0:
            best_jid: str | None = None
            best_loss = float("inf")
            for jid in sorted(new_ranks):
                job = by_id[jid]
                target = new_ranks[jid] - job.step
                if target < job.min_ranks:
                    continue
                loss = job.weight * (
                    job.curve.speedup(new_ranks[jid])
                    - job.curve.speedup(target)
                )
                if loss < best_loss:
                    best_loss = loss
                    best_jid = jid
            if best_jid is None:
                return None  # nobody can donate: the head must wait
            new_ranks[best_jid] -= by_id[best_jid].step
            need -= by_id[best_jid].step
        return new_ranks, list(admitted) + [head]

    def _swap_refine(
        self,
        by_id: Mapping[str, FleetJobState],
        ranks: dict[str, int],
        admitted: list[PendingJobState],
        capacity: int,
        current: float,
    ) -> float:
        """Move one step between job pairs while that strictly improves."""
        for _ in range(self.swap_passes):
            improved = False
            for src in sorted(ranks):
                for dst in sorted(ranks):
                    if src == dst:
                        continue
                    s_job, d_job = by_id[src], by_id[dst]
                    s_target = ranks[src] - s_job.step
                    d_target = ranks[dst] + d_job.step
                    if s_target < s_job.min_ranks:
                        continue
                    if (
                        d_job.max_ranks is not None
                        and d_target > d_job.max_ranks
                    ):
                        continue
                    delta = d_job.step - s_job.step
                    if delta > self._free(ranks, admitted, capacity):
                        continue
                    trial = dict(ranks)
                    trial[src] = s_target
                    trial[dst] = d_target
                    value = self._objective(
                        by_id, trial, admitted, capacity
                    )
                    if value > current + MIN_IMPROVEMENT:
                        ranks[src] = s_target
                        ranks[dst] = d_target
                        current = value
                        improved = True
            if not improved:
                break
        return current

    def _actions(
        self,
        by_id: Mapping[str, FleetJobState],
        ranks: Mapping[str, int],
        admitted: Sequence[PendingJobState],
        pass_gain: float,
    ) -> list[FleetAction]:
        w = self.weights
        actions: list[FleetAction] = []
        for jid in sorted(ranks):
            job = by_id[jid]
            delta = ranks[jid] - job.ranks
            if delta == 0:
                continue
            if delta > 0:
                gain = w.productivity * job.weight * (
                    job.curve.speedup(ranks[jid])
                    - job.curve.speedup(job.ranks)
                )
            else:
                # A shrink's own marginal is negative by definition; its
                # justification is the pass it enables (freed capacity →
                # admission), so it carries the pass-level gain.
                gain = pass_gain
            actions.append(
                FleetAction(
                    kind="expand" if delta > 0 else "shrink",
                    job_id=jid,
                    delta_ranks=delta,
                    target_ranks=ranks[jid],
                    gain=gain,
                )
            )
        for p in admitted:
            actions.append(
                FleetAction(
                    kind="admit",
                    job_id=p.job_id,
                    delta_ranks=p.ranks,
                    target_ranks=p.ranks,
                    gain=w.productivity * p.weight * p.curve.speedup(p.ranks),
                )
            )
        return actions
