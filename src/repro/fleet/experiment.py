"""Fleet-elastic vs. per-job-elastic vs. static — the subsystem's claim.

One seed builds three identical drifting-load worlds and runs the same
job stream through three schedulers:

* **static** — repricing only, no escape
  (:class:`MalleableClusterScheduler` with ``reconfigure=False``);
* **elastic** — the full PR-3 per-job drift → plan → gate → execute
  loop;
* **fleet** — the same per-job loop *plus* the global malleability pass
  (:class:`~repro.fleet.sim.FleetScheduler`): joint expand / shrink /
  admit actions that maximize the fleet objective.

The job stream deliberately oversubscribes the cluster (short
interarrival against multi-node jobs) so a queue forms — the regime
where coordinated shrink-to-admit beats any per-job reaction.  Beyond
turnaround, each variant reports measured cluster **utilization**
(busy node·seconds over nodes × makespan), the second axis the
malleability literature scores on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.elastic.cost import MigrationCostConfig
from repro.elastic.drift import DriftPolicy
from repro.elastic.experiment import drifting_world, submit_offsets
from repro.elastic.gate import GateConfig
from repro.elastic.sim import MalleableClusterScheduler
from repro.experiments.scenario import Scenario
from repro.fleet.optimizer import FleetWeights
from repro.fleet.sim import FleetScheduler
from repro.scheduler.queue import JobRequest, SchedulerStats

#: the three scheduler variants, in reporting order
VARIANTS = ("static", "elastic", "fleet")


@dataclass(frozen=True)
class FleetExperimentConfig:
    """Everything one three-way comparison run depends on."""

    #: registered scenario providing cluster + regime (None = the legacy
    #: uniform 8-node tree); the drifting ambient load is kept either way
    scenario: str | None = None
    n_nodes: int = 8
    nodes_per_switch: int = 4
    n_jobs: int = 6
    n_processes: int = 8
    ppn: int = 4
    app_s: int = 64
    app_timesteps: int = 12000
    #: short against ~30-minute jobs on a 2-nodes-each × 8-node cluster,
    #: so arrivals outpace departures and a queue forms
    interarrival_s: float = 240.0
    warmup_s: float = 1800.0
    reprice_period_s: float = 30.0
    drift_intensity: float = 1.0
    migration_failure_rate: float = 0.0
    utility_seed: int = 0
    max_expand_factor: float = 2.0
    drift_policy: DriftPolicy = field(default_factory=DriftPolicy)
    gate_config: GateConfig = field(default_factory=GateConfig)
    cost_config: MigrationCostConfig = field(
        default_factory=MigrationCostConfig
    )
    fleet_weights: FleetWeights = field(default_factory=FleetWeights)

    def __post_init__(self) -> None:
        if self.n_nodes < 2 or self.n_jobs < 1:
            raise ValueError("need at least 2 nodes and 1 job")


@dataclass(frozen=True)
class FleetVariantResult:
    """One variant's outcome on the oversubscribed drifting scenario."""

    variant: str
    stats: SchedulerStats
    reconfigs: int
    failed_migrations: int
    #: busy node·seconds over nodes × makespan, in [0, 1]
    utilization: float
    fleet_passes: int = 0
    fleet_actions: int = 0

    def to_dict(self) -> dict:
        return {
            "variant": self.variant,
            "n_jobs": self.stats.n_jobs,
            "makespan_s": self.stats.makespan_s,
            "mean_wait_s": self.stats.mean_wait_s,
            "mean_turnaround_s": self.stats.mean_turnaround_s,
            "mean_execution_s": self.stats.mean_execution_s,
            "utilization": self.utilization,
            "reconfigs": self.reconfigs,
            "failed_migrations": self.failed_migrations,
            "fleet_passes": self.fleet_passes,
            "fleet_actions": self.fleet_actions,
        }


@dataclass(frozen=True)
class FleetComparison:
    """Three schedulers, one seed, one drifting oversubscribed world."""

    seed: int
    static: FleetVariantResult
    elastic: FleetVariantResult
    fleet: FleetVariantResult

    @staticmethod
    def _pct(base: float, other: float) -> float:
        if base <= 0:
            return 0.0
        return (base - other) / base * 100.0

    @property
    def elastic_vs_static_pct(self) -> float:
        """Turnaround gain of per-job elastic over static (positive = wins)."""
        return self._pct(
            self.static.stats.mean_turnaround_s,
            self.elastic.stats.mean_turnaround_s,
        )

    @property
    def fleet_vs_static_pct(self) -> float:
        return self._pct(
            self.static.stats.mean_turnaround_s,
            self.fleet.stats.mean_turnaround_s,
        )

    @property
    def fleet_vs_elastic_pct(self) -> float:
        """Turnaround gain of the fleet pass over per-job elastic."""
        return self._pct(
            self.elastic.stats.mean_turnaround_s,
            self.fleet.stats.mean_turnaround_s,
        )

    @property
    def fleet_utilization_delta(self) -> float:
        """Utilization points the fleet pass adds over per-job elastic."""
        return self.fleet.utilization - self.elastic.utilization

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "static": self.static.to_dict(),
            "elastic": self.elastic.to_dict(),
            "fleet": self.fleet.to_dict(),
            "elastic_vs_static_pct": self.elastic_vs_static_pct,
            "fleet_vs_static_pct": self.fleet_vs_static_pct,
            "fleet_vs_elastic_pct": self.fleet_vs_elastic_pct,
            "fleet_utilization_delta": self.fleet_utilization_delta,
        }


def run_fleet_variant(
    *,
    variant: str,
    seed: int,
    config: FleetExperimentConfig,
) -> FleetVariantResult:
    """One scheduler variant on a freshly built drifting-load world."""
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; choose from {VARIANTS}"
        )
    cfg = config
    specs, topo, workload_config, spec = drifting_world(
        cfg.scenario,
        drift_intensity=cfg.drift_intensity,
        n_nodes=cfg.n_nodes,
        nodes_per_switch=cfg.nodes_per_switch,
    )
    sc = Scenario.build(
        specs, topo, seed=seed, workload_config=workload_config
    )
    sc.warm_up(cfg.warmup_s)
    common: dict[str, Any] = dict(
        rng=sc.streams.child("scheduler"),
        reprice_period_s=cfg.reprice_period_s,
        drift_policy=cfg.drift_policy,
        gate_config=cfg.gate_config,
        cost_config=cfg.cost_config,
        migration_failure_rate=(
            cfg.migration_failure_rate if variant != "static" else 0.0
        ),
        failure_rng=sc.streams.child("migration-failures"),
    )
    scheduler: MalleableClusterScheduler
    if variant == "fleet":
        scheduler = FleetScheduler(
            sc.engine,
            sc.workload,
            sc.network,
            sc.snapshot,
            fleet_weights=cfg.fleet_weights,
            fleet_rng=sc.streams.child("fleet"),
            utility_seed=cfg.utility_seed,
            max_expand_factor=cfg.max_expand_factor,
            **common,
        )
    else:
        scheduler = MalleableClusterScheduler(
            sc.engine,
            sc.workload,
            sc.network,
            sc.snapshot,
            reconfigure=variant == "elastic",
            **common,
        )
    app = MiniMD(cfg.app_s, MiniMDConfig(timesteps=cfg.app_timesteps))
    t0 = sc.engine.now
    offsets = submit_offsets(
        spec, cfg.n_jobs, cfg.interarrival_s, sc.streams
    )
    for offset in offsets:
        scheduler.submit(
            JobRequest(
                app=app,
                n_processes=cfg.n_processes,
                ppn=cfg.ppn,
                submit_time=t0 + offset,
            )
        )
    stats = scheduler.drain()
    scheduler.stop()
    # Utilization is against the *actual* node count — scenarios can
    # build clusters of any size, so cfg.n_nodes is only the legacy
    # world's parameter.
    n_nodes = len(sc.cluster.names)
    utilization = 0.0
    if stats.makespan_s > 0:
        utilization = min(
            scheduler.busy_node_seconds / (n_nodes * stats.makespan_s),
            1.0,
        )
    fleet_passes = 0
    fleet_actions = 0
    if isinstance(scheduler, FleetScheduler):
        fleet_passes = scheduler.fleet_pass_count
        fleet_actions = scheduler.fleet_actions_applied
    return FleetVariantResult(
        variant=variant,
        stats=stats,
        reconfigs=scheduler.reconfig_count,
        failed_migrations=scheduler.failed_migrations,
        utilization=utilization,
        fleet_passes=fleet_passes,
        fleet_actions=fleet_actions,
    )


def run_fleet_comparison(
    *,
    seed: int = 0,
    config: FleetExperimentConfig | None = None,
    **overrides: Any,
) -> FleetComparison:
    """The headline fleet experiment: three variants, one world per seed.

    ``overrides`` are field overrides for :class:`FleetExperimentConfig`
    (convenience for the CLI / benchmarks).
    """
    cfg = config or FleetExperimentConfig()
    if overrides:
        cfg = replace(cfg, **overrides)
    static = run_fleet_variant(variant="static", seed=seed, config=cfg)
    elastic = run_fleet_variant(variant="elastic", seed=seed, config=cfg)
    fleet = run_fleet_variant(variant="fleet", seed=seed, config=cfg)
    return FleetComparison(
        seed=seed, static=static, elastic=elastic, fleet=fleet
    )


def fleet_comparison_rows(comparison: FleetComparison) -> list[Mapping]:
    """Flat rows (one per variant) for tables and JSON artifacts."""
    return [
        comparison.static.to_dict(),
        comparison.elastic.to_dict(),
        comparison.fleet.to_dict(),
    ]
