"""Atomic execution of a fleet pass — ordered, per-action transactional.

The optimizer emits a *joint* action set; this module turns it into
lease-table reality without ever leaving the table inconsistent:

* **ordering** — shrinks run before everything else so the nodes they
  free are available to the migrations and expansions that follow
  (``shrink < migrate/rebalance < expand``; admissions happen after the
  pass, once capacity exists);
* **atomicity** — every action runs through the PR-3
  :class:`~repro.elastic.executor.TwoPhaseExecutor` (reserve → migrate →
  atomic swap), so a mid-flight failure rolls that action fully back
  and the pass carries on: each completed action either fully lands or
  fully rolls back, never half-way;
* **accounting** — the returned :class:`FleetPassReport` records every
  action's outcome so callers (broker ``fleet_plan``, the chaos
  harness, the DES scheduler) can assert exactly what happened.

Federation note: the router fans a fleet pass out as per-shard batches
(each shard's service runs its own ordered pass over its own lease
table); cross-shard migrations ride the existing two-phase
reserve/commit path, not this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.elastic.executor import ReconfigError, TwoPhaseExecutor
from repro.elastic.plan import ReconfigPlan
from repro.util.atomic import atomic_between_awaits

#: execution order by plan kind — shrinks first to free capacity,
#: expansions last so they can use it
ACTION_ORDER = {
    "shrink": 0,
    "migrate": 1,
    "rebalance": 1,
    "expand": 2,
}


def order_plans(plans: Sequence[ReconfigPlan]) -> list[ReconfigPlan]:
    """Plans in execution order: shrinks, then moves, then expansions.

    Ties break on lease id so a pass replays deterministically.
    """
    return sorted(
        plans, key=lambda p: (ACTION_ORDER.get(p.kind, 1), p.lease_id)
    )


@dataclass(frozen=True)
class FleetActionResult:
    """What happened to one action of a fleet pass."""

    lease_id: str
    kind: str
    #: committed / failed (failed actions were fully rolled back)
    outcome: str
    predicted_gain: float
    error: str | None = None


@dataclass
class FleetPassReport:
    """Per-action outcomes of one executed fleet pass."""

    results: list[FleetActionResult] = field(default_factory=list)

    @property
    def applied(self) -> int:
        return sum(1 for r in self.results if r.outcome == "committed")

    @property
    def failed(self) -> int:
        return sum(1 for r in self.results if r.outcome == "failed")

    def to_dict(self) -> dict:
        return {
            "applied": self.applied,
            "failed": self.failed,
            "actions": [
                {
                    "lease_id": r.lease_id,
                    "kind": r.kind,
                    "outcome": r.outcome,
                    "predicted_gain": r.predicted_gain,
                    "error": r.error,
                }
                for r in self.results
            ],
        }


class FleetExecutor:
    """Applies one pass's accepted plans in order, atomically each."""

    def __init__(self, executor: TwoPhaseExecutor) -> None:
        self.executor = executor
        #: lifetime counters across passes (observability)
        self.passes = 0
        self.actions_applied = 0
        self.actions_failed = 0

    @atomic_between_awaits
    def apply_pass(
        self,
        plans: Sequence[ReconfigPlan],
        *,
        migrate: Callable[[ReconfigPlan], None] | None = None,
    ) -> FleetPassReport:
        """Execute every plan, shrinks first; never raises mid-pass.

        A plan that dies mid-migration is rolled back by the two-phase
        executor (lease untouched, reservations freed) and recorded as
        ``failed``; the remaining plans still run.  The lease table is
        consistent after every action regardless of outcome.
        """
        self.passes += 1
        report = FleetPassReport()
        for plan in order_plans(plans):
            try:
                self.executor.apply(plan, migrate=migrate)
            except ReconfigError as err:
                self.actions_failed += 1
                report.results.append(
                    FleetActionResult(
                        lease_id=plan.lease_id,
                        kind=plan.kind,
                        outcome="failed",
                        predicted_gain=plan.predicted_gain,
                        error=err.code,
                    )
                )
                continue
            self.actions_applied += 1
            report.results.append(
                FleetActionResult(
                    lease_id=plan.lease_id,
                    kind=plan.kind,
                    outcome="committed",
                    predicted_gain=plan.predicted_gain,
                )
            )
        return report
