"""Job-utility abstraction — speedup-vs-ranks curves for malleable jobs.

The fleet optimizer needs a *cheap* predictor of what one more (or one
fewer) node is worth to each running job; re-pricing every job at every
candidate size with the BSP model would make the global search
quadratic in fleet size.  This module provides that predictor:

* three classic speedup families — **Amdahl** (serial-fraction bound),
  **logarithmic** (communication-dominated) and **linear** (embarrassing
  parallelism at sub-unit efficiency) — each monotone non-decreasing in
  ranks with non-increasing marginal utility;
* deterministic per-job-class parameterization
  (:func:`curve_for_class`): the same job class and seed always map to
  the same curve, so fleet passes are replayable;
* a calibration path wired into :mod:`repro.simmpi`
  (:func:`calibrate_amdahl`): price the *actual* application at two rank
  counts with :func:`repro.simmpi.job.price_placement` and fit the
  serial fraction, so curves can come from the ground-truth execution
  model instead of the seeded prior.

The curves are advisory — every action the optimizer picks is still
re-priced exactly (DES) or gated on measured migration cost (broker)
before it commits.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.simmpi.placement import Placement

if TYPE_CHECKING:
    from repro.apps.base import AppModel
    from repro.cluster.cluster import Cluster
    from repro.net.model import NetworkModel

#: the supported curve families, in the deterministic draw order
FAMILIES = ("amdahl", "log", "linear")


@dataclass(frozen=True)
class SpeedupCurve:
    """Speedup over a single rank as a function of rank count.

    Exactly one family is active; the other parameters are ignored.
    All families satisfy ``speedup(1) == 1.0``, monotone non-decreasing
    speedup, and non-increasing marginal utility (concavity) — the
    properties the optimizer's greedy pass relies on.
    """

    family: str
    #: Amdahl serial fraction ``f`` in ``[0, 1]``:  ``S(n) = 1/(f + (1-f)/n)``
    serial_fraction: float = 0.05
    #: log-family scale ``c``:  ``S(n) = 1 + c·ln(n)``
    log_scale: float = 1.0
    #: linear-family per-rank efficiency ``e`` in ``(0, 1]``:
    #: ``S(n) = 1 + e·(n-1)``
    efficiency: float = 0.9

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown curve family {self.family!r}; choose from {FAMILIES}"
            )
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError(
                f"serial_fraction must be in [0, 1], got {self.serial_fraction}"
            )
        if self.log_scale < 0.0:
            raise ValueError(f"log_scale must be >= 0, got {self.log_scale}")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )

    # ------------------------------------------------------------------
    def speedup(self, ranks: int) -> float:
        """``S(ranks)`` — predicted speedup over one rank."""
        if ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {ranks}")
        n = float(ranks)
        if self.family == "amdahl":
            f = self.serial_fraction
            return 1.0 / (f + (1.0 - f) / n)
        if self.family == "log":
            return 1.0 + self.log_scale * math.log(n)
        return 1.0 + self.efficiency * (n - 1.0)

    def marginal_utility(self, ranks: int, k: int = 1) -> float:
        """``S(ranks + k) − S(ranks)`` — the value of ``k`` more ranks.

        Negative ``k`` prices a shrink (the result is ``<= 0``).  The
        target size ``ranks + k`` must stay ``>= 1``.
        """
        if ranks + k < 1:
            raise ValueError(
                f"ranks + k must stay >= 1, got {ranks} + {k}"
            )
        return self.speedup(ranks + k) - self.speedup(ranks)


def curve_for_class(job_class: str, *, seed: int = 0) -> SpeedupCurve:
    """The deterministic speedup curve for one job class.

    The family and its parameter are drawn from a SHA-256 of
    ``job_class:seed``, so every scheduler/broker/shard that sees the
    same class name under the same seed prices it identically — no
    shared state required, and fleet passes replay bit-for-bit.
    """
    digest = hashlib.sha256(f"{job_class}:{seed}".encode()).digest()
    rng = random.Random(int.from_bytes(digest[:8], "big"))
    family = FAMILIES[rng.randrange(len(FAMILIES))]
    if family == "amdahl":
        return SpeedupCurve("amdahl", serial_fraction=rng.uniform(0.02, 0.20))
    if family == "log":
        return SpeedupCurve("log", log_scale=rng.uniform(0.5, 1.5))
    return SpeedupCurve("linear", efficiency=rng.uniform(0.6, 0.95))


# ----------------------------------------------------------------------
# simmpi-backed calibration


def measured_speedup(
    app: "AppModel",
    cluster: "Cluster",
    network: "NetworkModel",
    nodes: Sequence[str],
    *,
    ranks: int,
    base_ranks: int = 1,
    ppn: int = 4,
) -> float:
    """Ground-truth speedup of ``ranks`` over ``base_ranks`` ranks.

    Both sizes are priced with the BSP execution model on block
    placements over ``nodes`` at ``ppn`` ranks per node — the same
    model the DES uses to run jobs, so a curve calibrated from this is
    consistent with what the scheduler will actually observe.
    """
    from repro.simmpi.job import price_placement

    if ranks < 1 or base_ranks < 1:
        raise ValueError("ranks and base_ranks must be >= 1")
    t_base = price_placement(
        app, Placement.block(nodes, ppn, base_ranks), cluster, network
    )
    t_n = price_placement(
        app, Placement.block(nodes, ppn, ranks), cluster, network
    )
    if t_n <= 0:
        raise ValueError(f"non-positive priced time {t_n} at {ranks} ranks")
    return t_base / t_n


def calibrate_amdahl(
    app: "AppModel",
    cluster: "Cluster",
    network: "NetworkModel",
    nodes: Sequence[str],
    *,
    probe_ranks: int = 8,
    ppn: int = 4,
) -> SpeedupCurve:
    """Fit an Amdahl curve to the application's measured speedup.

    Prices the app at 1 and ``probe_ranks`` ranks via
    :func:`repro.simmpi.job.price_placement` and inverts
    ``S = 1/(f + (1-f)/n)`` for the serial fraction ``f``, clipped to
    ``[0, 1]``.  A sub-linear-but-positive measured speedup lands on a
    sensible concave curve; a measured *slowdown* clips to ``f = 1``
    (no benefit from more ranks — the optimizer will leave it alone).
    """
    if probe_ranks < 2:
        raise ValueError(f"probe_ranks must be >= 2, got {probe_ranks}")
    s = measured_speedup(
        app, cluster, network, nodes, ranks=probe_ranks, ppn=ppn
    )
    n = float(probe_ranks)
    f = (n / max(s, 1e-9) - 1.0) / (n - 1.0)
    return SpeedupCurve("amdahl", serial_fraction=min(max(f, 0.0), 1.0))
