"""Fleet-wide elastic optimizer — global malleability passes.

Where :mod:`repro.elastic` reacts to *one* job's load drift, this
subsystem coordinates **all** malleable jobs plus the pending queue:
speedup-curve utilities (:mod:`repro.fleet.utility`), a global
objective search over joint expand / shrink / admit action sets
(:mod:`repro.fleet.optimizer`), ordered atomic execution
(:mod:`repro.fleet.executor`), and the DES consumer + three-way
experiment (:mod:`repro.fleet.sim`, :mod:`repro.fleet.experiment`).
See docs/FLEET.md.
"""

from repro.fleet.executor import (
    FleetActionResult,
    FleetExecutor,
    FleetPassReport,
    order_plans,
)
from repro.fleet.optimizer import (
    FleetAction,
    FleetJobState,
    FleetOptimizer,
    FleetPlanResult,
    FleetWeights,
    PendingJobState,
    fleet_objective,
    jain_index,
)
from repro.fleet.utility import (
    FAMILIES,
    SpeedupCurve,
    calibrate_amdahl,
    curve_for_class,
    measured_speedup,
)

__all__ = [
    "FAMILIES",
    "FleetAction",
    "FleetActionResult",
    "FleetExecutor",
    "FleetJobState",
    "FleetOptimizer",
    "FleetPassReport",
    "FleetPlanResult",
    "FleetWeights",
    "PendingJobState",
    "SpeedupCurve",
    "calibrate_amdahl",
    "curve_for_class",
    "fleet_objective",
    "jain_index",
    "measured_speedup",
    "order_plans",
]
