"""FleetScheduler — the DES consumer of the global malleability pass.

Extends the per-job elastic scheduler with a periodic *fleet* pass:

1. the per-job elastic loop runs first, exactly as in
   :class:`~repro.elastic.sim.MalleableClusterScheduler` — drift
   detection, same-size replanning, gated migration (this is the
   baseline the fleet pass builds on, so fleet-elastic starts from
   per-job-elastic behavior by construction);
2. the fleet optimizer then snapshots every running malleable job plus
   the pending queue and searches joint expand / shrink / admit sets
   that strictly improve the fleet objective
   (:mod:`repro.fleet.optimizer`);
3. chosen actions execute shrinks-first through the same
   vacate → price → gate → two-phase-apply machinery as per-job
   reconfigurations — an expansion only commits when the BSP model
   prices the larger placement genuinely faster (margin over migration
   cost), and a shrink's benefit is the queued head job's avoided wait;
4. freed capacity is offered to the FIFO queue immediately, which is
   how the optimizer's ``admit`` actions materialize.

Fleet actions bypass the per-job cooldown (``fleet=True`` at the gate)
under the global :class:`~repro.elastic.gate.FleetRateLimiter`.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.core.policies import (
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
)
from repro.des.engine import Engine
from repro.elastic.cost import MigrationCostConfig
from repro.elastic.drift import DriftPolicy
from repro.elastic.gate import FleetRateLimiter, GateConfig
from repro.elastic.plan import ReconfigPlan, ReconfigPlanner, plan_kind
from repro.elastic.sim import MalleableClusterScheduler
from repro.fleet.executor import ACTION_ORDER
from repro.fleet.optimizer import (
    FleetAction,
    FleetJobState,
    FleetOptimizer,
    FleetWeights,
    PendingJobState,
)
from repro.fleet.utility import SpeedupCurve, curve_for_class
from repro.monitor.snapshot import ClusterSnapshot
from repro.net.model import NetworkModel
from repro.scheduler.queue import ScheduledJob
from repro.workload.generator import BackgroundWorkload


class FleetScheduler(MalleableClusterScheduler):
    """Malleable scheduler with a coordinated fleet pass per tick."""

    def __init__(
        self,
        engine: Engine,
        workload: BackgroundWorkload,
        network: NetworkModel,
        snapshot_source: Callable[[], ClusterSnapshot],
        *,
        policy: AllocationPolicy | None = None,
        rng: np.random.Generator | None = None,
        exclusive_nodes: bool = True,
        job_flow_mbs: float = 8.0,
        reprice_period_s: float = 30.0,
        planner: ReconfigPlanner | None = None,
        drift_policy: DriftPolicy | None = None,
        gate_config: GateConfig | None = None,
        cost_config: MigrationCostConfig | None = None,
        migration_failure_rate: float = 0.0,
        failure_rng: np.random.Generator | None = None,
        fleet_weights: FleetWeights | None = None,
        fleet_limiter: FleetRateLimiter | None = None,
        fleet_rng: np.random.Generator | None = None,
        utility_seed: int = 0,
        max_expand_factor: float = 2.0,
    ) -> None:
        super().__init__(
            engine,
            workload,
            network,
            snapshot_source,
            policy=policy,
            rng=rng,
            exclusive_nodes=exclusive_nodes,
            job_flow_mbs=job_flow_mbs,
            reprice_period_s=reprice_period_s,
            reconfigure=True,
            planner=planner,
            drift_policy=drift_policy,
            gate_config=gate_config,
            cost_config=cost_config,
            migration_failure_rate=migration_failure_rate,
            failure_rng=failure_rng,
        )
        if max_expand_factor < 1.0:
            raise ValueError(
                f"max_expand_factor must be >= 1, got {max_expand_factor}"
            )
        self.optimizer = FleetOptimizer(fleet_weights)
        self.utility_seed = int(utility_seed)
        self.max_expand_factor = float(max_expand_factor)
        # Fleet planning draws placements from its own stream so the
        # per-job elastic trajectory is bit-identical to a plain
        # MalleableClusterScheduler run until a fleet action commits —
        # the "never worse than per-job-elastic" claim depends on it.
        self._fleet_rng = (
            fleet_rng
            if fleet_rng is not None
            else np.random.default_rng(0xF1EE7)
        )
        # Fleet actions skip the per-job cooldown; this global window is
        # what bounds pass-driven churn instead (satellite: bypass token
        # replaced by a fleet-wide rate limiter).
        self.gate.fleet_limiter = fleet_limiter or FleetRateLimiter()
        #: one record per fleet pass that proposed at least one action
        self.fleet_events: list[dict] = []
        self._curves: dict[str, SpeedupCurve] = {}

    # -- utility wiring -------------------------------------------------
    def _curve(self, job: ScheduledJob) -> SpeedupCurve:
        """The job's speedup curve, keyed by application class."""
        name = job.request.app.name
        if name not in self._curves:
            self._curves[name] = curve_for_class(name, seed=self.utility_seed)
        return self._curves[name]

    # -- the periodic tick ----------------------------------------------
    def _tick(self) -> None:
        super()._tick()  # repricing + the per-job elastic baseline pass
        if self._running:
            self._fleet_pass()

    # -- the global pass -------------------------------------------------
    def _fleet_pass(self) -> None:
        now = self.engine.now
        snapshot = self._snapshot_source()
        # Expansion helps the expanded job but taxes every peer (extra
        # load and ring traffic the gate's self-benefit pricing cannot
        # see), so growth *beyond the requested size* is allowed only
        # for the last unfinished job in the batch — the tail-end
        # flex-up that uses an otherwise idle cluster and can crowd
        # nobody, present or future.  Growing *back up to* the requested
        # size (undoing an earlier shrink-to-admit) is allowed whenever
        # the queue is empty: peers were priced against that footprint
        # at admission, and the optimizer's capacity reserve still keeps
        # headroom free.  Shrink-to-admit is available at any occupancy.
        tail = (
            len(self._running) == 1
            and sum(1 for j in self.jobs if j.finish_time is None) == 1
        )
        states: list[FleetJobState] = []
        for jid in sorted(self._running):
            job = self._running[jid]
            assert job.allocation is not None
            cur = sum(job.allocation.procs.values())
            ppn = job.request.ppn or 1
            if tail:
                max_ranks = max(
                    cur,
                    int(
                        math.ceil(
                            self.max_expand_factor * job.request.n_processes
                        )
                    ),
                )
            elif not self._pending:
                max_ranks = max(cur, job.request.n_processes)
            else:
                max_ranks = cur
            states.append(
                FleetJobState(
                    job_id=str(jid),
                    ranks=cur,
                    curve=self._curve(job),
                    min_ranks=min(ppn, cur),
                    max_ranks=max_ranks,
                    step=ppn,
                )
            )
        pending = [
            PendingJobState(
                job_id=str(p.request.job_id),
                ranks=p.request.n_processes,
                curve=self._curve(p),
                wait_s=max(now - p.request.submit_time, 0.0),
            )
            for p in self._pending
        ]
        capacity = self._capacity_ranks(snapshot)
        result = self.optimizer.optimize(states, pending, capacity)
        if not result.actions:
            return

        applied = 0
        ordered = sorted(
            result.actions,
            key=lambda a: (ACTION_ORDER.get(a.kind, 1), a.job_id),
        )
        for action in ordered:
            if action.kind not in ("expand", "shrink"):
                continue  # admissions materialize via _try_start below
            job = self._running.get(int(action.job_id))
            if job is None:
                continue  # finished between optimize and execute
            if self._apply_resize(job, action, snapshot):
                applied += 1
        self._try_start()
        self.fleet_events.append(
            {
                "time": now,
                "objective_before": result.objective_before,
                "objective_after": result.objective_after,
                "actions": len(result.actions),
                "applied": applied,
                "rounds": result.rounds,
            }
        )

    def _capacity_ranks(self, snapshot: ClusterSnapshot) -> int:
        """Rank capacity under space sharing: nodes × the fleet's ppn."""
        ppns = [j.request.ppn or 1 for j in self._running.values()]
        ppns += [p.request.ppn or 1 for p in self._pending]
        ppn = max(ppns, default=1)
        return max(len(snapshot.nodes) * ppn, 1)

    def _apply_resize(
        self,
        job: ScheduledJob,
        action: FleetAction,
        snapshot: ClusterSnapshot,
    ) -> bool:
        """Plan and (gate willing) execute one resize action."""
        plan = self._resize_plan(job, action, snapshot)
        if plan is None:
            return False
        bonus_s = 0.0
        if action.kind == "shrink":
            # The shrink's payoff is the queued head job starting now
            # instead of waiting for the earliest running job to finish.
            # The gate adds this avoided wait to the donor's (negative)
            # self benefit, so a shrink only commits when the head's
            # saving genuinely exceeds the donor's slowdown plus the
            # migration cost — the net fleet economics.
            bonus_s = min(
                (1.0 - self._done[j]) * self._exec_T[j]
                for j in self._running
            )
        return self._execute_plan(
            job, plan, fleet=True, benefit_bonus_s=bonus_s
        )

    def _resize_plan(
        self,
        job: ScheduledJob,
        action: FleetAction,
        snapshot: ClusterSnapshot,
    ) -> ReconfigPlan | None:
        """A concrete placement for the action's target size, or None.

        The paper's allocator picks *where* the resized job lives; the
        optimizer only decided *how big* it should be.  ``None`` means
        no feasible placement exists right now (the action is dropped —
        fail closed, never force a placement).
        """
        assert job.allocation is not None
        target = action.target_ranks
        if target < 1 or target == sum(job.allocation.procs.values()):
            return None
        request = AllocationRequest(
            n_processes=target,
            ppn=job.request.ppn,
            tradeoff=job.request.app.recommended_tradeoff(),
        )
        own = set(job.allocation.nodes)
        exclude = (
            frozenset(self._busy_nodes - own) if self.exclusive_nodes else None
        )
        try:
            allocation = self.policy.allocate(
                snapshot, request, rng=self._fleet_rng, exclude=exclude
            )
        except AllocationError:
            return None
        if self.exclusive_nodes:
            needed = request.nodes_needed
            if needed is not None and allocation.n_nodes < needed:
                return None
        if (
            tuple(allocation.nodes) == tuple(job.allocation.nodes)
            and dict(allocation.procs) == dict(job.allocation.procs)
        ):
            return None
        return ReconfigPlan(
            lease_id=self._lease_ids[job.request.job_id],
            kind=plan_kind(job.allocation.nodes, allocation.nodes),
            old_nodes=tuple(job.allocation.nodes),
            new_nodes=tuple(allocation.nodes),
            old_procs=dict(job.allocation.procs),
            procs=dict(allocation.procs),
            # Resizes are justified by marginal utility, not by Eq-4
            # score deltas (totals of different sizes are incomparable);
            # the gate still prices benefit vs. migration cost exactly.
            current_total=0.0,
            proposed_total=0.0,
            predicted_gain=max(float(action.gain), 0.0),
            request=request,
            snapshot_time=snapshot.time,
        )

    # -- observability ---------------------------------------------------
    @property
    def fleet_pass_count(self) -> int:
        """Fleet passes that proposed at least one action."""
        return len(self.fleet_events)

    @property
    def fleet_actions_applied(self) -> int:
        return sum(e["applied"] for e in self.fleet_events)
