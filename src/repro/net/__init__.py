"""Network substrate: tree routing, flows, fair-share bandwidth, latency."""

from repro.net.bandwidth import FairShareSolver, available_bandwidth
from repro.net.flows import Flow, FlowSet
from repro.net.latency import LatencyConfig, LatencyModel
from repro.net.model import NetworkModel
from repro.net.probes import round_robin_rounds

__all__ = [
    "FairShareSolver",
    "available_bandwidth",
    "Flow",
    "FlowSet",
    "LatencyConfig",
    "LatencyModel",
    "NetworkModel",
    "round_robin_rounds",
]
