"""Traffic flows over the cluster network.

A :class:`Flow` is a unidirectional data stream between two compute nodes
with an offered demand (MB/s).  Background workload and running MPI jobs
both express their traffic as flows; the fair-share solver then decides the
rate each flow actually achieves.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

_flow_ids = itertools.count()


@dataclass(frozen=True)
class Flow:
    """A unidirectional traffic flow.

    ``demand_mbs = float('inf')`` models a greedy (TCP-like, always
    backlogged) flow that takes whatever fair share it can get.
    """

    src: str
    dst: str
    demand_mbs: float
    tag: str = "background"
    flow_id: int = field(default_factory=lambda: next(_flow_ids))

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"flow endpoints must differ, got {self.src!r} twice")
        if not self.demand_mbs > 0:
            raise ValueError(f"flow demand must be positive, got {self.demand_mbs}")


class FlowSet:
    """A mutable collection of flows with O(1) add/remove by id."""

    def __init__(self, flows: Iterable[Flow] = ()) -> None:
        self._flows: dict[int, Flow] = {}
        for f in flows:
            self.add(f)

    def add(self, flow: Flow) -> Flow:
        if flow.flow_id in self._flows:
            raise ValueError(f"duplicate flow id {flow.flow_id}")
        self._flows[flow.flow_id] = flow
        return flow

    def remove(self, flow: Flow) -> None:
        try:
            del self._flows[flow.flow_id]
        except KeyError:
            raise KeyError(f"flow {flow.flow_id} not in set") from None

    def remove_tag(self, tag: str) -> int:
        """Remove every flow with the given tag; return how many."""
        doomed = [fid for fid, f in self._flows.items() if f.tag == tag]
        for fid in doomed:
            del self._flows[fid]
        return len(doomed)

    def clear(self) -> None:
        self._flows.clear()

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows.values())

    def __contains__(self, flow: Flow) -> bool:
        return flow.flow_id in self._flows

    def with_tag(self, tag: str) -> list[Flow]:
        """All flows carrying ``tag``."""
        return [f for f in self._flows.values() if f.tag == tag]

    def node_flow_rate(self, rates: dict[int, float]) -> dict[str, float]:
        """Aggregate achieved rate (MB/s) in+out per node.

        ``rates`` maps flow_id -> achieved rate, as returned by the
        fair-share solver.  This is what the paper's *node data flow rate*
        attribute measures at the NIC.
        """
        per_node: dict[str, float] = {}
        for f in self._flows.values():
            r = rates.get(f.flow_id, 0.0)
            per_node[f.src] = per_node.get(f.src, 0.0) + r
            per_node[f.dst] = per_node.get(f.dst, 0.0) + r
        return per_node
