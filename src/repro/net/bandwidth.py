"""Max–min fair-share bandwidth allocation (progressive filling).

Every flow crossing a link shares that link's capacity.  Progressive
filling raises all unfrozen flows' rates together; a flow freezes when it
hits its demand or when some link on its path saturates.  The result is
the classic max–min fair allocation, a reasonable model for many competing
TCP-like streams on a switched Ethernet — the regime the paper's shared
cluster lives in.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.cluster.topology import SwitchTopology
from repro.net.flows import Flow

#: Links with less residual than this (MB/s) count as saturated.
_EPS = 1e-9


class FairShareSolver:
    """Computes achieved rates for a set of flows on a tree topology."""

    def __init__(self, topology: SwitchTopology) -> None:
        self._topo = topology

    def solve(self, flows: Sequence[Flow]) -> dict[int, float]:
        """Return max–min fair rate (MB/s) per ``flow_id``.

        Runs in O(L · F) per filling round and at most F rounds; for the
        paper-scale cluster (60 nodes, hundreds of flows) this is well
        under a millisecond.
        """
        if not flows:
            return {}
        # Pre-compute paths as link tuples.
        flow_links: dict[int, tuple[tuple[str, str], ...]] = {
            f.flow_id: self._topo.links_on_path(f.src, f.dst) for f in flows
        }
        residual: dict[tuple[str, str], float] = {}
        active_on_link: dict[tuple[str, str], int] = {}
        for f in flows:
            for link in flow_links[f.flow_id]:
                if link not in residual:
                    residual[link] = self._topo.link_capacity(*link)
                    active_on_link[link] = 0
                active_on_link[link] += 1

        rate: dict[int, float] = {f.flow_id: 0.0 for f in flows}
        remaining_demand: dict[int, float] = {f.flow_id: f.demand_mbs for f in flows}
        active: set[int] = set(rate)

        while active:
            # Smallest per-flow headroom across saturable links and demands.
            inc = math.inf
            for link, n in active_on_link.items():
                if n > 0:
                    inc = min(inc, residual[link] / n)
            for fid in active:
                inc = min(inc, remaining_demand[fid])
            if not math.isfinite(inc):  # pragma: no cover - defensive
                break
            inc = max(inc, 0.0)
            # Raise all active flows by `inc`.
            for fid in active:
                rate[fid] += inc
                remaining_demand[fid] -= inc
            for link in list(active_on_link):
                residual[link] -= inc * active_on_link[link]
            # Freeze flows that met demand or hit a saturated link.
            frozen: list[int] = []
            for fid in active:
                if remaining_demand[fid] <= _EPS:
                    frozen.append(fid)
                    continue
                for link in flow_links[fid]:
                    if residual[link] <= _EPS:
                        frozen.append(fid)
                        break
            if not frozen:
                # Numerical safety: freeze the flow on the tightest link.
                tightest = min(active, key=lambda fid: remaining_demand[fid])
                frozen = [tightest]
            for fid in frozen:
                active.discard(fid)
                for link in flow_links[fid]:
                    active_on_link[link] -= 1
        return rate

    def link_utilization(
        self, flows: Sequence[Flow], rates: Mapping[int, float] | None = None
    ) -> dict[tuple[str, str], float]:
        """Fraction of each link's capacity in use, in [0, 1]."""
        if rates is None:
            rates = self.solve(flows)
        used: dict[tuple[str, str], float] = {}
        for f in flows:
            r = rates.get(f.flow_id, 0.0)
            for link in self._topo.links_on_path(f.src, f.dst):
                used[link] = used.get(link, 0.0) + r
        return {
            link: min(1.0, u / self._topo.link_capacity(*link))
            for link, u in used.items()
        }


def available_bandwidth(
    topology: SwitchTopology,
    background: Sequence[Flow],
    src: str,
    dst: str,
    *,
    solver: FairShareSolver | None = None,
) -> float:
    """Effective bandwidth a new greedy flow would achieve from src to dst.

    This is what the paper's ``BandwidthD`` measures: an MPI bandwidth
    probe competes with background traffic, so its achieved rate is the
    max–min fair share of a hypothetical backlogged flow added to the mix —
    not merely the residual capacity (a probe still gets a share of a
    saturated link).
    """
    if src == dst:
        raise ValueError("available_bandwidth needs two distinct nodes")
    solver = solver or FairShareSolver(topology)
    probe = Flow(src=src, dst=dst, demand_mbs=math.inf, tag="_probe")
    rates = solver.solve(list(background) + [probe])
    return rates[probe.flow_id]
