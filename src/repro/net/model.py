"""NetworkModel: façade over topology + flows + solvers.

This is the single object the rest of the system talks to for "what is the
network doing right now": the workload generator installs/removes
background flows, the monitoring daemons probe it, and the MPI execution
model charges message time against it.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.cluster.topology import SwitchTopology
from repro.net.bandwidth import FairShareSolver, available_bandwidth
from repro.net.flows import Flow, FlowSet
from repro.net.latency import LatencyConfig, LatencyModel


class NetworkModel:
    """Current network state of the cluster.

    Caches the fair-share solution; any flow mutation invalidates it.
    """

    def __init__(
        self,
        topology: SwitchTopology,
        *,
        latency_config: LatencyConfig | None = None,
        endpoint_bw_load_factor: float = 0.8,
        hop_bw_efficiency: float = 0.92,
    ) -> None:
        if endpoint_bw_load_factor < 0:
            raise ValueError(
                f"endpoint_bw_load_factor must be non-negative: "
                f"{endpoint_bw_load_factor}"
            )
        if not 0.0 < hop_bw_efficiency <= 1.0:
            raise ValueError(
                f"hop_bw_efficiency must be in (0, 1], got {hop_bw_efficiency}"
            )
        #: achievable-throughput multiplier per hop beyond the minimal two
        #: (same-switch) hops.  Store-and-forward and backplane overheads
        #: give every pair a topology-determined *base value* — the paper's
        #: Fig 2(a) observation that "nodes with closer proximity have
        #: somewhat higher bandwidth".
        self.hop_bw_efficiency = hop_bw_efficiency
        #: how strongly endpoint CPU load (per core) throttles achievable
        #: bandwidth: factor = 1 / (1 + k * max(load_u, load_v)).  A busy
        #: host cannot drive its NIC at line rate (TCP/MPI progress
        #: threads compete for CPU), which is why the paper's Fig 7
        #: bandwidth heatmap darkens around loaded nodes.
        self.endpoint_bw_load_factor = endpoint_bw_load_factor
        self._topo = topology
        self._flows = FlowSet()
        self._solver = FairShareSolver(topology)
        self._latency = LatencyModel(topology, latency_config)
        self._rates: dict[int, float] | None = None
        self._util: dict[tuple[str, str], float] | None = None
        #: optional callable node -> CPU load per core, used by the
        #: latency model's endpoint term (wired by the workload layer)
        self._node_load_provider: Callable[[str], float] | None = None

    def set_node_load_provider(
        self, provider: Callable[[str], float] | None
    ) -> None:
        """Install the endpoint-load source for latency computations."""
        self._node_load_provider = provider

    def _endpoint_loads(self, u: str, v: str) -> tuple[float, float] | None:
        if self._node_load_provider is None:
            return None
        return (self._node_load_provider(u), self._node_load_provider(v))

    def endpoint_bw_factor(self, u: str, v: str) -> float:
        """Bandwidth multiplier in (0, 1] from endpoint CPU load."""
        loads = self._endpoint_loads(u, v)
        if loads is None:
            return 1.0
        worst = max(max(loads[0], 0.0), max(loads[1], 0.0))
        return 1.0 / (1.0 + self.endpoint_bw_load_factor * worst)

    def hop_bw_factor(self, u: str, v: str) -> float:
        """Per-hop throughput efficiency beyond the 2-hop same-switch case."""
        extra = max(self._topo.hops(u, v) - 2, 0)
        return self.hop_bw_efficiency**extra

    def _bw_factor(self, u: str, v: str) -> float:
        """Combined endpoint-load and hop-count throughput multiplier."""
        return self.endpoint_bw_factor(u, v) * self.hop_bw_factor(u, v)

    # -- flow management ------------------------------------------------
    @property
    def topology(self) -> SwitchTopology:
        return self._topo

    @property
    def flows(self) -> FlowSet:
        return self._flows

    def add_flow(self, flow: Flow) -> Flow:
        self._flows.add(flow)
        self._invalidate()
        return flow

    def add_flows(self, flows: Iterable[Flow]) -> list[Flow]:
        added = [self._flows.add(f) for f in flows]
        self._invalidate()
        return added

    def remove_flow(self, flow: Flow) -> None:
        self._flows.remove(flow)
        self._invalidate()

    def remove_tag(self, tag: str) -> int:
        n = self._flows.remove_tag(tag)
        if n:
            self._invalidate()
        return n

    def replace_tag(self, tag: str, flows: Iterable[Flow]) -> None:
        """Atomically swap all flows of ``tag`` for a new set."""
        self._flows.remove_tag(tag)
        for f in flows:
            if f.tag != tag:
                raise ValueError(f"flow tag {f.tag!r} does not match {tag!r}")
            self._flows.add(f)
        self._invalidate()

    def _invalidate(self) -> None:
        self._rates = None
        self._util = None

    # -- solved state -----------------------------------------------------
    def rates(self) -> Mapping[int, float]:
        """Achieved rate per flow id under max–min fairness (cached)."""
        if self._rates is None:
            self._rates = self._solver.solve(list(self._flows))
        return self._rates

    def link_utilization(self) -> Mapping[tuple[str, str], float]:
        """Utilization per link in [0, 1] (cached)."""
        if self._util is None:
            self._util = self._solver.link_utilization(
                list(self._flows), self.rates()
            )
        return self._util

    def node_flow_rates(self) -> dict[str, float]:
        """NIC in+out rate (MB/s) per node — the paper's *data flow rate*."""
        return self._flows.node_flow_rate(dict(self.rates()))

    # -- measurements ------------------------------------------------------
    def available_bandwidth(self, u: str, v: str) -> float:
        """Effective bandwidth (MB/s) a probe would achieve between u, v.

        Includes the endpoint-load throttle: this is what an MPI
        bandwidth benchmark (the paper's ``BandwidthD``) actually
        measures on busy hosts.
        """
        raw = available_bandwidth(
            self._topo, list(self._flows), u, v, solver=self._solver
        )
        return raw * self._bw_factor(u, v)

    def bulk_available_bandwidth(
        self, pairs: Sequence[tuple[str, str]]
    ) -> dict[tuple[str, str], float]:
        """Fast approximate available bandwidth for many pairs at once.

        Solves the background fair share once, then for each pair takes the
        bottleneck of per-link *probe shares*: an idle link offers its
        residual capacity; a saturated link offers an equal share
        ``capacity / (n_flows + 1)`` to the newcomer.  This is exact on an
        idle network and within a few percent of the exact
        :meth:`available_bandwidth` under load (see the validation test in
        ``tests/net/test_bandwidth.py``), at O(path) instead of a full
        solve per pair.
        """
        rates = self.rates()
        used: dict[tuple[str, str], float] = {}
        count: dict[tuple[str, str], int] = {}
        for f in self._flows:
            r = rates.get(f.flow_id, 0.0)
            for link in self._topo.links_on_path(f.src, f.dst):
                used[link] = used.get(link, 0.0) + r
                count[link] = count.get(link, 0) + 1
        out: dict[tuple[str, str], float] = {}
        for u, v in pairs:
            if u == v:
                raise ValueError("bandwidth pairs must have distinct endpoints")
            best = math.inf
            for link in self._topo.links_on_path(u, v):
                cap = self._topo.link_capacity(*link)
                residual = cap - used.get(link, 0.0)
                equal_share = cap / (count.get(link, 0) + 1)
                best = min(best, max(residual, equal_share))
            out[(u, v)] = best * self._bw_factor(u, v)
        return out

    def peak_bandwidth(self, u: str, v: str) -> float:
        """Bandwidth on an idle network — min capacity along the path."""
        if u == v:
            raise ValueError("peak_bandwidth needs two distinct nodes")
        return min(
            self._topo.link_capacity(*link)
            for link in self._topo.links_on_path(u, v)
        )

    def latency_us(self, u: str, v: str, *, rng=None) -> float:
        """One-way latency in microseconds under current utilization."""
        return self._latency.latency_us(
            u,
            v,
            self.link_utilization(),
            endpoint_load_per_core=self._endpoint_loads(u, v),
            rng=rng,
        )

    def bandwidth_matrix(self, nodes: Sequence[str]) -> np.ndarray:
        """Symmetric matrix of available bandwidth between ``nodes``.

        Diagonal entries hold the peak loopback value (effectively
        infinite; we use the edge capacity as a stand-in so heatmaps stay
        finite).
        """
        n = len(nodes)
        mat = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                bw = self.available_bandwidth(nodes[i], nodes[j])
                mat[i, j] = mat[j, i] = bw
        for i in range(n):
            mat[i, i] = math.inf
        return mat

    def latency_matrix(self, nodes: Sequence[str], *, rng=None) -> np.ndarray:
        """Symmetric matrix of latencies (µs) between ``nodes``."""
        n = len(nodes)
        util = self.link_utilization()
        mat = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                lat = self._latency.latency_us(
                    nodes[i],
                    nodes[j],
                    util,
                    endpoint_load_per_core=self._endpoint_loads(
                        nodes[i], nodes[j]
                    ),
                    rng=rng,
                )
                mat[i, j] = mat[j, i] = lat
        return mat
