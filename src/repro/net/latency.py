"""P2P latency model: per-hop base cost plus congestion-dependent queueing.

The paper's ``LatencyD`` measures round-trip style MPI latencies in
microseconds (Table 4 reports values between ~80 and ~550 µs).  We model

    latency(u, v) = sum over links l in path(u, v) of
                    base_per_hop · (1 + queue_factor · ρ_l / (1 − ρ_l))

where ρ_l is the link's utilization.  The M/M/1-style term makes latency
blow up on congested links, which is what produces the paper's dark
patches and Table 4's spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cluster.topology import SwitchTopology
from repro.net.bandwidth import FairShareSolver
from repro.net.flows import Flow

#: Utilization is clamped below 1 to keep the queueing term finite.
_RHO_MAX = 0.99


@dataclass(frozen=True)
class LatencyConfig:
    """Tunables for the latency model.

    base_per_hop_us:
        Propagation + store-and-forward cost per link, microseconds.
        ~25 µs/hop yields ~100 µs for same-switch pairs (2 hops) at idle,
        in the ballpark of Gigabit Ethernet + MPI software stack.
    queue_factor:
        Strength of the congestion term.
    endpoint_load_us:
        Microseconds added per unit of *load per core* at each endpoint
        node.  Busy hosts are slow to progress MPI messages (scheduling
        noise, interrupt latency); this is why the paper's Table 4 shows
        sequential allocation measuring 304 µs on topologically adjacent
        but loaded nodes while the network-aware group measured 83 µs.
    jitter_us:
        Half-width of uniform measurement jitter (0 disables).
    """

    base_per_hop_us: float = 25.0
    queue_factor: float = 3.0
    endpoint_load_us: float = 150.0
    jitter_us: float = 0.0

    def __post_init__(self) -> None:
        if self.base_per_hop_us <= 0:
            raise ValueError(f"base_per_hop_us must be positive: {self.base_per_hop_us}")
        if self.queue_factor < 0:
            raise ValueError(f"queue_factor must be non-negative: {self.queue_factor}")
        if self.endpoint_load_us < 0:
            raise ValueError(
                f"endpoint_load_us must be non-negative: {self.endpoint_load_us}"
            )
        if self.jitter_us < 0:
            raise ValueError(f"jitter_us must be non-negative: {self.jitter_us}")


class LatencyModel:
    """Computes P2P latencies from topology + link utilization."""

    def __init__(
        self, topology: SwitchTopology, config: LatencyConfig | None = None
    ) -> None:
        self._topo = topology
        self.config = config or LatencyConfig()

    def latency_us(
        self,
        u: str,
        v: str,
        link_utilization: Mapping[tuple[str, str], float],
        *,
        endpoint_load_per_core: tuple[float, float] | None = None,
        rng=None,
    ) -> float:
        """One-way latency in microseconds between nodes ``u`` and ``v``.

        ``endpoint_load_per_core`` gives (load/core at u, load/core at v);
        each contributes ``endpoint_load_us`` microseconds per unit.
        """
        if u == v:
            return 0.0
        cfg = self.config
        total = 0.0
        for link in self._topo.links_on_path(u, v):
            rho = min(max(link_utilization.get(link, 0.0), 0.0), _RHO_MAX)
            total += cfg.base_per_hop_us * (1.0 + cfg.queue_factor * rho / (1.0 - rho))
        if endpoint_load_per_core is not None:
            lu, lv = endpoint_load_per_core
            total += cfg.endpoint_load_us * (max(lu, 0.0) + max(lv, 0.0))
        if cfg.jitter_us > 0 and rng is not None:
            total += float(rng.uniform(-cfg.jitter_us, cfg.jitter_us))
        return max(total, 0.0)

    def latency_from_flows(
        self, u: str, v: str, flows: Sequence[Flow], *, rng=None
    ) -> float:
        """Convenience: solve fair-share utilization, then compute latency."""
        solver = FairShareSolver(self._topo)
        util = solver.link_utilization(flows)
        return self.latency_us(u, v, util, rng=rng)
