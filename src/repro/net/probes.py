"""P2P probe scheduling.

The paper distributes bandwidth/latency measurements so that "one node
communicates with only one other node in each round (n/2 distinct pairs of
nodes communicate at a time). There are n−1 such rounds."  That is exactly
a round-robin tournament schedule (the *circle method*).
"""

from __future__ import annotations

from typing import Sequence


def round_robin_rounds(nodes: Sequence[str]) -> list[list[tuple[str, str]]]:
    """Partition all node pairs into rounds of disjoint pairs.

    For an even number of nodes ``n`` this yields ``n - 1`` rounds of
    ``n / 2`` pairs; for odd ``n`` there are ``n`` rounds and one node sits
    out each round.  Every unordered pair appears exactly once overall.
    """
    names = list(nodes)
    if len(set(names)) != len(names):
        raise ValueError("duplicate node names in probe schedule")
    if len(names) < 2:
        return []
    bye = None
    if len(names) % 2 == 1:
        bye = object()  # sentinel that never pairs
        names.append(bye)  # type: ignore[arg-type]
    n = len(names)
    rounds: list[list[tuple[str, str]]] = []
    # Circle method: fix names[0], rotate the rest.
    ring = names[1:]
    for _ in range(n - 1):
        order = [names[0]] + ring
        pairs = []
        for i in range(n // 2):
            a, b = order[i], order[n - 1 - i]
            if a is bye or b is bye:
                continue
            pairs.append((a, b) if str(a) <= str(b) else (b, a))
        rounds.append(pairs)
        ring = ring[-1:] + ring[:-1]
    return rounds


def validate_rounds(
    nodes: Sequence[str], rounds: list[list[tuple[str, str]]]
) -> None:
    """Assert the schedule is a valid tournament (used by tests/daemons)."""
    seen: set[tuple[str, str]] = set()
    for rnd in rounds:
        busy: set[str] = set()
        for a, b in rnd:
            if a in busy or b in busy:
                raise ValueError(f"node reused within a round: {(a, b)}")
            busy.update((a, b))
            key = (a, b) if a <= b else (b, a)
            if key in seen:
                raise ValueError(f"pair measured twice: {key}")
            seen.add(key)
    expected = {(a, b) if a <= b else (b, a)
                for i, a in enumerate(nodes) for b in list(nodes)[i + 1:]}
    if seen != expected:
        missing = sorted(expected - seen)
        raise ValueError(f"schedule misses pairs: {missing[:5]}...")
