"""Shared utilities: RNG management, units, validation helpers."""

from repro.util.rng import RngStream, as_generator, spawn_children
from repro.util.units import (
    GIGABIT_PER_S_IN_MB_S,
    MB,
    MINUTES,
    gbps_to_mbs,
    mbs_to_gbps,
)
from repro.util.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
)

__all__ = [
    "RngStream",
    "as_generator",
    "spawn_children",
    "GIGABIT_PER_S_IN_MB_S",
    "MB",
    "MINUTES",
    "gbps_to_mbs",
    "mbs_to_gbps",
    "require_in_range",
    "require_non_negative",
    "require_positive",
]
