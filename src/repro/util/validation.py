"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Any


def require_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return the value."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value >= 0``; return the value."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def require_in_range(
    value: float, lo: float, hi: float, name: str, *, inclusive: bool = True
) -> float:
    """Raise ``ValueError`` unless ``lo <= value <= hi`` (or strict)."""
    ok = lo <= value <= hi if inclusive else lo < value < hi
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{lo}, {hi}{bracket[1]}, got {value!r}"
        )
    return value


def require_type(value: Any, types: type | tuple[type, ...], name: str) -> Any:
    """Raise ``TypeError`` unless ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value
