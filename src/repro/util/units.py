"""Unit conventions used throughout the simulator.

* **time** — seconds (floats on the simulation clock)
* **bandwidth** — megabytes per second (MB/s)
* **data volume** — megabytes (MB)
* **latency** — microseconds where the paper reports microseconds; the
  network model works in seconds internally and converts at the edges.

Gigabit Ethernet (the paper's interconnect) carries 1 Gbit/s = 125 MB/s
of raw capacity per link direction.
"""

from __future__ import annotations

#: One megabyte, in bytes.
MB: int = 1_000_000

#: Seconds in a minute (rolling-mean windows are 1/5/15 minutes).
MINUTES: float = 60.0

#: Raw capacity of a 1 Gbit/s link in MB/s.
GIGABIT_PER_S_IN_MB_S: float = 125.0


def gbps_to_mbs(gbps: float) -> float:
    """Convert gigabits per second to megabytes per second."""
    return gbps * GIGABIT_PER_S_IN_MB_S


def mbs_to_gbps(mbs: float) -> float:
    """Convert megabytes per second to gigabits per second."""
    return mbs / GIGABIT_PER_S_IN_MB_S


def microseconds(us: float) -> float:
    """Convert microseconds to seconds."""
    return us * 1e-6


def to_microseconds(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return seconds * 1e6
