"""Atomic-section assertions — runtime teeth for static atomicity claims.

The RACE lint pass (``repro/analysis/race/``) only analyses ``async
def`` bodies; the broker's hottest invariant lives one layer down:
:class:`~repro.broker.service.BrokerService`, the federation router,
and the fleet executor are *synchronous* objects whose multi-step
updates (decision-memo check-then-insert, cross-shard reserve
bookkeeping, pass-metrics aggregation) are atomic **only because they
never yield and only one thread drives them**.  These helpers turn that
unstated assumption into an assertion that the interleaving fuzzer
(:mod:`repro.chaos.interleave`) can actually trip:

* :func:`atomic_between_awaits` — decorator.  On a sync function it
  asserts no other thread/task is inside the section concurrently; on
  an async function it asserts the body completes without yielding
  even once (it is driven with ``coro.send(None)`` and must finish in
  one shot).
* :func:`no_interleaving` — ``async with no_interleaving(obj, "label")``
  asserts that while one task is inside the section, no other task
  enters a section with the same monitor — precisely the claim "no
  interleaving can occur here" that the static pass certifies.

Violations raise :class:`AtomicViolation` (an ``AssertionError``
subclass: these are bugs, never operational conditions, so they must
not be swallowed by typed-error handling).

This module lives in ``repro.util`` — not ``repro.chaos`` — because the
production modules it decorates are imported *by* the chaos package;
``repro.chaos.interleave`` re-exports it for scenario authors.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


class AtomicViolation(AssertionError):
    """A section declared atomic was interleaved or yielded control."""


def _entrant() -> tuple[int, int]:
    """Identity of the caller: ``(thread ident, task id)``."""
    try:
        task = asyncio.current_task()
    except RuntimeError:  # no running loop in this thread
        task = None
    return threading.get_ident(), id(task) if task is not None else 0


def atomic_between_awaits(func: F) -> F:
    """Assert ``func`` runs atomically with respect to the event loop.

    Sync ``func``: no other thread or task may be inside it while a call
    is in progress (re-entry by the *same* entrant — recursion — is
    allowed).  Async ``func``: the coroutine must complete without ever
    yielding; an ``await`` that actually suspends inside the section is
    the violation the name promises to catch.
    """
    if asyncio.iscoroutinefunction(func):
        return _wrap_async(func)
    return _wrap_sync(func)


def _wrap_sync(func: F) -> F:
    # keyed by owning instance (bound methods) or 0 for free functions,
    # so two independent service objects never false-positive each other
    active: dict[int, tuple[tuple[int, int], int]] = {}
    guard = threading.Lock()

    @functools.wraps(func)
    def wrapper(*args: Any, **kwargs: Any) -> Any:
        key = id(args[0]) if args else 0
        me = _entrant()
        with guard:
            holder = active.get(key)
            if holder is not None and holder[0] != me:
                raise AtomicViolation(
                    f"{func.__qualname__} entered by thread/task {me} while "
                    f"thread/task {holder[0]} is still inside — the section "
                    "is declared atomic between awaits"
                )
            depth = holder[1] + 1 if holder is not None else 1
            active[key] = (me, depth)
        try:
            return func(*args, **kwargs)
        finally:
            with guard:
                holder = active.get(key)
                if holder is not None:
                    if holder[1] <= 1:
                        del active[key]
                    else:
                        active[key] = (holder[0], holder[1] - 1)

    return wrapper  # type: ignore[return-value]


def _wrap_async(func: F) -> F:
    @functools.wraps(func)
    async def wrapper(*args: Any, **kwargs: Any) -> Any:
        coro = func(*args, **kwargs)
        try:
            coro.send(None)
        except StopIteration as stop:
            return stop.value
        coro.close()
        raise AtomicViolation(
            f"async def {func.__qualname__} is declared atomic between "
            "awaits but yielded control to the event loop — another task "
            "can interleave inside it"
        )

    return wrapper  # type: ignore[return-value]


#: open sections: ``id(monitor)`` → (entrant, label, depth)
_OPEN_SECTIONS: dict[int, tuple[tuple[int, int], str, int]] = {}


class no_interleaving:
    """``async with no_interleaving(obj, "label"):`` — exclusive section.

    While one task is inside, any *other* task entering a section on the
    same monitor object raises :class:`AtomicViolation`.  Unlike a lock
    this never waits — contention is the bug being asserted against, so
    it must surface, not serialize.
    """

    def __init__(self, monitor: object, label: str = "section") -> None:
        self._key = id(monitor)
        self._monitor = monitor
        self._label = label

    async def __aenter__(self) -> "no_interleaving":
        me = _entrant()
        held = _OPEN_SECTIONS.get(self._key)
        if held is not None and held[0] != me:
            raise AtomicViolation(
                f"section {self._label!r} on {type(self._monitor).__name__} "
                f"entered by {me} while {held[0]} is inside "
                f"{held[1]!r} — declared non-interleaving"
            )
        depth = held[2] + 1 if held is not None else 1
        _OPEN_SECTIONS[self._key] = (me, self._label, depth)
        return self

    async def __aexit__(self, *exc: object) -> bool:
        held = _OPEN_SECTIONS.get(self._key)
        if held is not None:
            if held[2] <= 1:
                del _OPEN_SECTIONS[self._key]
            else:
                _OPEN_SECTIONS[self._key] = (held[0], held[1], held[2] - 1)
        return False
