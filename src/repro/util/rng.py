"""Deterministic random-number management.

Every stochastic component in the simulator takes an explicit
:class:`numpy.random.Generator`.  This module centralises how those
generators are created and split so that

* a single integer seed reproduces an entire experiment, and
* independent subsystems (workload, network, monitoring jitter) draw from
  statistically independent streams, so adding draws to one subsystem does
  not perturb another.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an integer seed, an existing generator (returned unchanged),
    a :class:`numpy.random.SeedSequence`, or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_children(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Split ``seed`` into ``n`` independent generators.

    Uses ``SeedSequence.spawn`` under the hood, which guarantees
    non-overlapping streams.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of streams: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's bit stream.
        ss = np.random.SeedSequence(int(seed.integers(0, 2**63)))
    elif isinstance(seed, np.random.SeedSequence):
        ss = seed
    else:
        ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


class RngStream:
    """A named hierarchy of independent random streams.

    ``RngStream(seed)`` is the root.  ``stream.child("workload")`` always
    returns the *same* generator stream for the same name under the same
    root seed, regardless of the order in which children are requested.
    """

    def __init__(self, seed: SeedLike = 0) -> None:
        if isinstance(seed, np.random.SeedSequence):
            entropy = seed.entropy
        elif isinstance(seed, np.random.Generator):
            entropy = int(seed.integers(0, 2**63))
        elif seed is None:
            entropy = int(np.random.SeedSequence().entropy)
        else:
            entropy = int(seed)
        self._entropy = entropy
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def entropy(self) -> int:
        """Root entropy from which all child streams are derived."""
        return self._entropy

    def child(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The stream depends only on ``(root seed, name)`` — requesting
        children in a different order yields identical streams.
        """
        if name not in self._cache:
            # Hash the name into spawn-key material. Stable across runs
            # (unlike hash()) and independent per distinct name.
            key = [b for b in name.encode("utf-8")]
            ss = np.random.SeedSequence(self._entropy, spawn_key=tuple(key))
            self._cache[name] = np.random.default_rng(ss)
        return self._cache[name]

    def children(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a dict of generators for each name in ``names``."""
        return {name: self.child(name) for name in names}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStream(entropy={self._entropy})"
