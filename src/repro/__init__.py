"""repro — Network and Load-Aware Resource Manager for MPI Programs.

A full reproduction of Kumar, Jain & Malakar (ICPP Workshops 2020) on a
simulated shared cluster: the resource-monitoring stack, the network- and
load-aware allocation heuristic, the §5 baselines, miniMD/miniFE proxy
models, and drivers regenerating every table and figure.

Quickstart::

    from repro import paper_scenario, AllocationRequest, MINIMD_TRADEOFF
    from repro.apps import MiniMD
    from repro.simmpi import SimJob, Placement

    sc = paper_scenario(seed=0)
    broker = sc.broker()
    result = broker.request(
        AllocationRequest(n_processes=32, ppn=4, tradeoff=MINIMD_TRADEOFF),
        rng=sc.streams.child("demo"),
    )
    job = SimJob(MiniMD(16), Placement.from_allocation(result.allocation),
                 sc.cluster, sc.network)
    print(job.run().total_time_s)
"""

from repro.core import (
    Allocation,
    AllocationError,
    AllocationPolicy,
    AllocationRequest,
    BruteForcePolicy,
    ComputeWeights,
    LoadAwarePolicy,
    MINIFE_TRADEOFF,
    MINIMD_TRADEOFF,
    NetworkLoadAwarePolicy,
    NetworkWeights,
    PAPER_POLICIES,
    RandomPolicy,
    ResourceBroker,
    SequentialPolicy,
    TradeOff,
    WaitRecommended,
)
from repro.experiments.scenario import Scenario, paper_scenario

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "AllocationError",
    "AllocationPolicy",
    "AllocationRequest",
    "BruteForcePolicy",
    "ComputeWeights",
    "LoadAwarePolicy",
    "MINIFE_TRADEOFF",
    "MINIMD_TRADEOFF",
    "NetworkLoadAwarePolicy",
    "NetworkWeights",
    "PAPER_POLICIES",
    "RandomPolicy",
    "ResourceBroker",
    "SequentialPolicy",
    "TradeOff",
    "WaitRecommended",
    "Scenario",
    "paper_scenario",
    "__version__",
]
