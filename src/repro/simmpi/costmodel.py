"""Point-to-point message cost under network contention.

A BSP communication phase is a set of concurrent messages.  Inter-node
messages become greedy flows competing (max–min fairly) with background
traffic and with each other; each message finishes after

    latency + volume / achieved_rate

and the phase lasts until its slowest message finishes.  Holding every
flow active for the whole phase slightly underestimates rates for short
messages (finished transfers would free capacity), making the model mildly
conservative — the same direction real synchronous halo exchanges err.

Intra-node messages go through shared memory: fixed high bandwidth and
negligible latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.net.flows import Flow
from repro.net.model import NetworkModel
from repro.simmpi.placement import Placement
from repro.util.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class Message:
    """One point-to-point transfer in a communication phase."""

    src_rank: int
    dst_rank: int
    volume_mb: float

    def __post_init__(self) -> None:
        if self.src_rank == self.dst_rank:
            raise ValueError(f"message to self: rank {self.src_rank}")
        require_non_negative(self.volume_mb, "volume_mb")


@dataclass(frozen=True)
class CommPhase:
    """A synchronized set of concurrent messages (one BSP superstep)."""

    messages: tuple[Message, ...]

    @classmethod
    def of(cls, messages: Sequence[Message]) -> "CommPhase":
        return cls(messages=tuple(messages))


@dataclass(frozen=True)
class CommCostConfig:
    """Tunables of the message cost model."""

    #: shared-memory transfer rate between colocated ranks, MB/s
    intranode_bandwidth_mbs: float = 5000.0
    #: shared-memory latency, microseconds
    intranode_latency_us: float = 1.0
    #: per-message software overhead added to every transfer, microseconds
    software_overhead_us: float = 20.0

    def __post_init__(self) -> None:
        require_positive(self.intranode_bandwidth_mbs, "intranode_bandwidth_mbs")
        require_non_negative(self.intranode_latency_us, "intranode_latency_us")
        require_non_negative(self.software_overhead_us, "software_overhead_us")


class MessageCostModel:
    """Times communication phases against the live network model."""

    def __init__(
        self, network: NetworkModel, config: CommCostConfig | None = None
    ) -> None:
        self._network = network
        self.config = config or CommCostConfig()

    def phase_time_s(self, phase: CommPhase, placement: Placement) -> float:
        """Wall time of one phase (seconds): slowest message finishes last."""
        cfg = self.config
        if not phase.messages:
            return 0.0
        inter: list[tuple[Message, Flow]] = []
        slowest = 0.0
        for msg in phase.messages:
            if placement.colocated(msg.src_rank, msg.dst_rank):
                t = (
                    (cfg.intranode_latency_us + cfg.software_overhead_us) * 1e-6
                    + msg.volume_mb / cfg.intranode_bandwidth_mbs
                )
                slowest = max(slowest, t)
            else:
                flow = Flow(
                    src=placement.node(msg.src_rank),
                    dst=placement.node(msg.dst_rank),
                    demand_mbs=math.inf,
                    tag="_job_phase",
                )
                inter.append((msg, flow))
        if inter:
            net = self._network
            # Latency is priced against *background* congestion: the
            # phase's own short synchronized messages don't build the
            # standing queues the M/M/1 term models (pricing them as
            # saturating flows would send every phase to the rho->1
            # asymptote regardless of placement).
            lat_cache: dict[tuple[str, str], float] = {}
            for msg, _flow in inter:
                pair = (
                    placement.node(msg.src_rank),
                    placement.node(msg.dst_rank),
                )
                if pair not in lat_cache:
                    lat_cache[pair] = net.latency_us(*pair)
            # Bandwidth shares do include all concurrent phase messages:
            # simultaneous halo transfers compete on shared links.
            added = net.add_flows([f for _, f in inter])
            try:
                rates = net.rates()
                for msg, flow in inter:
                    pair = (
                        placement.node(msg.src_rank),
                        placement.node(msg.dst_rank),
                    )
                    rate = max(
                        rates.get(flow.flow_id, 0.0) * net._bw_factor(*pair),
                        1e-6,
                    )
                    lat_us = lat_cache[pair] + cfg.software_overhead_us
                    t = lat_us * 1e-6 + msg.volume_mb / rate
                    slowest = max(slowest, t)
            finally:
                for f in added:
                    net.remove_flow(f)
        return slowest

    def point_to_point_time_s(
        self, src_node: str, dst_node: str, volume_mb: float
    ) -> float:
        """Time for a single isolated message between two nodes."""
        cfg = self.config
        if src_node == dst_node:
            return (
                (cfg.intranode_latency_us + cfg.software_overhead_us) * 1e-6
                + volume_mb / cfg.intranode_bandwidth_mbs
            )
        bw = max(self._network.available_bandwidth(src_node, dst_node), 1e-6)
        lat_us = self._network.latency_us(src_node, dst_node) + cfg.software_overhead_us
        return lat_us * 1e-6 + volume_mb / bw
