"""SimJob — executes an application model on a placement (BSP pricing).

Per step: every rank's compute work is priced against its host node's
clock frequency and *contention* (background load competing for cores),
the communication phases are priced against the live network, and the BSP
barrier makes the step as slow as its slowest rank.

Contention model: a rank on node ``v`` with background load ``L``,
``c`` cores and ``k`` job ranks sees slowdown

    max(1 + soft · L / c,  (L + k) / c)

— a mild cache/memory/turbo penalty while cores are free, and fair-share
time slicing once runnable processes exceed cores.  This is what makes
loaded nodes slow (the load-aware baselines' concern) while the network
terms make distant/congested groups slow (the paper's addition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.cluster.cluster import Cluster
from repro.net.model import NetworkModel
from repro.simmpi.collectives import allreduce_time_s, alltoall_time_s
from repro.simmpi.costmodel import CommCostConfig, MessageCostModel
from repro.simmpi.placement import Placement
from repro.util.validation import require_non_negative

if TYPE_CHECKING:  # avoid a circular import: apps depend on simmpi types
    from repro.apps.base import AppModel


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of a simulated run."""

    app: str
    n_ranks: int
    nodes: tuple[str, ...]
    total_time_s: float
    compute_time_s: float
    comm_time_s: float
    steps: int
    details: Mapping[str, float] = field(default_factory=dict)

    @property
    def comm_fraction(self) -> float:
        """Share of wall time spent communicating."""
        if self.total_time_s == 0:
            return 0.0
        return self.comm_time_s / self.total_time_s


@dataclass(frozen=True)
class ContentionConfig:
    """Compute-slowdown tunables."""

    #: sub-saturation interference per unit background load per core
    soft_interference: float = 1.0

    def __post_init__(self) -> None:
        require_non_negative(self.soft_interference, "soft_interference")


class SimJob:
    """Prices one application run at the current cluster/network state."""

    def __init__(
        self,
        app: "AppModel",
        placement: Placement,
        cluster: Cluster,
        network: NetworkModel,
        *,
        comm_config: CommCostConfig | None = None,
        contention: ContentionConfig | None = None,
    ) -> None:
        self.app = app
        self.placement = placement
        self.cluster = cluster
        self.network = network
        self._cost = MessageCostModel(network, comm_config)
        self.contention = contention or ContentionConfig()
        for node in placement.nodes:
            if node not in cluster:
                raise KeyError(f"placement uses unknown node {node!r}")

    # ------------------------------------------------------------------
    def rank_slowdown(self, node: str) -> float:
        """Contention slowdown factor for ranks on ``node`` (>= 1)."""
        spec = self.cluster.spec(node)
        state = self.cluster.state(node)
        k = self.placement.procs_per_node()[node]
        load = state.cpu_load
        soft = 1.0 + self.contention.soft_interference * load / spec.cores
        hard = (load + k) / spec.cores
        return max(soft, hard, 1.0)

    def compute_time_s(self, node: str, gcycles: float) -> float:
        """Seconds for one rank on ``node`` to burn ``gcycles``."""
        spec = self.cluster.spec(node)
        return gcycles / spec.frequency_ghz * self.rank_slowdown(node)

    def run(self) -> ExecutionReport:
        """Price the full run at the current instant."""
        placement = self.placement
        # Per-node compute rate is placement-wide constant; cache it.
        per_gcycle: dict[str, float] = {
            node: self.compute_time_s(node, 1.0) for node in placement.nodes
        }
        slowest_node = max(placement.nodes, key=lambda n: per_gcycle[n])

        total_compute = 0.0
        total_comm = 0.0
        steps = 0
        # Schedules repeat the same few demand objects across many blocks
        # (e.g. miniMD's plain/thermo/reneighbor cycle), and cluster state
        # is frozen for the pricing instant — memoize per distinct phase.
        phase_cache: dict[int, float] = {}
        reduce_cache: dict[float, float] = {}
        a2a_cache: dict[float, float] = {}
        for block in self.app.schedule(placement.n_ranks):
            d = block.demand
            compute = d.compute_gcycles * per_gcycle[slowest_node]
            comm = 0.0
            for phase in d.phases:
                key = id(phase)
                if key not in phase_cache:
                    phase_cache[key] = self._cost.phase_time_s(phase, placement)
                comm += phase_cache[key]
            for mb in d.allreduce_mb:
                if mb not in reduce_cache:
                    reduce_cache[mb] = allreduce_time_s(
                        self.network,
                        placement,
                        mb,
                        software_overhead_us=self._cost.config.software_overhead_us,
                    )
                comm += reduce_cache[mb]
            for mb in d.alltoall_mb:
                if mb not in a2a_cache:
                    a2a_cache[mb] = alltoall_time_s(
                        self.network,
                        placement,
                        mb,
                        software_overhead_us=self._cost.config.software_overhead_us,
                    )
                comm += a2a_cache[mb]
            total_compute += compute * block.count
            total_comm += comm * block.count
            steps += block.count
        return ExecutionReport(
            app=self.app.name,
            n_ranks=placement.n_ranks,
            nodes=tuple(placement.nodes),
            total_time_s=total_compute + total_comm,
            compute_time_s=total_compute,
            comm_time_s=total_comm,
            steps=steps,
            details={
                "slowest_node_gcycle_s": per_gcycle[slowest_node],
                "max_slowdown": max(
                    self.rank_slowdown(n) for n in placement.nodes
                ),
            },
        )


def price_placement(
    app: "AppModel",
    placement: Placement,
    cluster: Cluster,
    network: NetworkModel,
) -> float:
    """Predicted wall seconds for one full run of ``app`` on ``placement``.

    Convenience wrapper around :class:`SimJob` for callers that only need
    the headline number — the fleet utility calibration prices the same
    application at several rank counts to fit a measured speedup curve.
    """
    return SimJob(app, placement, cluster, network).run().total_time_s
