"""Simulated MPI execution substrate.

Replaces the paper's MPICH + real cluster with a BSP cost model: per-step
compute time scaled by node contention, point-to-point message time from
fair-share bandwidth and congestion latency, log-tree collectives.
"""

from repro.simmpi.collectives import (
    allreduce_time_s,
    alltoall_time_s,
    barrier_time_s,
    bcast_time_s,
)
from repro.simmpi.costmodel import (
    CommCostConfig,
    CommPhase,
    Message,
    MessageCostModel,
)
from repro.simmpi.job import ExecutionReport, SimJob
from repro.simmpi.placement import Placement

__all__ = [
    "allreduce_time_s",
    "alltoall_time_s",
    "barrier_time_s",
    "bcast_time_s",
    "CommCostConfig",
    "CommPhase",
    "Message",
    "MessageCostModel",
    "ExecutionReport",
    "SimJob",
    "Placement",
]
