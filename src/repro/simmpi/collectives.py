"""Collective operation cost models (log-tree algorithms).

MPICH implements small-message allreduce as recursive doubling:
``ceil(log2 P)`` rounds, each costing one latency plus the message
transfer at the group's worst available bandwidth.  Broadcast uses a
binomial tree with the same round structure.  These latency-dominated
forms are what miniFE's dot-product allreduces exercise.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.net.model import NetworkModel
from repro.simmpi.placement import Placement


def _group_network_extremes(
    network: NetworkModel, nodes: Sequence[str]
) -> tuple[float, float]:
    """(worst latency µs, worst available bandwidth MB/s) within a group."""
    distinct = list(dict.fromkeys(nodes))
    if len(distinct) < 2:
        return 0.0, math.inf
    worst_lat = 0.0
    worst_bw = math.inf
    pairs = [
        (a, b) for i, a in enumerate(distinct) for b in distinct[i + 1 :]
    ]
    bw = network.bulk_available_bandwidth(pairs)
    for a, b in pairs:
        worst_lat = max(worst_lat, network.latency_us(a, b))
        worst_bw = min(worst_bw, bw[(a, b)])
    return worst_lat, worst_bw


def allreduce_time_s(
    network: NetworkModel,
    placement: Placement,
    message_mb: float,
    *,
    software_overhead_us: float = 20.0,
) -> float:
    """Recursive-doubling allreduce across the placement's ranks."""
    p = placement.n_ranks
    if p <= 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    lat_us, bw = _group_network_extremes(network, placement.nodes)
    per_round = (lat_us + software_overhead_us) * 1e-6
    if message_mb > 0 and math.isfinite(bw) and bw > 0:
        per_round += message_mb / bw
    return rounds * per_round


def bcast_time_s(
    network: NetworkModel,
    placement: Placement,
    message_mb: float,
    *,
    software_overhead_us: float = 20.0,
) -> float:
    """Binomial-tree broadcast across the placement's ranks."""
    p = placement.n_ranks
    if p <= 1:
        return 0.0
    rounds = math.ceil(math.log2(p))
    lat_us, bw = _group_network_extremes(network, placement.nodes)
    per_round = (lat_us + software_overhead_us) * 1e-6
    if message_mb > 0 and math.isfinite(bw) and bw > 0:
        per_round += message_mb / bw
    return rounds * per_round


def alltoall_time_s(
    network: NetworkModel,
    placement: Placement,
    per_pair_mb: float,
    *,
    software_overhead_us: float = 20.0,
) -> float:
    """Pairwise-exchange alltoall: P−1 rounds, each a disjoint pairing.

    Every rank sends ``per_pair_mb`` to every other rank.  MPICH's
    long-message algorithm schedules P−1 rounds of disjoint pairs; each
    round costs one latency plus the transfer at the group's worst
    bandwidth, with colocated partners going through shared memory.  The
    group-extreme approximation keeps this O(nodes²) instead of pricing
    P² individual messages.
    """
    if per_pair_mb < 0:
        raise ValueError(f"per_pair_mb must be non-negative: {per_pair_mb}")
    p = placement.n_ranks
    if p <= 1:
        return 0.0
    lat_us, bw = _group_network_extremes(network, placement.nodes)
    rounds = p - 1
    per_round = (lat_us + software_overhead_us) * 1e-6
    if per_pair_mb > 0 and math.isfinite(bw) and bw > 0:
        # In each round, the ranks sharing a node funnel their transfers
        # through one NIC; scale by the max ranks per node.
        ppn = max(placement.procs_per_node().values())
        per_round += per_pair_mb * ppn / bw
    return rounds * per_round


def barrier_time_s(
    network: NetworkModel,
    placement: Placement,
    *,
    software_overhead_us: float = 20.0,
) -> float:
    """Dissemination barrier: ceil(log2 P) latency-only rounds."""
    return allreduce_time_s(
        network, placement, 0.0, software_overhead_us=software_overhead_us
    )
