"""Rank-to-node placement derived from an allocation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.policies.base import Allocation


@dataclass(frozen=True)
class Placement:
    """Which node hosts each MPI rank.

    Ranks are assigned block-wise in node order (MPICH hostfile
    semantics): node0 gets ranks ``0..procs0-1``, node1 the next block,
    and so on.
    """

    node_of_rank: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.node_of_rank:
            raise ValueError("placement must contain at least one rank")

    @classmethod
    def from_allocation(cls, allocation: Allocation) -> "Placement":
        ranks: list[str] = []
        for node in allocation.nodes:
            ranks.extend([node] * allocation.procs[node])
        return cls(node_of_rank=tuple(ranks))

    @classmethod
    def block(cls, nodes: Sequence[str], ppn: int, n_processes: int) -> "Placement":
        """``ppn`` ranks per node, truncated to ``n_processes``."""
        if ppn <= 0:
            raise ValueError(f"ppn must be positive, got {ppn}")
        ranks: list[str] = []
        for node in nodes:
            ranks.extend([node] * ppn)
            if len(ranks) >= n_processes:
                break
        if len(ranks) < n_processes:
            raise ValueError(
                f"{len(nodes)} nodes x {ppn} ppn < {n_processes} processes"
            )
        return cls(node_of_rank=tuple(ranks[:n_processes]))

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return len(self.node_of_rank)

    @property
    def nodes(self) -> list[str]:
        """Distinct nodes in first-rank order."""
        return list(dict.fromkeys(self.node_of_rank))

    def node(self, rank: int) -> str:
        return self.node_of_rank[rank]

    def ranks_on(self, node: str) -> list[int]:
        return [r for r, n in enumerate(self.node_of_rank) if n == node]

    def procs_per_node(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for n in self.node_of_rank:
            counts[n] = counts.get(n, 0) + 1
        return counts

    def colocated(self, rank_a: int, rank_b: int) -> bool:
        return self.node_of_rank[rank_a] == self.node_of_rank[rank_b]
