"""Command-line interface: ``python -m repro <command>``.

Commands operate on a freshly built simulated paper cluster (seeded, so
every invocation is reproducible):

* ``allocate`` — request nodes and print an MPICH-style hostfile;
* ``simulate`` — allocate and price a miniMD/miniFE/stencil run;
* ``compare``  — the §5 four-policy comparison at one configuration;
* ``elastic``  — static vs. elastic scheduling under drifting load (DES);
* ``trace``    — record cluster resource usage to CSV (Figure 1 data);
* ``report``   — regenerate a figure/table of the paper by name;
* ``serve``    — run the persistent allocation broker daemon (TCP);
* ``client``   — talk to a running broker
  (allocate/renew/release/reconfigure/status);
* ``lint``     — static invariant checks (determinism, async-safety,
  typed errors, protocol drift) with a CI-gateable exit code.

``allocate`` and ``compare`` accept ``--json`` for machine-readable
output, so scripted callers don't scrape the human-formatted text.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.apps.base import AppModel
from repro.apps.fft import FFT3D
from repro.apps.minife import MiniFE
from repro.apps.minimd import MiniMD
from repro.apps.stencil import Stencil3D
from repro.core.policies import AllocationRequest
from repro.core.weights import TradeOff
from repro.experiments.runner import POLICY_ORDER, compare_policies
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement

APPS = {"minimd": MiniMD, "minife": MiniFE, "stencil": Stencil3D, "fft": FFT3D}


def make_app(name: str, size: int) -> AppModel:
    try:
        return APPS[name](size)
    except KeyError:
        raise SystemExit(f"unknown app {name!r}; choose from {sorted(APPS)}")


def add_scenario_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=0, help="simulation seed")
    p.add_argument(
        "--warmup-min", type=float, default=30.0,
        help="background warm-up before acting (simulated minutes)",
    )
    p.add_argument(
        "--scenario", default="paper-tree", metavar="NAME",
        help="registered world scenario to act on "
             "(see `python -m repro scenarios list`)",
    )


def add_request_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("-n", "--procs", type=int, default=32)
    p.add_argument("--ppn", type=int, default=4, help="processes per node")
    p.add_argument(
        "--alpha", type=float, default=0.3,
        help="compute weight (beta = 1 - alpha weighs the network)",
    )


def build_request(args: argparse.Namespace) -> AllocationRequest:
    return AllocationRequest(
        n_processes=args.procs,
        ppn=args.ppn,
        tradeoff=TradeOff.from_alpha(args.alpha),
    )


def scenario_from_args(args: argparse.Namespace, **build_kwargs):
    """Build the world a CLI command acts on, from its ``--scenario``.

    The default ``paper-tree`` reproduces the legacy ``paper_scenario()``
    world bit-for-bit.
    """
    from repro.scenarios import get_scenario

    name = getattr(args, "scenario", None) or "paper-tree"
    try:
        spec = get_scenario(name)
    except KeyError as exc:
        raise SystemExit(exc.args[0])
    build_kwargs.setdefault("warmup_s", args.warmup_min * 60.0)
    return spec.build(args.seed, **build_kwargs)


def cmd_allocate(args: argparse.Namespace) -> int:
    sc = scenario_from_args(args)
    broker = sc.broker()
    result = broker.request(
        build_request(args),
        rng=sc.streams.child("cli"),
        policy=args.policy,
    )
    alloc = result.allocation
    if args.json:
        print(json.dumps({
            "policy": alloc.policy,
            "overhead_ms": result.overhead_ms,
            "n_processes": alloc.request.n_processes,
            "nodes": list(alloc.nodes),
            "procs": dict(alloc.procs),
            "hostfile": alloc.hostfile(),
        }, indent=2))
        return 0
    print(f"# policy={alloc.policy} overhead={result.overhead_ms:.2f}ms")
    sys.stdout.write(alloc.hostfile())
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    sc = scenario_from_args(args)
    broker = sc.broker()
    app = make_app(args.app, args.size)
    result = broker.request(
        build_request(args),
        rng=sc.streams.child("cli"),
        policy=args.policy,
    )
    report = SimJob(
        app,
        Placement.from_allocation(result.allocation),
        sc.cluster,
        sc.network,
    ).run()
    print(f"app={report.app} ranks={report.n_ranks} "
          f"nodes={len(report.nodes)} policy={result.allocation.policy}")
    print(f"time={report.total_time_s:.3f}s "
          f"compute={report.compute_time_s:.3f}s "
          f"comm={report.comm_time_s:.3f}s "
          f"({report.comm_fraction * 100:.0f}% communication)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    sc = scenario_from_args(args)
    app = make_app(args.app, args.size)
    comparison = compare_policies(
        sc, app, build_request(args), rng=sc.streams.child("cli")
    )
    elastic_cmp = None
    if args.elastic:
        from repro.elastic.experiment import run_elastic_comparison

        elastic_cmp = run_elastic_comparison(
            seed=args.seed,
            n_processes=args.procs,
            ppn=args.ppn,
        )
    if args.json:
        payload = {
            "app": args.app,
            "size": args.size,
            "n_processes": args.procs,
            "alpha": args.alpha,
            "runs": {
                name: {
                    "time_s": comparison.runs[name].time_s,
                    "n_nodes": comparison.runs[name].allocation.n_nodes,
                    "nodes": list(comparison.runs[name].allocation.nodes),
                }
                for name in POLICY_ORDER
            },
        }
        if elastic_cmp is not None:
            payload["elastic"] = elastic_cmp.to_dict()
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{'policy':>20s}  {'time (s)':>9s}  {'nodes':>5s}")
    for name in POLICY_ORDER:
        run = comparison.runs[name]
        print(f"{name:>20s}  {run.time_s:9.3f}  {run.allocation.n_nodes:5d}")
    if elastic_cmp is not None:
        print()
        _print_elastic_table(elastic_cmp)
    return 0


def _print_elastic_table(cmp) -> None:
    print(f"{'variant':>10s}  {'turnaround (s)':>14s}  {'makespan (s)':>12s}  "
          f"{'reconfigs':>9s}  {'failed':>6s}")
    for row in (cmp.static, cmp.elastic):
        print(f"{row.variant:>10s}  {row.stats.mean_turnaround_s:14.1f}  "
              f"{row.stats.makespan_s:12.1f}  {row.reconfigs:9d}  "
              f"{row.failed_migrations:6d}")
    print(f"elastic wins: turnaround {cmp.turnaround_improvement_pct:+.1f}%  "
          f"makespan {cmp.makespan_improvement_pct:+.1f}%")


def cmd_elastic(args: argparse.Namespace) -> int:
    from repro.elastic.experiment import run_elastic_comparison

    cmp = run_elastic_comparison(
        seed=args.seed,
        scenario=args.scenario,
        n_nodes=args.nodes,
        n_jobs=args.jobs,
        n_processes=args.procs,
        ppn=args.ppn,
        drift_intensity=args.intensity,
        migration_failure_rate=args.failure_rate,
        reprice_period_s=args.reprice_period_s,
    )
    if args.json:
        out = cmp.to_dict()
        if args.events:
            out["elastic"]["events"] = list(cmp.elastic.reconfig_events)
        print(json.dumps(out, indent=2))
        return 0
    _print_elastic_table(cmp)
    if args.events:
        for ev in cmp.elastic.reconfig_events:
            print(f"  t={ev['time']:8.0f}s lease={ev['lease_id']} "
                  f"{ev['kind']:>7s} {ev['outcome']:>9s} "
                  f"gain={ev.get('predicted_gain', 0.0):+.3f}")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet.experiment import run_fleet_comparison

    cmp = run_fleet_comparison(
        seed=args.seed,
        scenario=args.scenario,
        n_nodes=args.nodes,
        n_jobs=args.jobs,
        n_processes=args.procs,
        ppn=args.ppn,
        interarrival_s=args.interarrival_s,
        warmup_s=args.warmup_s,
        drift_intensity=args.intensity,
        utility_seed=args.utility_seed,
    )
    if args.json:
        print(json.dumps(cmp.to_dict(), indent=2))
        return 0
    print(f"{'variant':>8s}  {'turnaround (s)':>14s}  {'wait (s)':>9s}  "
          f"{'util':>5s}  {'reconfigs':>9s}  {'passes':>6s}  {'actions':>7s}")
    for row in (cmp.static, cmp.elastic, cmp.fleet):
        print(f"{row.variant:>8s}  {row.stats.mean_turnaround_s:14.1f}  "
              f"{row.stats.mean_wait_s:9.1f}  {row.utilization:5.3f}  "
              f"{row.reconfigs:9d}  {row.fleet_passes:6d}  "
              f"{row.fleet_actions:7d}")
    print(f"elastic vs static {cmp.elastic_vs_static_pct:+.1f}%  "
          f"fleet vs static {cmp.fleet_vs_static_pct:+.1f}%  "
          f"fleet vs elastic {cmp.fleet_vs_elastic_pct:+.1f}%  "
          f"utilization {cmp.fleet_utilization_delta:+.3f}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos.runner import main as chaos_main

    only = None
    if args.only:
        only = [s for chunk in args.only for s in chunk.split(",") if s]
    try:
        return chaos_main(
            seed=args.seed,
            only=only,
            smoke=args.smoke,
            world=args.scenario,
            list_only=args.list,
            as_json=args.json,
            verbose=args.verbose,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2


def cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_comparison
    from repro.scenarios import get_scenario, list_scenarios

    if args.action == "list":
        if args.json:
            print(json.dumps([
                {
                    "name": name,
                    "description": get_scenario(name).description,
                    "smoke": get_scenario(name).smoke,
                    "paper": get_scenario(name).paper,
                }
                for name in list_scenarios()
            ], indent=2))
            return 0
        for name in list_scenarios():
            spec = get_scenario(name)
            tags = "".join(
                f" [{t}]" for t, on in
                (("paper", spec.paper), ("smoke", spec.smoke)) if on
            )
            print(f"{name:<14s} {spec.description}{tags}")
        return 0
    # action == "run"
    try:
        get_scenario(args.name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    result = run_comparison(
        args.name,
        seed=args.seed,
        n_jobs=args.jobs,
        n_processes=args.procs,
        ppn=args.ppn,
    )
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return 0
    means = result.mean_times()
    print(f"scenario={result.scenario} seed={result.seed} "
          f"jobs={len(result.jobs)}")
    print(f"{'policy':>20s}  {'mean time (s)':>13s}")
    for name in POLICY_ORDER:
        if name in means:
            print(f"{name:>20s}  {means[name]:13.3f}")
    print(f"allocate vs random {result.improvement_pct('random'):+.1f}%  "
          f"vs sequential {result.improvement_pct('sequential'):+.1f}%")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.workload.traces import TraceRecorder

    sc = scenario_from_args(args, warmup_s=0.0, with_monitoring=False)
    rec = TraceRecorder(sc.engine, sc.cluster, period_s=args.period_s)
    sc.engine.run(args.hours * 3600.0)
    trace = rec.finish()
    text = trace.to_csv(args.output)
    if args.output:
        print(f"wrote {len(trace.times)} samples x {len(trace.nodes)} nodes "
              f"to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _int_list(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(v) for v in text.split(",") if v)
    except ValueError:
        raise SystemExit(f"expected comma-separated integers, got {text!r}")


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import figures, tables

    grid_kwargs: dict = {"seed": args.seed, "repeats": args.repeats}
    if args.procs:
        grid_kwargs["proc_counts"] = _int_list(args.procs)
    if args.sizes:
        grid_kwargs["sizes"] = _int_list(args.sizes)

    name = args.artifact
    if name == "fig1":
        print(figures.fig1(seed=args.seed, hours=args.hours).render())
    elif name == "fig2":
        print(figures.fig2(seed=args.seed).render())
    elif name in ("fig4", "fig5", "table2"):
        grid = figures.fig4(**grid_kwargs)
        if name == "fig4":
            print(figures.render_fig4(grid))
        elif name == "fig5":
            print(figures.render_fig5(figures.fig5(grid)))
        else:
            print(tables.table2(grid).render(table_no=2))
    elif name in ("fig6", "table3"):
        grid = figures.fig6(**grid_kwargs)
        if name == "fig6":
            print(figures.render_fig6(grid))
        else:
            print(tables.table3(grid).render(table_no=3))
    elif name == "table4":
        print(tables.table4(seed=args.seed).render())
    elif name == "fig7":
        print(figures.fig7(seed=args.seed).render())
    else:
        raise SystemExit(f"unknown artifact {name!r}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.broker import BrokerServer, BrokerService
    from repro.monitor.snapshot import CachedSnapshotSource

    sc = scenario_from_args(args)
    refresh_hook = None
    if args.advance_on_refresh_s > 0:
        refresh_hook = lambda: sc.advance(args.advance_on_refresh_s)  # noqa: E731
    source = CachedSnapshotSource(
        sc.snapshot,
        max_age_s=args.snapshot_max_age_s,
        refresh_hook=refresh_hook,
        incremental=args.incremental,
    )
    shards = getattr(args, "shards", 0)
    if shards > 0:
        from repro.federation.daemon import FederationDaemon
        from repro.federation.router import build_federation
        from repro.federation.sharding import (
            snapshot_switches,
            subtree_partition,
        )

        partition = subtree_partition(snapshot_switches(source()), shards)
        router = build_federation(
            source,
            partition,
            default_policy=args.policy,
            default_ttl_s=args.default_ttl_s,
            max_ttl_s=args.max_ttl_s,
            wait_threshold_load_per_core=args.wait_threshold,
        )
        server = FederationDaemon(
            router,
            host=args.host,
            port=args.port,
            batch_window_s=args.batch_window_ms / 1e3,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            sweep_period_s=args.sweep_period_s,
        )
        banner = f"federation ({len(partition)} shards) listening on"
    else:
        service = BrokerService(
            source,
            default_policy=args.policy,
            default_ttl_s=args.default_ttl_s,
            max_ttl_s=args.max_ttl_s,
            wait_threshold_load_per_core=args.wait_threshold,
            rng=sc.streams.child("broker"),
        )
        server = BrokerServer(
            service,
            host=args.host,
            port=args.port,
            batch_window_s=args.batch_window_ms / 1e3,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            sweep_period_s=args.sweep_period_s,
        )
        banner = "broker listening on"

    async def run() -> None:
        host, port = await server.start()
        print(f"{banner} {host}:{port}", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("broker stopped", flush=True)
    return 0


def cmd_federate(args: argparse.Namespace) -> int:
    """Build a federation over the paper cluster and show its routing."""
    from repro.broker.protocol import AllocateParams, ProtocolError
    from repro.federation.router import build_federation
    from repro.federation.sharding import snapshot_switches, subtree_partition
    from repro.monitor.snapshot import CachedSnapshotSource

    sc = scenario_from_args(args)
    source = CachedSnapshotSource(sc.snapshot, max_age_s=1e9)
    partition = subtree_partition(snapshot_switches(source()), args.shards)
    router = build_federation(source, partition)
    out = router.allocate_batch([
        AllocateParams(
            n_processes=args.procs,
            ppn=args.ppn if args.ppn > 0 else None,
            alpha=args.alpha,
        )
    ])[0]
    report = router.shards()
    if isinstance(out, ProtocolError):
        grant: dict = {"error": out.code, "message": out.message}
    else:
        grant = {
            "lease_id": out["lease_id"],
            "policy": out["policy"],
            "nodes": list(out["nodes"]),
            "cross_shard": str(out["lease_id"]).startswith("x:"),
        }
    if args.json:
        print(json.dumps({"shards": report["shards"], "grant": grant},
                         indent=2))
        return 0 if "error" not in grant else 1
    print(f"{len(report['shards'])} shard(s) over "
          f"{sum(r['n_nodes'] for r in report['shards'])} nodes:")
    for row in report["shards"]:
        print(f"  {row['shard']}: nodes={row['n_nodes']} "
              f"free_procs={row['free_procs']} "
              f"mean_cl={row['mean_cl']:.3f} mean_nl={row['mean_nl']:.3f} "
              f"score={row['score']:.3f}"
              + ("" if row["alive"] else " [down]"))
    if "error" in grant:
        print(f"allocate {args.procs} procs: error {grant['error']}: "
              f"{grant['message']}")
        return 1
    kind = "cross-shard" if grant["cross_shard"] else "single-shard"
    print(f"allocate {args.procs} procs -> {kind} lease "
          f"{grant['lease_id']} over {len(grant['nodes'])} node(s)")
    return 0


def cmd_client(args: argparse.Namespace) -> int:
    from repro.broker import BrokerClient, BrokerError

    client = BrokerClient(
        host=args.host,
        port=args.port,
        timeout_s=args.timeout_s,
        connect_retries=args.connect_retries,
        seed=args.client_seed,
    )
    try:
        with client:
            return args.client_func(client, args)
    except BrokerError as exc:
        print(f"error: {exc.code}: {exc.message}", file=sys.stderr)
        return 1


def client_allocate(client, args: argparse.Namespace) -> int:
    grant = client.allocate(
        args.procs,
        ppn=args.ppn,
        alpha=args.alpha,
        policy=args.policy,
        ttl_s=args.ttl_s,
    )
    if args.json:
        print(json.dumps({
            "lease_id": grant.lease_id,
            "policy": grant.policy,
            "nodes": list(grant.nodes),
            "procs": dict(grant.procs),
            "hostfile": grant.hostfile,
            "ttl_s": grant.ttl_s,
            "expires_at": grant.expires_at,
        }, indent=2))
        return 0
    print(f"# lease={grant.lease_id} policy={grant.policy} "
          f"ttl={grant.ttl_s:.0f}s")
    sys.stdout.write(grant.hostfile)
    return 0


def client_renew(client, args: argparse.Namespace) -> int:
    result = client.renew(args.lease_id, ttl_s=args.ttl_s)
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(f"lease {result['lease_id']} renewed: ttl={result['ttl_s']:.0f}s "
              f"renewals={result['renewals']}")
    return 0


def client_release(client, args: argparse.Namespace) -> int:
    result = client.release(args.lease_id)
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(f"lease {result['lease_id']} released "
              f"({len(result['nodes'])} nodes freed)")
    return 0


def client_reconfigure(client, args: argparse.Namespace) -> int:
    result = client.reconfigure(
        args.lease_id, remaining_s=args.remaining_s, alpha=args.alpha
    )
    if args.json:
        print(json.dumps(result, indent=2))
        return 0
    if not result.get("reconfigured"):
        print(f"lease {args.lease_id}: staying put ({result.get('reason')})")
        return 0
    print(f"# lease={result['lease_id']} kind={result['kind']} "
          f"gain={result['predicted_gain']:+.3f} "
          f"cost={result['cost_s']:.1f}s "
          f"drop={','.join(result['drop_nodes']) or '-'}")
    sys.stdout.write(result["hostfile"])
    return 0


def client_status(client, args: argparse.Namespace) -> int:
    result = client.status()
    if args.json:
        print(json.dumps(result, indent=2))
        return 0
    m = result["metrics"]
    lat = m["decision_latency_ms"]
    print(f"broker v{result['protocol_version']} "
          f"uptime={result['uptime_s']:.1f}s policy={result['policy']}")
    print(f"leases: active={result['leases']['active']} "
          f"nodes_held={result['leases']['nodes_held']}")
    print(f"decisions: granted={m['granted']} denied={m['denied']} "
          f"busy_rejected={m['busy_rejected']} expired={m['expired']} "
          f"memoized={m['decisions_memoized']}")
    print(f"reconfigure: committed={m['reconfigured']} "
          f"rejected={m['reconfig_rejected']}")
    print(f"protocol: errors={m['protocol_errors']} "
          f"malformed={m['malformed_lines']} "
          f"oversized={m['oversized_requests']}")
    print(f"batches: {m['batches']} sizes={m['batch_size_hist']}")
    print(f"latency: p50={lat['p50']:.3f}ms p99={lat['p99']:.3f}ms "
          f"max={lat['max']:.3f}ms")
    return 0


def client_fleet_plan(client, args: argparse.Namespace) -> int:
    result = client.fleet_plan(
        dry_run=args.dry_run, max_actions=args.max_actions
    )
    if args.json:
        print(json.dumps(result, indent=2))
        return 0
    mode = "dry-run" if result["dry_run"] else "executed"
    print(f"fleet pass ({mode}): considered={result['considered']} "
          f"planned={len(result['planned'])} applied={result['applied']} "
          f"failed={result['failed']} "
          f"objective_gain={result['objective_gain']:+.3f}")
    for action in result["planned"]:
        print(f"  {action['lease_id']} {action['kind']:>7s} "
              f"gain={action['predicted_gain']:+.3f}")
    for skip in result["skipped"]:
        print(f"  {skip['lease_id']} skipped: {skip['reason']}")
    return 0


def client_fleet_status(client, args: argparse.Namespace) -> int:
    result = client.fleet_status()
    if args.json:
        print(json.dumps(result, indent=2))
        return 0
    print(f"fleet: passes={result['passes']} "
          f"applied={result['actions_applied']} "
          f"failed={result['actions_failed']}")
    limiter = result.get("rate_limiter")
    if limiter is not None:
        print(f"rate limiter: {limiter['in_window']}/{limiter['max_actions']} "
              f"actions in the last {limiter['window_s']:.0f}s")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import main as lint_main

    return lint_main(getattr(args, "lint_args", []))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Network and load-aware resource manager (ICPP'20 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("allocate", help="print a hostfile for a request")
    add_scenario_args(p)
    add_request_args(p)
    p.add_argument("--policy", default="network_load_aware")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of a hostfile")
    p.set_defaults(func=cmd_allocate)

    p = sub.add_parser("simulate", help="allocate and price an app run")
    add_scenario_args(p)
    add_request_args(p)
    p.add_argument("--policy", default="network_load_aware")
    p.add_argument("--app", default="minimd", choices=sorted(APPS))
    p.add_argument("--size", type=int, default=16,
                   help="problem size (s for miniMD, nx for miniFE, n for stencil)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("compare", help="run all four §5 policies once")
    add_scenario_args(p)
    add_request_args(p)
    p.add_argument("--app", default="minimd", choices=sorted(APPS))
    p.add_argument("--size", type=int, default=16)
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of a table")
    p.add_argument("--elastic", action="store_true",
                   help="additionally run the static-vs-elastic DES "
                        "comparison under drifting load (same seed)")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "elastic",
        help="static vs. elastic scheduling under drifting load",
    )
    p.add_argument("--seed", type=int, default=0, help="simulation seed")
    p.add_argument("--nodes", type=int, default=12)
    p.add_argument("--jobs", type=int, default=6)
    p.add_argument("-n", "--procs", type=int, default=8)
    p.add_argument("--ppn", type=int, default=4)
    p.add_argument("--intensity", type=float, default=1.0,
                   help="drift intensity multiplier for the OU excursions")
    p.add_argument("--failure-rate", type=float, default=0.0,
                   help="probability an accepted migration fails mid-flight")
    p.add_argument("--reprice-period-s", type=float, default=30.0)
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="registered world scenario "
                        "(default: legacy uniform tree)")
    p.add_argument("--events", action="store_true",
                   help="also print each reconfiguration event")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_elastic)

    p = sub.add_parser(
        "fleet",
        help="static vs. per-job-elastic vs. fleet-elastic comparison",
    )
    p.add_argument("--seed", type=int, default=0, help="simulation seed")
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--jobs", type=int, default=6)
    p.add_argument("-n", "--procs", type=int, default=8)
    p.add_argument("--ppn", type=int, default=4)
    p.add_argument("--interarrival-s", type=float, default=240.0,
                   help="job interarrival; short values oversubscribe")
    p.add_argument("--warmup-s", type=float, default=1800.0)
    p.add_argument("--intensity", type=float, default=1.0,
                   help="drift intensity multiplier for the OU excursions")
    p.add_argument("--utility-seed", type=int, default=0,
                   help="seed for the per-job-class speedup curves")
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="registered world scenario "
                        "(default: legacy uniform tree)")
    p.add_argument("--json", action="store_true")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "chaos",
        help="run the deterministic fault-injection scenario harness",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="drives faults, workload, and targets identically")
    p.add_argument("--only", action="append", default=None,
                   metavar="NAME[,NAME...]",
                   help="run only these scenarios (repeatable)")
    p.add_argument("--smoke", action="store_true",
                   help="run only the fast CI smoke trio")
    p.add_argument("--scenario", default=None, metavar="NAME",
                   help="registered world scenario to inject faults "
                        "into (default: legacy uniform tree)")
    p.add_argument("--list", action="store_true",
                   help="list available scenarios and exit")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable reports")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print each injected fault")
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "scenarios",
        help="list registered world scenarios or run one end-to-end",
    )
    scen_sub = p.add_subparsers(dest="action", required=True)
    pl = scen_sub.add_parser("list", help="list the registered matrix")
    pl.add_argument("--json", action="store_true")
    pl.set_defaults(func=cmd_scenarios)
    pr = scen_sub.add_parser(
        "run", help="four-policy comparison over one scenario's job stream"
    )
    pr.add_argument("name", help="registered scenario name")
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("--jobs", type=int, default=5)
    pr.add_argument("-n", "--procs", type=int, default=16)
    pr.add_argument("--ppn", type=int, default=4)
    pr.add_argument("--json", action="store_true")
    pr.set_defaults(func=cmd_scenarios)

    p = sub.add_parser("trace", help="record resource usage to CSV")
    add_scenario_args(p)
    p.add_argument("--hours", type=float, default=24.0)
    p.add_argument("--period-s", type=float, default=300.0)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("report", help="regenerate a paper figure/table")
    add_scenario_args(p)
    p.add_argument(
        "artifact",
        choices=["fig1", "fig2", "fig4", "fig5", "fig6", "fig7",
                 "table2", "table3", "table4"],
    )
    p.add_argument("--hours", type=float, default=48.0)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument(
        "--procs", default=None,
        help="comma-separated process counts for grid artifacts "
             "(default: the paper's)",
    )
    p.add_argument(
        "--sizes", default=None,
        help="comma-separated problem sizes for grid artifacts",
    )
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("serve", help="run the allocation broker daemon")
    add_scenario_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7077,
                   help="TCP port (0 picks an ephemeral port)")
    p.add_argument("--policy", default="network_load_aware")
    p.add_argument("--default-ttl-s", type=float, default=60.0,
                   help="lease TTL when the client doesn't pick one")
    p.add_argument("--max-ttl-s", type=float, default=3600.0)
    p.add_argument("--batch-window-ms", type=float, default=0.0,
                   help="extra time to wait for micro-batch stragglers "
                        "(0 = adaptive: batch whatever queued during the "
                        "previous decision)")
    p.add_argument("--max-batch", type=int, default=64)
    p.add_argument("--max-queue", type=int, default=128,
                   help="admission queue bound; overflow answers BUSY")
    p.add_argument("--sweep-period-s", type=float, default=1.0,
                   help="how often expired leases are reclaimed")
    p.add_argument("--snapshot-max-age-s", type=float, default=5.0,
                   help="serve decisions from a snapshot at most this old")
    p.add_argument("--incremental", action="store_true",
                   help="refresh snapshots via delta patches (migrates the "
                        "cached LoadState instead of rebuilding; structural "
                        "changes still fall back to a full rebuild)")
    p.add_argument("--advance-on-refresh-s", type=float, default=5.0,
                   help="simulated seconds the cluster advances per "
                        "snapshot refresh (0 = frozen cluster)")
    p.add_argument("--wait-threshold", type=float, default=None,
                   help="§6 saturation guard: mean load/core above which "
                        "allocate answers WAIT")
    p.add_argument("--shards", type=int, default=0,
                   help="run a sharded federation instead of one broker: "
                        "partition the cluster into up to N switch-subtree "
                        "shards behind a scoring router (0 = single broker)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "federate",
        help="build a sharded federation and show its routing",
    )
    add_scenario_args(p)
    add_request_args(p)
    p.add_argument("--shards", type=int, default=4,
                   help="target shard count (whole switch subtrees)")
    p.add_argument("--json", action="store_true",
                   help="print shard aggregates and the grant as JSON")
    p.set_defaults(func=cmd_federate)

    p = sub.add_parser("client", help="talk to a running broker daemon")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7077)
    p.add_argument("--timeout-s", type=float, default=10.0)
    p.add_argument("--connect-retries", type=int, default=20)
    p.add_argument("--seed", dest="client_seed", type=int, default=None,
                   help="seed for retry-jitter (default: $REPRO_CLIENT_SEED "
                        "or 0, so retry schedules replay byte-identically)")
    csub = p.add_subparsers(dest="client_command", required=True)

    c = csub.add_parser("allocate", help="request nodes and a lease")
    c.add_argument("-n", "--procs", type=int, default=32)
    c.add_argument("--ppn", type=int, default=None)
    c.add_argument("--alpha", type=float, default=0.3)
    c.add_argument("--policy", default=None)
    c.add_argument("--ttl-s", type=float, default=None)
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_client, client_func=client_allocate)

    c = csub.add_parser("renew", help="extend a lease's TTL")
    c.add_argument("lease_id")
    c.add_argument("--ttl-s", type=float, default=None)
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_client, client_func=client_renew)

    c = csub.add_parser("release", help="release a lease")
    c.add_argument("lease_id")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_client, client_func=client_release)

    c = csub.add_parser(
        "reconfigure", help="replan a lease against current conditions"
    )
    c.add_argument("lease_id")
    c.add_argument("--remaining-s", type=float, default=None,
                   help="estimated remaining job runtime (amortizes the "
                        "migration bill; default: lease's remaining TTL)")
    c.add_argument("--alpha", type=float, default=None,
                   help="override the Eq-4 trade-off recorded at grant time")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_client, client_func=client_reconfigure)

    c = csub.add_parser("status", help="daemon status and metrics")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_client, client_func=client_status)

    c = csub.add_parser(
        "fleet-plan", help="run one global malleability pass on the broker"
    )
    c.add_argument("--dry-run", action="store_true",
                   help="plan and report without executing any action")
    c.add_argument("--max-actions", type=int, default=8)
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_client, client_func=client_fleet_plan)

    c = csub.add_parser("fleet-status", help="fleet-pass counters")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_client, client_func=client_fleet_status)

    # `lint` forwards everything after the verb to the analysis CLI (see
    # main(): argparse.REMAINDER cannot forward leading options).
    p = sub.add_parser(
        "lint",
        help="run the static invariant checks (see docs/ANALYSIS.md)",
    )
    p.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Forwarded verbatim: the lint engine owns its own argparse
        # (argparse.REMAINDER would swallow leading --options here).
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
