"""Command-line interface: ``python -m repro <command>``.

Commands operate on a freshly built simulated paper cluster (seeded, so
every invocation is reproducible):

* ``allocate`` — request nodes and print an MPICH-style hostfile;
* ``simulate`` — allocate and price a miniMD/miniFE/stencil run;
* ``compare``  — the §5 four-policy comparison at one configuration;
* ``trace``    — record cluster resource usage to CSV (Figure 1 data);
* ``report``   — regenerate a figure/table of the paper by name.
"""

from __future__ import annotations

import argparse
import sys

from repro.apps.base import AppModel
from repro.apps.fft import FFT3D
from repro.apps.minife import MiniFE
from repro.apps.minimd import MiniMD
from repro.apps.stencil import Stencil3D
from repro.core.policies import AllocationRequest
from repro.core.weights import TradeOff
from repro.experiments.runner import POLICY_ORDER, compare_policies
from repro.experiments.scenario import paper_scenario
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement

APPS = {"minimd": MiniMD, "minife": MiniFE, "stencil": Stencil3D, "fft": FFT3D}


def make_app(name: str, size: int) -> AppModel:
    try:
        return APPS[name](size)
    except KeyError:
        raise SystemExit(f"unknown app {name!r}; choose from {sorted(APPS)}")


def add_scenario_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=0, help="simulation seed")
    p.add_argument(
        "--warmup-min", type=float, default=30.0,
        help="background warm-up before acting (simulated minutes)",
    )


def add_request_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("-n", "--procs", type=int, default=32)
    p.add_argument("--ppn", type=int, default=4, help="processes per node")
    p.add_argument(
        "--alpha", type=float, default=0.3,
        help="compute weight (beta = 1 - alpha weighs the network)",
    )


def build_request(args: argparse.Namespace) -> AllocationRequest:
    return AllocationRequest(
        n_processes=args.procs,
        ppn=args.ppn,
        tradeoff=TradeOff.from_alpha(args.alpha),
    )


def cmd_allocate(args: argparse.Namespace) -> int:
    sc = paper_scenario(seed=args.seed, warmup_s=args.warmup_min * 60.0)
    broker = sc.broker()
    result = broker.request(
        build_request(args),
        rng=sc.streams.child("cli"),
        policy=args.policy,
    )
    alloc = result.allocation
    print(f"# policy={alloc.policy} overhead={result.overhead_ms:.2f}ms")
    sys.stdout.write(alloc.hostfile())
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    sc = paper_scenario(seed=args.seed, warmup_s=args.warmup_min * 60.0)
    broker = sc.broker()
    app = make_app(args.app, args.size)
    result = broker.request(
        build_request(args),
        rng=sc.streams.child("cli"),
        policy=args.policy,
    )
    report = SimJob(
        app,
        Placement.from_allocation(result.allocation),
        sc.cluster,
        sc.network,
    ).run()
    print(f"app={report.app} ranks={report.n_ranks} "
          f"nodes={len(report.nodes)} policy={result.allocation.policy}")
    print(f"time={report.total_time_s:.3f}s "
          f"compute={report.compute_time_s:.3f}s "
          f"comm={report.comm_time_s:.3f}s "
          f"({report.comm_fraction * 100:.0f}% communication)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    sc = paper_scenario(seed=args.seed, warmup_s=args.warmup_min * 60.0)
    app = make_app(args.app, args.size)
    comparison = compare_policies(
        sc, app, build_request(args), rng=sc.streams.child("cli")
    )
    print(f"{'policy':>20s}  {'time (s)':>9s}  {'nodes':>5s}")
    for name in POLICY_ORDER:
        run = comparison.runs[name]
        print(f"{name:>20s}  {run.time_s:9.3f}  {run.allocation.n_nodes:5d}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.workload.traces import TraceRecorder

    sc = paper_scenario(seed=args.seed, warmup_s=0.0, with_monitoring=False)
    rec = TraceRecorder(sc.engine, sc.cluster, period_s=args.period_s)
    sc.engine.run(args.hours * 3600.0)
    trace = rec.finish()
    text = trace.to_csv(args.output)
    if args.output:
        print(f"wrote {len(trace.times)} samples x {len(trace.nodes)} nodes "
              f"to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _int_list(text: str) -> tuple[int, ...]:
    try:
        return tuple(int(v) for v in text.split(",") if v)
    except ValueError:
        raise SystemExit(f"expected comma-separated integers, got {text!r}")


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import figures, tables

    grid_kwargs: dict = {"seed": args.seed, "repeats": args.repeats}
    if args.procs:
        grid_kwargs["proc_counts"] = _int_list(args.procs)
    if args.sizes:
        grid_kwargs["sizes"] = _int_list(args.sizes)

    name = args.artifact
    if name == "fig1":
        print(figures.fig1(seed=args.seed, hours=args.hours).render())
    elif name == "fig2":
        print(figures.fig2(seed=args.seed).render())
    elif name in ("fig4", "fig5", "table2"):
        grid = figures.fig4(**grid_kwargs)
        if name == "fig4":
            print(figures.render_fig4(grid))
        elif name == "fig5":
            print(figures.render_fig5(figures.fig5(grid)))
        else:
            print(tables.table2(grid).render(table_no=2))
    elif name in ("fig6", "table3"):
        grid = figures.fig6(**grid_kwargs)
        if name == "fig6":
            print(figures.render_fig6(grid))
        else:
            print(tables.table3(grid).render(table_no=3))
    elif name == "table4":
        print(tables.table4(seed=args.seed).render())
    elif name == "fig7":
        print(figures.fig7(seed=args.seed).render())
    else:
        raise SystemExit(f"unknown artifact {name!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Network and load-aware resource manager (ICPP'20 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("allocate", help="print a hostfile for a request")
    add_scenario_args(p)
    add_request_args(p)
    p.add_argument("--policy", default="network_load_aware")
    p.set_defaults(func=cmd_allocate)

    p = sub.add_parser("simulate", help="allocate and price an app run")
    add_scenario_args(p)
    add_request_args(p)
    p.add_argument("--policy", default="network_load_aware")
    p.add_argument("--app", default="minimd", choices=sorted(APPS))
    p.add_argument("--size", type=int, default=16,
                   help="problem size (s for miniMD, nx for miniFE, n for stencil)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("compare", help="run all four §5 policies once")
    add_scenario_args(p)
    add_request_args(p)
    p.add_argument("--app", default="minimd", choices=sorted(APPS))
    p.add_argument("--size", type=int, default=16)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("trace", help="record resource usage to CSV")
    add_scenario_args(p)
    p.add_argument("--hours", type=float, default=24.0)
    p.add_argument("--period-s", type=float, default=300.0)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("report", help="regenerate a paper figure/table")
    add_scenario_args(p)
    p.add_argument(
        "artifact",
        choices=["fig1", "fig2", "fig4", "fig5", "fig6", "fig7",
                 "table2", "table3", "table4"],
    )
    p.add_argument("--hours", type=float, default=48.0)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument(
        "--procs", default=None,
        help="comma-separated process counts for grid artifacts "
             "(default: the paper's)",
    )
    p.add_argument(
        "--sizes", default=None,
        help="comma-separated problem sizes for grid artifacts",
    )
    p.set_defaults(func=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
