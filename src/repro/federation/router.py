"""The federation router — scoring front-end over per-subtree shards.

One :class:`FederationRouter` fronts N :class:`~repro.broker.service.
BrokerService` shards, each deciding placements over its own slice of
the monitor snapshot (see :mod:`repro.monitor.slicing`) with a
namespaced lease table (``shard1:L00000001``).  The router duck-types
the ``BrokerService`` surface the daemon drives — ``allocate_batch`` /
``renew`` / ``release`` / ``reconfigure`` / ``status`` /
``sweep_expired`` plus a ``metrics`` object — so the whole asyncio
transport (admission queue, batcher, sweeper, pipelining) is reused
unchanged; :class:`~repro.federation.daemon.FederationDaemon` only adds
the two router verbs (``shards``, ``resolve``).

Routing is O(shards), not O(nodes): the router consults cheap per-shard
aggregates (total/free cores, *fleet-normalized* mean Equation-1/2
loads, quarantine counts — see
:class:`~repro.core.partition.PartitionedLoadState`) and forwards each
allocate to the best-scoring shard, spilling to the next candidates on
a capacity denial.  Lease operations route by the lease-id namespace
prefix, so they never touch a snapshot at all.

Jobs too big for any single shard take the **cross-shard path**: the
request is split greedily over the ranked shards and reserved on each
with a short TTL (the same reserve/rollback discipline as
:class:`~repro.elastic.executor.TwoPhaseExecutor` — rollback reuses its
:func:`~repro.elastic.executor.release_quietly`), then committed by
renewing every reservation to the real TTL.  Any failure in either
phase — a shard denying its slice, a shard dying mid-commit — rolls
back every reservation on every surviving shard, so the grant is atomic:
all shards or none, and even a router crash cannot strand nodes past
one sweep interval thanks to the reserve TTL.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.broker.metrics import BrokerMetrics
from repro.broker.protocol import (
    MAX_TOKEN_CHARS,
    PROTOCOL_VERSION,
    AllocateParams,
    ErrorCode,
    FleetPlanParams,
    ProtocolError,
    ReconfigureParams,
    ReleaseParams,
    RenewParams,
    ResolveParams,
    ShardsParams,
)
from repro.broker.service import BrokerService
from repro.core.arrays import PRUNE_KEEP_DEFAULT, PRUNE_THRESHOLD_DEFAULT
from repro.core.partition import PartitionedLoadState, ShardAggregate
from repro.core.policies import NetworkLoadAwarePolicy
from repro.core.weights import ComputeWeights, NetworkWeights
from repro.elastic.executor import release_quietly
from repro.util.atomic import atomic_between_awaits
from repro.monitor.delta import (
    SnapshotDelta,
    compose_deltas,
    snapshot_lineage,
    snapshot_step_delta,
)
from repro.monitor.slicing import ShardSnapshotSource
from repro.monitor.snapshot import ClusterSnapshot, SnapshotUnavailableError
from repro.scheduler.leases import Lease

#: lease-id namespace reserved for the router's own cross-shard leases
CROSS_SHARD_PREFIX = "x"

#: how many idempotency tokens the router remembers (LRU)
_TOKEN_MEMO_CAP = 4096

#: how many parent step deltas the router logs so lagging shard slices
#: can catch up by composition instead of a full re-slice
_DELTA_LOG_CAP = 128


@dataclass
class Shard:
    """One federation member: a broker service plus liveness state.

    ``alive`` is flipped by :meth:`FederationRouter.kill` /
    :meth:`FederationRouter.revive` — in production that models a shard
    process dying and being restarted; in the chaos harness it is the
    fault-injection seam.
    """

    shard_id: str
    service: BrokerService
    alive: bool = True
    #: the shard's sliced snapshot source, when the router wired it
    #: (:func:`build_federation`) — lets the router push delta catch-ups
    source: ShardSnapshotSource | None = None


class FederationRouter:
    """Scoring router over per-subtree broker shards.

    ``partition`` maps shard id → node names; ``services`` maps the same
    shard ids to their :class:`BrokerService` instances, whose lease
    tables must be namespaced ``"<shard_id>:"`` (prefer
    :func:`build_federation`, which wires all of this up).

    ``commit_hook``, when set, is called with the shard id immediately
    before each cross-shard commit — the seam the chaos harness uses to
    kill a shard mid-transaction.
    """

    def __init__(
        self,
        snapshot_source: Callable[[], ClusterSnapshot],
        partition: Mapping[str, tuple[str, ...]],
        services: Mapping[str, BrokerService],
        *,
        clock: Callable[[], float] = time.monotonic,
        reserve_ttl_s: float = 15.0,
        default_alpha: float = 0.3,
        compute_weights: ComputeWeights | None = None,
        network_weights: NetworkWeights | None = None,
        ppn: int | None = None,
        load_key: str = "m1",
        commit_hook: Callable[[str], None] | None = None,
    ) -> None:
        if not partition:
            raise ValueError("a federation needs at least one shard")
        if set(partition) != set(services):
            raise ValueError(
                f"partition shards {sorted(partition)} != "
                f"service shards {sorted(services)}"
            )
        if reserve_ttl_s <= 0:
            raise ValueError(
                f"reserve_ttl_s must be positive, got {reserve_ttl_s}"
            )
        for sid in partition:
            if not sid or ":" in sid or sid == CROSS_SHARD_PREFIX:
                raise ValueError(
                    f"invalid shard id {sid!r} (non-empty, no ':', "
                    f"not the reserved {CROSS_SHARD_PREFIX!r})"
                )
            ns = services[sid].leases.namespace
            if ns != f"{sid}:":
                raise ValueError(
                    f"shard {sid!r} service has lease namespace {ns!r}; "
                    f"expected {sid + ':'!r} — the router routes renew/"
                    "release by that prefix"
                )
        self._snapshots = snapshot_source
        self.partition = {s: tuple(nodes) for s, nodes in partition.items()}
        self._shards = {
            sid: Shard(sid, services[sid]) for sid in self.partition
        }
        self._clock = clock
        self.reserve_ttl_s = reserve_ttl_s
        self.default_alpha = default_alpha
        self._cw = compute_weights
        self._nw = network_weights
        self._ppn = ppn
        self._load_key = load_key
        self.commit_hook = commit_hook
        self.metrics = BrokerMetrics()
        # router-level counters (shard services keep their own metrics)
        self.forwards = 0
        self.spills = 0
        self.cross_shard_attempts = 0
        self.cross_shard_grants = 0
        self.cross_shard_rollbacks = 0
        self.cross_shard_reclaimed = 0
        self.shard_down_errors = 0
        # cross-shard leases: fed lease id → ((shard_id, member id), ...)
        self._fed_leases: dict[str, tuple[tuple[str, str], ...]] = {}
        self._next_fed_id = 1
        # idempotency: token → full result (cross-shard) or owning shard
        # (single-shard — the shard's own memo replays the grant)
        self._token_results: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._token_shard: OrderedDict[str, str] = OrderedDict()
        # PartitionedLoadState cache, keyed by snapshot identity
        self._plist: PartitionedLoadState | None = None
        self._plist_snapshot: ClusterSnapshot | None = None
        # parent step deltas by (serial, generation), for shard catch-up
        self._delta_log: OrderedDict[tuple[int, int], SnapshotDelta] = (
            OrderedDict()
        )
        self._started_at = clock()

    # ------------------------------------------------------------------
    # shard liveness (production: process supervision; chaos: the fault)

    def shard(self, shard_id: str) -> Shard:
        return self._shards[shard_id]

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(self._shards)

    def kill(self, shard_id: str) -> None:
        """Mark a shard dead; its lease table dies with the process."""
        shard = self._shards[shard_id]
        shard.alive = False
        for lease in shard.service.leases.active():
            release_quietly(shard.service.leases, lease)

    def revive(self, shard_id: str) -> None:
        """Re-admit a shard (restarted empty, as a real process would)."""
        self._shards[shard_id].alive = True

    def _live_service(self, shard_id: str) -> BrokerService:
        shard = self._shards[shard_id]
        if not shard.alive:
            self.shard_down_errors += 1
            raise ProtocolError(
                ErrorCode.SHARD_DOWN,
                f"shard {shard_id!r} is down; retry after it is re-admitted",
            )
        return shard.service

    # ------------------------------------------------------------------
    # aggregates and scoring

    def _partitioned(self) -> PartitionedLoadState:
        try:
            snapshot = self._snapshots()
        except SnapshotUnavailableError as exc:
            raise ProtocolError(ErrorCode.MONITOR_STALE, str(exc)) from None
        if snapshot is not self._plist_snapshot or self._plist is None:
            step = None
            if self._plist is not None and self._plist_snapshot is not None:
                step = snapshot_step_delta(snapshot, self._plist_snapshot)
            if step is not None:
                # one generation ahead on the same lineage: patch the
                # fleet arrays in O(changed) and log the step so shard
                # slices can catch up by delta composition
                self._plist = self._plist.advance(snapshot, step)
                serial, generation, _ = snapshot_lineage(snapshot)
                self._delta_log[(serial, generation)] = step
                while len(self._delta_log) > _DELTA_LOG_CAP:
                    self._delta_log.popitem(last=False)
            else:
                self._plist = PartitionedLoadState(
                    snapshot,
                    self.partition,
                    compute_weights=self._cw,
                    network_weights=self._nw,
                    ppn=self._ppn,
                    load_key=self._load_key,
                )
            self._plist_snapshot = snapshot
        return self._plist

    def _logged_steps(
        self, old: ClusterSnapshot, new: ClusterSnapshot
    ) -> list[SnapshotDelta] | None:
        """Every logged step delta from ``old`` up to ``new``, in order.

        ``None`` when the gap cannot be bridged — different lineage, or
        a step already evicted from the bounded log.
        """
        old_serial, old_generation, _ = snapshot_lineage(old)
        serial, generation, _ = snapshot_lineage(new)
        if serial != old_serial or generation <= old_generation:
            return None
        steps: list[SnapshotDelta] = []
        for g in range(old_generation + 1, generation + 1):
            step = self._delta_log.get((serial, g))
            if step is None:
                return None
            steps.append(step)
        return steps

    def _sync_shard_source(self, shard_id: str) -> None:
        """Catch the shard's sliced source up to the router's snapshot.

        The router sees every parent advance; member shards only see
        what they are asked to serve.  Before forwarding, the lagging
        slice is brought current with one composed O(changed) patch —
        the slice's own fallback (full re-slice + diff) runs only when
        the delta log cannot bridge the gap.
        """
        shard = self._shards[shard_id]
        parent = self._plist_snapshot
        if shard.source is None or parent is None:
            return
        old = shard.source.parent_snapshot
        if old is parent:
            return
        if old is not None:
            steps = self._logged_steps(old, parent)
            if steps is not None:
                shard.source.sync_to(parent, compose_deltas(steps))
                return
        shard.source.sync(parent)

    def _held_nodes(self) -> frozenset[str]:
        held: set[str] = set()
        for shard in self._shards.values():
            if shard.alive:
                held |= shard.service.leases.held_nodes()
        return frozenset(held)

    def _quarantined(self) -> frozenset[str]:
        quarantined: set[str] = set()
        for shard in self._shards.values():
            if shard.service.quarantine is not None:
                quarantined |= shard.service.quarantine.excluded()
        return frozenset(quarantined)

    @staticmethod
    def _score(agg: ShardAggregate, alpha: float) -> float:
        """Equation-4-shaped shard score (lower is better)."""
        return alpha * agg.mean_cl + (1.0 - alpha) * agg.mean_nl

    def _rank(
        self, aggs: Mapping[str, ShardAggregate], *, alpha: float
    ) -> list[str]:
        """Live shards with usable nodes, best score first.

        Ties prefer the freer shard, then the lexically first id — fully
        deterministic, so routing replays across runs.
        """
        candidates = [
            sid
            for sid, shard in self._shards.items()
            if shard.alive and aggs[sid].usable_nodes > 0
        ]
        return sorted(
            candidates,
            key=lambda sid: (
                self._score(aggs[sid], alpha),
                -aggs[sid].free_procs,
                sid,
            ),
        )

    @staticmethod
    def _fits(agg: ShardAggregate, params: AllocateParams) -> bool:
        """Whether the aggregates suggest the shard can host the job.

        ``free_procs`` uses the Equation-3 formula; an explicit ``ppn``
        caps or raises per-node capacity, so both estimates are tried —
        a false positive just costs one spill, a false negative would
        wrongly force the cross-shard path.
        """
        if agg.free_procs >= params.n_processes:
            return True
        return (
            params.ppn is not None
            and agg.usable_nodes * params.ppn >= params.n_processes
        )

    # ------------------------------------------------------------------
    # allocate

    def allocate_batch(
        self, batch: list[AllocateParams]
    ) -> list[dict[str, Any] | ProtocolError]:
        """Route each request to its best shard (the batcher's entry)."""
        if not batch:
            return []
        self.metrics.record_batch(len(batch))
        results: list[dict[str, Any] | ProtocolError] = []
        for params in batch:
            t0 = time.perf_counter()
            try:
                result: dict[str, Any] | ProtocolError = self._allocate_one(
                    params
                )
                granted = True
            except ProtocolError as exc:
                result = exc
                granted = False
            self.metrics.record_decision(
                time.perf_counter() - t0, granted=granted
            )
            results.append(result)
        return results

    def _allocate_one(self, params: AllocateParams) -> dict[str, Any]:
        token = params.token
        if token is not None:
            memo = self._token_results.get(token)
            if memo is not None:
                # A cross-shard grant whose response the client lost:
                # replay it verbatim, without touching any shard.
                self._token_results.move_to_end(token)
                self.metrics.allocates_deduped += 1
                return memo
            sticky = self._token_shard.get(token)
            if sticky is not None:
                # The token was already forwarded once; the same shard
                # must answer the retry so its own memo can dedupe.
                service = self._live_service(sticky)
                self.forwards += 1
                out = service.allocate_batch([params])[0]
                if isinstance(out, ProtocolError):
                    raise out
                return out

        plist = self._partitioned()
        held = self._held_nodes()
        quarantined = self._quarantined()
        aggs = plist.aggregates(held=held, quarantined=quarantined)
        ranked = self._rank(aggs, alpha=params.alpha)
        if not ranked:
            raise ProtocolError(
                ErrorCode.NO_CAPACITY,
                "no live shard has a usable node "
                f"({len(self._shards)} shard(s) configured)",
            )

        last_denial: ProtocolError | None = None
        first = True
        for sid in ranked:
            if not self._fits(aggs[sid], params):
                continue
            if not first:
                self.spills += 1
            first = False
            self.forwards += 1
            self._sync_shard_source(sid)
            out = self._shards[sid].service.allocate_batch([params])[0]
            if isinstance(out, ProtocolError):
                if out.code in (ErrorCode.NO_CAPACITY, ErrorCode.WAIT):
                    last_denial = out
                    continue
                raise out
            if token is not None:
                self._note_token_shard(token, sid)
            return out

        total_free = sum(aggs[sid].free_procs for sid in ranked)
        if len(ranked) >= 2 and total_free >= params.n_processes:
            return self._allocate_cross(params, ranked, aggs)
        if last_denial is not None:
            raise last_denial
        raise ProtocolError(
            ErrorCode.NO_CAPACITY,
            f"no shard can host {params.n_processes} processes and the "
            f"fleet holds only ~{total_free} free processor slots",
        )

    def _note_token_shard(self, token: str, shard_id: str) -> None:
        self._token_shard[token] = shard_id
        self._token_shard.move_to_end(token)
        while len(self._token_shard) > _TOKEN_MEMO_CAP:
            self._token_shard.popitem(last=False)

    # ------------------------------------------------------------------
    # cross-shard two-phase placement

    @staticmethod
    def _sub_token(token: str | None, shard_id: str) -> str | None:
        """A per-shard derivative of the client's idempotency token.

        Keeps shard-level replays idempotent too: a rolled-back reserve
        retried on the same shard returns the shard's original outcome.
        Hashed down when the suffix would blow the wire limit.
        """
        if token is None:
            return None
        sub = f"{token}@{shard_id}"
        if len(sub) > MAX_TOKEN_CHARS:
            sub = hashlib.sha256(sub.encode()).hexdigest()[:MAX_TOKEN_CHARS]
        return sub

    @atomic_between_awaits
    def _allocate_cross(
        self,
        params: AllocateParams,
        ranked: list[str],
        aggs: Mapping[str, ShardAggregate],
    ) -> dict[str, Any]:
        self.cross_shard_attempts += 1
        remaining = params.n_processes
        plan: list[tuple[str, int]] = []
        for sid in ranked:
            if remaining <= 0:
                break
            cap = aggs[sid].free_procs
            if params.ppn is not None:
                # an explicit ppn bounds what the shard can actually
                # grant, however many processor slots look free
                cap = min(cap, aggs[sid].usable_nodes * params.ppn)
            take = min(cap, remaining)
            if take <= 0:
                continue
            plan.append((sid, take))
            remaining -= take
        if remaining > 0 or len(plan) < 2:
            raise ProtocolError(
                ErrorCode.NO_CAPACITY,
                f"cannot split {params.n_processes} processes across "
                f"{len(ranked)} live shard(s)",
            )

        granted: list[tuple[str, dict[str, Any]]] = []
        renewed: list[dict[str, Any]] = []
        try:
            # Phase 1 — reserve each slice under a short TTL, exactly the
            # executor's reserve discipline: a crashed router strands
            # nothing past one shard sweep.
            for sid, take in plan:
                service = self._live_service(sid)
                sub = AllocateParams(
                    n_processes=take,
                    ppn=params.ppn,
                    alpha=params.alpha,
                    policy=params.policy,
                    ttl_s=self.reserve_ttl_s,
                    token=self._sub_token(params.token, sid),
                    priority=params.priority,
                )
                self.forwards += 1
                self._sync_shard_source(sid)
                out = service.allocate_batch([sub])[0]
                if isinstance(out, ProtocolError):
                    raise ProtocolError(
                        out.code,
                        f"shard {sid} denied its {take}-process slice: "
                        f"{out.message}",
                    )
                granted.append((sid, out))
            # Phase 2 — commit: renew every reservation to the real TTL.
            for sid, out in granted:
                if self.commit_hook is not None:
                    self.commit_hook(sid)
                service = self._live_service(sid)
                renewed.append(
                    service.renew(
                        RenewParams(
                            lease_id=out["lease_id"], ttl_s=params.ttl_s
                        )
                    )
                )
        except ProtocolError as exc:
            self._rollback_reserves(granted)
            self.cross_shard_rollbacks += 1
            raise ProtocolError(
                exc.code,
                f"cross-shard placement aborted ({exc.message}); "
                "all reservations rolled back",
            ) from None
        except BaseException:  # noqa: BLE001 — cleanup-and-reraise: a programming error propagates raw, but the reservations must never strand on surviving shards
            self._rollback_reserves(granted)
            self.cross_shard_rollbacks += 1
            raise

        members = tuple((sid, out["lease_id"]) for sid, out in granted)
        fed_id = f"{CROSS_SHARD_PREFIX}:F{self._next_fed_id:08d}"
        self._next_fed_id += 1
        self._fed_leases[fed_id] = members
        self.cross_shard_grants += 1
        result = self._compose_grant(fed_id, granted, renewed)
        if params.token is not None:
            self._token_results[params.token] = result
            while len(self._token_results) > _TOKEN_MEMO_CAP:
                self._token_results.popitem(last=False)
        return result

    def _rollback_reserves(
        self, granted: list[tuple[str, dict[str, Any]]]
    ) -> None:
        for sid, out in granted:
            shard = self._shards[sid]
            if not shard.alive:
                # The dead shard's lease table died with it; only the
                # survivors can (and must) be cleaned.
                continue
            leases = shard.service.leases
            release_quietly(leases, leases.get(out["lease_id"]))

    @staticmethod
    def _compose_grant(
        fed_id: str,
        granted: list[tuple[str, dict[str, Any]]],
        renewed: list[dict[str, Any]],
    ) -> dict[str, Any]:
        nodes: list[str] = []
        procs: dict[str, int] = {}
        hostfiles: list[str] = []
        costs = {"total_cost": 0.0, "compute_cost": 0.0, "network_cost": 0.0}
        costs_known = True
        for _, out in granted:
            nodes.extend(out["nodes"])
            procs.update(out["procs"])
            hostfiles.append(str(out["hostfile"]).rstrip("\n"))
            for key in costs:
                if out.get(key) is None:
                    costs_known = False
                else:
                    costs[key] += float(out[key])
        return {
            "lease_id": fed_id,
            "nodes": nodes,
            "procs": procs,
            "hostfile": "\n".join(h for h in hostfiles if h) + "\n",
            "policy": "federated",
            "ttl_s": min(r["ttl_s"] for r in renewed),
            "expires_at": min(r["expires_at"] for r in renewed),
            "snapshot_time": max(
                float(out.get("snapshot_time") or 0.0) for _, out in granted
            ),
            "total_cost": costs["total_cost"] if costs_known else None,
            "compute_cost": costs["compute_cost"] if costs_known else None,
            "network_cost": costs["network_cost"] if costs_known else None,
            "shards": {sid: out["lease_id"] for sid, out in granted},
        }

    # ------------------------------------------------------------------
    # lease lifecycle (prefix-routed)

    def _owner(self, lease_id: str) -> tuple[str, BrokerService]:
        sid, sep, _ = lease_id.partition(":")
        if not sep or sid not in self._shards:
            raise ProtocolError(
                ErrorCode.UNKNOWN_LEASE,
                f"lease {lease_id!r} does not name a federation shard",
            )
        return sid, self._live_service(sid)

    def renew(self, params: RenewParams) -> dict[str, Any]:
        """Extend a lease — fanning out over members for cross-shard ids."""
        members = self._fed_leases.get(params.lease_id)
        if members is None:
            _, service = self._owner(params.lease_id)
            return service.renew(params)
        outs = []
        for sid, member_id in members:
            service = self._live_service(sid)
            outs.append(
                service.renew(
                    RenewParams(lease_id=member_id, ttl_s=params.ttl_s)
                )
            )
        self.metrics.renewed += 1
        return {
            "lease_id": params.lease_id,
            "ttl_s": min(o["ttl_s"] for o in outs),
            "expires_at": min(o["expires_at"] for o in outs),
            "renewals": min(o["renewals"] for o in outs),
        }

    def release(self, params: ReleaseParams) -> dict[str, Any]:
        """End a lease — releasing every surviving member for cross-shard."""
        members = self._fed_leases.pop(params.lease_id, None)
        if members is None:
            _, service = self._owner(params.lease_id)
            return service.release(params)
        nodes: list[str] = []
        for sid, member_id in members:
            shard = self._shards[sid]
            if not shard.alive:
                continue
            try:
                out = shard.service.release(ReleaseParams(lease_id=member_id))
                nodes.extend(out["nodes"])
            except ProtocolError:
                pass  # member already expired/swept — freed either way
        self.metrics.released += 1
        return {
            "lease_id": params.lease_id,
            "released": True,
            "nodes": nodes,
        }

    def reconfigure(self, params: ReconfigureParams) -> dict[str, Any]:
        """Replan a single-shard lease in place (cross-shard: re-allocate)."""
        if params.lease_id in self._fed_leases:
            raise ProtocolError(
                ErrorCode.BAD_REQUEST,
                f"lease {params.lease_id} spans shards; cross-shard leases "
                "cannot be reconfigured in place — release and re-allocate",
            )
        _, service = self._owner(params.lease_id)
        return service.reconfigure(params)

    # ------------------------------------------------------------------
    # fleet passes (per-shard batches; cross-shard leases stay put)

    @atomic_between_awaits
    def fleet_plan(self, params: FleetPlanParams) -> dict[str, Any]:
        """One fleet pass over every live shard, as per-shard batches.

        Each shard plans and executes its own batch against its own
        slice — a shard's snapshot cannot price another shard's nodes,
        so migrations never cross the partition here (cross-shard moves
        go through the two-phase reserve path in :meth:`_allocate_cross`
        instead).  A dead shard is skipped, not fatal: the pass degrades
        to the surviving shards exactly as allocates do.  The
        ``max_actions`` budget applies *per shard*; the aggregate result
        reports the fleet-wide totals plus each shard's own report.
        """
        per_shard: dict[str, Any] = {}
        totals = {
            "considered": 0,
            "planned": 0,
            "applied": 0,
            "failed": 0,
            "skipped": 0,
        }
        objective_gain = 0.0
        for sid, shard in self._shards.items():
            if not shard.alive:
                per_shard[sid] = {"alive": False}
                continue
            self._sync_shard_source(sid)
            out = shard.service.fleet_plan(params)
            per_shard[sid] = out
            totals["considered"] += out["considered"]
            totals["planned"] += len(out["planned"])
            totals["applied"] += out["applied"]
            totals["failed"] += out["failed"]
            totals["skipped"] += len(out["skipped"])
            objective_gain += out["objective_gain"]
        if not params.dry_run:
            self.metrics.fleet_passes += 1
            self.metrics.fleet_actions_applied += totals["applied"]
            self.metrics.fleet_actions_failed += totals["failed"]
        return {
            "dry_run": params.dry_run,
            "objective_gain": objective_gain,
            "shards": per_shard,
            **totals,
        }

    def fleet_status(self) -> dict[str, Any]:
        """Aggregate ``fleet_status`` over live shards, plus per-shard rows."""
        per_shard: dict[str, Any] = {}
        passes = applied = failed = 0
        for sid, shard in self._shards.items():
            if not shard.alive:
                per_shard[sid] = {"alive": False}
                continue
            out = shard.service.fleet_status()
            per_shard[sid] = out
            passes += out["passes"]
            applied += out["actions_applied"]
            failed += out["actions_failed"]
        return {
            "passes": passes,
            "actions_applied": applied,
            "actions_failed": failed,
            "router_passes": self.metrics.fleet_passes,
            "shards": per_shard,
        }

    def sweep_expired(self) -> list[Lease]:
        """Sweep every live shard, then reap broken cross-shard leases.

        A cross-shard lease whose member expired (or whose shard died)
        can no longer be honoured whole; its surviving members are
        released so the atomic contract — all shards or none — holds
        for the sweeper too.
        """
        reclaimed: list[Lease] = []
        for shard in self._shards.values():
            if shard.alive:
                reclaimed.extend(shard.service.sweep_expired())
        for fed_id, members in list(self._fed_leases.items()):
            broken = any(
                not self._shards[sid].alive
                or self._shards[sid].service.leases.get(member_id) is None
                for sid, member_id in members
            )
            if not broken:
                continue
            for sid, member_id in members:
                shard = self._shards[sid]
                if shard.alive:
                    release_quietly(
                        shard.service.leases,
                        shard.service.leases.get(member_id),
                    )
            del self._fed_leases[fed_id]
            self.cross_shard_reclaimed += 1
        return reclaimed

    # ------------------------------------------------------------------
    # introspection verbs

    def _counters(self) -> dict[str, int]:
        return {
            "forwards": self.forwards,
            "spills": self.spills,
            "cross_shard_attempts": self.cross_shard_attempts,
            "cross_shard_grants": self.cross_shard_grants,
            "cross_shard_rollbacks": self.cross_shard_rollbacks,
            "cross_shard_reclaimed": self.cross_shard_reclaimed,
            "cross_shard_active": len(self._fed_leases),
            "shard_down_errors": self.shard_down_errors,
        }

    def shards(
        self, params: ShardsParams | None = None
    ) -> dict[str, Any]:
        """The ``shards`` verb: per-shard aggregates, scores, liveness."""
        held = self._held_nodes()
        quarantined = self._quarantined()
        try:
            plist: PartitionedLoadState | None = self._partitioned()
        except ProtocolError:
            plist = None  # stale monitor: still answer with liveness
        rows = []
        for sid, shard in self._shards.items():
            row: dict[str, Any] = {
                "shard": sid,
                "alive": shard.alive,
                "active_leases": len(shard.service.leases.active()),
            }
            if plist is not None:
                agg = plist.aggregate(
                    sid, held=held, quarantined=quarantined
                )
                row.update(agg.as_dict())
                row["score"] = self._score(agg, self.default_alpha)
            rows.append(row)
        return {
            "shards": rows,
            "cross_shard_leases": len(self._fed_leases),
            "counters": self._counters(),
        }

    def resolve(self, params: ResolveParams) -> dict[str, Any]:
        """The ``resolve`` verb: which shard owns a lease id."""
        lease_id = params.lease_id
        members = self._fed_leases.get(lease_id)
        if members is not None:
            return {
                "lease_id": lease_id,
                "cross_shard": True,
                "active": True,
                "members": [
                    {"shard": sid, "lease_id": member_id}
                    for sid, member_id in members
                ],
            }
        sid, sep, _ = lease_id.partition(":")
        if sep and sid in self._shards:
            shard = self._shards[sid]
            return {
                "lease_id": lease_id,
                "cross_shard": False,
                "shard": sid,
                "alive": shard.alive,
                "active": shard.alive
                and shard.service.leases.get(lease_id) is not None,
            }
        raise ProtocolError(
            ErrorCode.UNKNOWN_LEASE,
            f"lease {lease_id!r} is not owned by any federation shard",
        )

    def status(self) -> dict[str, Any]:
        """The ``status`` RPC result, shaped like a single broker's."""
        now = self._clock()
        per_shard: dict[str, Any] = {}
        total_active = 0
        total_held = 0
        for sid, shard in self._shards.items():
            active = len(shard.service.leases.active())
            held = len(shard.service.leases.held_nodes())
            total_active += active
            total_held += held
            metrics = shard.service.metrics
            per_shard[sid] = {
                "alive": shard.alive,
                "active_leases": active,
                "nodes_held": held,
                "n_nodes": len(self.partition[sid]),
                # per-shard malleability counters: both the reactive
                # reconfigure verb and fleet-pass commits land here
                "reconfigured": metrics.reconfigured,
                "reconfig_rejected": metrics.reconfig_rejected,
                "fleet_passes": metrics.fleet_passes,
                "fleet_actions_applied": metrics.fleet_actions_applied,
                "fleet_actions_failed": metrics.fleet_actions_failed,
            }
        return {
            "protocol_version": PROTOCOL_VERSION,
            "uptime_s": max(0.0, now - self._started_at),
            "policy": "federated",
            "leases": {
                "active": total_active,
                "nodes_held": total_held,
                "cross_shard": len(self._fed_leases),
            },
            "metrics": self.metrics.snapshot(),
            "federation": {
                "shards": per_shard,
                "counters": self._counters(),
            },
        }


def build_federation(
    snapshot_source: Callable[[], ClusterSnapshot],
    partition: Mapping[str, tuple[str, ...]],
    *,
    clock: Callable[[], float] = time.monotonic,
    reserve_ttl_s: float = 15.0,
    commit_hook: Callable[[str], None] | None = None,
    router_ppn: int | None = None,
    **service_kwargs: Any,
) -> FederationRouter:
    """Wire a full federation: sliced sources, namespaced shard services.

    Each shard gets a :class:`ShardSnapshotSource` over the parent
    source (identity-reuse + delta-patching of its slice) and a
    :class:`BrokerService` whose lease table is namespaced with the
    shard id.  ``service_kwargs`` go to every shard service verbatim.

    Shard services scale the network-load-aware policy's Algorithm-1
    prune threshold by 1/N (unless the caller supplies their own
    ``policy_overrides``): a shard holds ~1/N of the fleet, so dividing
    the threshold preserves the fleet broker's behaviour exactly — the
    federation prunes if and only if a single broker over the whole
    fleet would, instead of every shard dropping below the absolute
    threshold and paying the exhaustive seed scan the fleet broker
    never runs.
    """
    if "policy_overrides" not in service_kwargs:
        threshold = max(1, PRUNE_THRESHOLD_DEFAULT // max(1, len(partition)))
        service_kwargs["policy_overrides"] = {
            "network_load_aware": NetworkLoadAwarePolicy(
                prune_threshold=threshold, prune_keep=PRUNE_KEEP_DEFAULT
            )
        }
    services: dict[str, BrokerService] = {}
    sources: dict[str, ShardSnapshotSource] = {}
    for sid, nodes in partition.items():
        sources[sid] = ShardSnapshotSource(snapshot_source, nodes)
        services[sid] = BrokerService(
            sources[sid],
            clock=clock,
            lease_namespace=f"{sid}:",
            **service_kwargs,
        )
    router = FederationRouter(
        snapshot_source,
        partition,
        services,
        clock=clock,
        reserve_ttl_s=reserve_ttl_s,
        ppn=router_ppn,
        commit_hook=commit_hook,
    )
    for sid, source in sources.items():
        router.shard(sid).source = source
    return router
