"""Switch-subtree sharding — the node space cut along the topology.

A federation shard owns whole leaf-switch subtrees, never fractions of
one: intra-subtree links are the cheap links (one hop through the leaf
switch), so keeping a subtree inside one shard means each shard's
Equations 1–3 see every link that matters for its own placements, and
only inter-switch traffic crosses shard boundaries — which the router
accounts for at aggregate granularity.

:func:`subtree_partition` does the cut deterministically: subtrees are
sorted largest-first and greedily assigned to the currently lightest
shard (ties broken by name/index), so the same topology always yields
the same partition — a requirement for lease-prefix routing to survive
router restarts.
"""

from __future__ import annotations

from typing import Mapping

from repro.monitor.snapshot import ClusterSnapshot


def snapshot_switches(snapshot: ClusterSnapshot) -> dict[str, str]:
    """node → leaf-switch name, from the monitor's static specs.

    Nodes the monitor knows no topology for (``switch is None``) each
    become their own singleton pseudo-subtree (``~<node>``), so they
    spread across shards instead of clumping into one.
    """
    return {
        name: (view.switch or f"~{name}")
        for name, view in snapshot.nodes.items()
    }


def subtree_partition(
    node_switches: Mapping[str, str | None], n_shards: int
) -> dict[str, tuple[str, ...]]:
    """Partition nodes into ≤ ``n_shards`` shards of whole subtrees.

    Returns ``{"shard1": (nodes...), ...}``.  Fewer shards than asked
    come back when there are fewer subtrees than ``n_shards`` — a
    subtree is never split.  Deterministic in its inputs.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if not node_switches:
        raise ValueError("cannot partition an empty node set")
    groups: dict[str, list[str]] = {}
    for node, switch in node_switches.items():
        groups.setdefault(switch or f"~{node}", []).append(node)
    # Largest subtree first, greedily onto the lightest shard: classic
    # LPT balancing, deterministic via the (size, name) sort key.
    order = sorted(groups, key=lambda s: (-len(groups[s]), s))
    n = min(n_shards, len(groups))
    members: list[list[str]] = [[] for _ in range(n)]
    loads = [0] * n
    for switch in order:
        i = min(range(n), key=lambda k: (loads[k], k))
        members[i].extend(groups[switch])
        loads[i] += len(groups[switch])
    return {f"shard{i + 1}": tuple(members[i]) for i in range(n)}
