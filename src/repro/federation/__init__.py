"""Sharded broker federation: per-subtree shards behind a scoring router.

The single broker runs the paper's Algorithms 1–2 over every node of
the fleet for every decision; past a few thousand nodes that per-
decision ceiling dominates.  This package removes it by partitioning
the node space along the switch topology:

* :mod:`repro.federation.sharding` — deterministic whole-subtree
  partitioning of the node space;
* :mod:`repro.federation.router` — the :class:`FederationRouter` that
  scores shards on cheap fleet-normalized aggregates, forwards
  allocates with spill-over, prefix-routes lease operations, and runs
  the cross-shard two-phase reserve/commit for jobs no single shard can
  host;
* :mod:`repro.federation.daemon` — the :class:`FederationDaemon`
  transport (a :class:`~repro.broker.server.BrokerServer` plus the
  ``shards``/``resolve`` verbs).

See ``docs/FEDERATION.md`` for the architecture and consistency model.
"""

from repro.federation.daemon import FederationDaemon
from repro.federation.router import (
    CROSS_SHARD_PREFIX,
    FederationRouter,
    Shard,
    build_federation,
)
from repro.federation.sharding import snapshot_switches, subtree_partition

__all__ = [
    "CROSS_SHARD_PREFIX",
    "FederationDaemon",
    "FederationRouter",
    "Shard",
    "build_federation",
    "snapshot_switches",
    "subtree_partition",
]
