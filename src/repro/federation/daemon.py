"""The federation daemon — the broker transport plus the router verbs.

:class:`FederationDaemon` is a :class:`~repro.broker.server.BrokerServer`
whose service is a :class:`~repro.federation.router.FederationRouter`.
Every transport feature — JSON-lines and binary codecs, pipelining, the
bounded admission queue, the micro-batcher, the sweeper — is inherited
unchanged (the router duck-types the service surface those drive); the
only addition is dispatch for the two router-specific verbs declared in
``FEDERATION_OPS``:

* ``shards``  — per-shard aggregates, scores, and liveness;
* ``resolve`` — which shard owns a lease id.

A single-broker daemon deliberately does *not* grow these branches; the
PRO006/PRO007 lint rules hold this ladder, the protocol parser, and the
client in sync.
"""

from __future__ import annotations

from typing import Any

from repro.broker.protocol import (
    Request,
    ResolveParams,
    Response,
    ok_response,
)
from repro.broker.server import BrokerServer
from repro.federation.router import FederationRouter


class FederationDaemon(BrokerServer):
    """Asyncio TCP daemon around a :class:`FederationRouter`."""

    def __init__(self, router: FederationRouter, **kwargs: Any) -> None:
        # The router duck-types the BrokerService surface the transport
        # machinery drives (allocate_batch/renew/release/reconfigure/
        # status/sweep_expired/metrics).
        super().__init__(router, **kwargs)  # type: ignore[arg-type]
        self.router = router

    async def _dispatch(self, request: Request) -> Response:
        if request.op == "shards":
            return ok_response(request.id, self.router.shards())
        if request.op == "resolve":
            params = request.params
            assert isinstance(params, ResolveParams)
            return ok_response(request.id, self.router.resolve(params))
        return await super()._dispatch(request)
