"""Cluster description substrate: node specs, states, and switch topology."""

from repro.cluster.cluster import Cluster
from repro.cluster.node import NodeSpec, NodeState
from repro.cluster.topology import SwitchTopology, paper_cluster, uniform_cluster

__all__ = [
    "Cluster",
    "NodeSpec",
    "NodeState",
    "SwitchTopology",
    "paper_cluster",
    "uniform_cluster",
]
