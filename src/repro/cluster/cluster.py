"""The :class:`Cluster` container: specs, topology, and live node states."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.cluster.node import NodeSpec, NodeState
from repro.cluster.topology import SwitchTopology


class Cluster:
    """A shared compute cluster: static specs + mutable per-node state.

    This is the ground-truth object the simulator evolves.  The monitoring
    subsystem *observes* it (possibly with staleness); the allocator only
    ever sees monitor snapshots, never this object directly — exactly the
    information boundary of the paper's architecture (Figure 3).
    """

    def __init__(self, specs: Sequence[NodeSpec], topology: SwitchTopology) -> None:
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate node names: {dupes}")
        topo_nodes = set(topology.nodes)
        spec_nodes = set(names)
        if topo_nodes != spec_nodes:
            missing = sorted(spec_nodes - topo_nodes)
            extra = sorted(topo_nodes - spec_nodes)
            raise ValueError(
                f"specs/topology mismatch: missing from topology {missing}, "
                f"extra in topology {extra}"
            )
        for spec in specs:
            if topology.switch_of(spec.name) != spec.switch:
                raise ValueError(
                    f"node {spec.name}: spec says switch {spec.switch!r} but "
                    f"topology says {topology.switch_of(spec.name)!r}"
                )
        self._specs: dict[str, NodeSpec] = {s.name: s for s in specs}
        self._topology = topology
        self._states: dict[str, NodeState] = {s.name: NodeState() for s in specs}

    # ------------------------------------------------------------------
    @property
    def topology(self) -> SwitchTopology:
        return self._topology

    @property
    def names(self) -> list[str]:
        """Node names in spec order."""
        return list(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def spec(self, name: str) -> NodeSpec:
        """Static spec of ``name``."""
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def state(self, name: str) -> NodeState:
        """Mutable dynamic state of ``name`` (ground truth)."""
        try:
            return self._states[name]
        except KeyError:
            raise KeyError(f"unknown node {name!r}") from None

    def specs(self) -> Mapping[str, NodeSpec]:
        """Read-only view of all specs."""
        return dict(self._specs)

    def set_state(self, name: str, state: NodeState) -> None:
        """Replace the dynamic state of ``name``."""
        if name not in self._specs:
            raise KeyError(f"unknown node {name!r}")
        state.validate()
        self._states[name] = state

    # ------------------------------------------------------------------
    def up_nodes(self) -> list[str]:
        """Names of nodes currently up (ground truth, not monitor view)."""
        return [n for n in self._specs if self._states[n].up]

    def total_cores(self, names: Iterable[str] | None = None) -> int:
        """Sum of logical cores over ``names`` (default: whole cluster)."""
        selected = self.names if names is None else list(names)
        return sum(self.spec(n).cores for n in selected)

    def mark_down(self, name: str) -> None:
        """Take a node down (fails pings; excluded from livehosts)."""
        self.state(name).up = False

    def mark_up(self, name: str) -> None:
        """Bring a node back up."""
        self.state(name).up = True
