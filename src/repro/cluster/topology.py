"""Switch topologies: the paper's tree, plus general switch graphs.

The paper's cluster "has a tree-like hierarchical topology with 4 switches.
Each switch connects 10-15 nodes using Gigabit Ethernet."  We model an
arbitrary tree of switches; compute nodes attach to leaf switches.  Hop
count between two nodes is the number of network links on the unique tree
path (2 for same-switch pairs, 4 via a common parent, ...), matching the
paper's "1 - 4 hops" proximity numbering.

Beyond the paper: ``extra_switch_links`` turns the switch *tree* into a
general connected switch *graph* (fat-trees with redundant cores, full
meshes, N+1-redundant standby switches — the scenario-zoo shapes).
Routing then uses deterministic BFS shortest paths (neighbors explored
in sorted order, so the same topology always routes the same way); the
tree's LCA fast path is kept bit-identical when no extra links exist.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import networkx as nx

from repro.cluster.node import NodeSpec
from repro.util.units import GIGABIT_PER_S_IN_MB_S


class SwitchTopology:
    """A tree of switches with compute nodes on the leaves.

    Parameters
    ----------
    switch_parents:
        Mapping switch -> parent switch; the root maps to ``None``.
    node_switch:
        Mapping node name -> leaf switch it attaches to.
    uplink_capacity_mbs / edge_capacity_mbs:
        Capacities of switch-switch and node-switch links (MB/s).
    extra_switch_links:
        Optional switch-switch links beyond the parent tree — either
        ``(a, b)`` pairs (at ``uplink_capacity_mbs``) or
        ``(a, b, capacity_mbs)`` triples.  Any extra link switches
        routing from the tree's LCA walk to deterministic BFS shortest
        paths over the whole switch graph.
    """

    def __init__(
        self,
        switch_parents: Mapping[str, str | None],
        node_switch: Mapping[str, str],
        *,
        uplink_capacity_mbs: float = GIGABIT_PER_S_IN_MB_S,
        edge_capacity_mbs: float = GIGABIT_PER_S_IN_MB_S,
        extra_switch_links: Sequence[tuple] | None = None,
    ) -> None:
        roots = [s for s, p in switch_parents.items() if p is None]
        if len(roots) != 1:
            raise ValueError(f"topology must have exactly one root switch, got {roots}")
        for s, p in switch_parents.items():
            if p is not None and p not in switch_parents:
                raise ValueError(f"switch {s} has unknown parent {p}")
        for node, sw in node_switch.items():
            if sw not in switch_parents:
                raise ValueError(f"node {node} attaches to unknown switch {sw}")
        self._root = roots[0]
        self._parents = dict(switch_parents)
        self._node_switch = dict(node_switch)
        self._uplink_capacity = float(uplink_capacity_mbs)
        self._edge_capacity = float(edge_capacity_mbs)

        self._graph = nx.Graph()
        for s in switch_parents:
            self._graph.add_node(s, kind="switch")
        tree_edges = []
        for s, p in switch_parents.items():
            if p is not None:
                self._graph.add_edge(s, p, capacity=uplink_capacity_mbs)
                tree_edges.append((s, p))
        self._extra_links: list[tuple[str, str]] = []
        for link in extra_switch_links or ():
            if len(link) == 2:
                a, b = link
                cap = uplink_capacity_mbs
            elif len(link) == 3:
                a, b, cap = link
            else:
                raise ValueError(
                    f"extra link must be (a, b) or (a, b, capacity): {link!r}"
                )
            for sw in (a, b):
                if sw not in switch_parents:
                    raise ValueError(f"extra link endpoint {sw!r} is not a switch")
            if a == b:
                raise ValueError(f"extra link {link!r} is a self-loop")
            if self._graph.has_edge(a, b):
                continue  # parent link (or duplicate) already carries traffic
            self._graph.add_edge(a, b, capacity=float(cap))
            self._extra_links.append((a, b) if a <= b else (b, a))
        for node, sw in node_switch.items():
            self._graph.add_node(node, kind="node")
            self._graph.add_edge(node, sw, capacity=edge_capacity_mbs)
        # The parent mapping must always form a spanning tree of the
        # switches (guarantees connectivity and a well-defined root);
        # extra links may only add redundancy on top of it.
        tree = nx.Graph()
        tree.add_nodes_from(switch_parents)
        tree.add_edges_from(tree_edges)
        if not nx.is_tree(tree):
            raise ValueError("switch parent graph must be a tree")
        # Depth of each switch for LCA computation.
        self._depth: dict[str, int] = {}
        for s in switch_parents:
            d, cur = 0, s
            while self._parents[cur] is not None:
                cur = self._parents[cur]  # type: ignore[assignment]
                d += 1
            self._depth[s] = d
        # Sorted adjacency over the switch graph: BFS explores neighbors
        # in this order, so shortest-path ties always break identically.
        self._switch_adj: dict[str, tuple[str, ...]] = {
            s: tuple(
                sorted(
                    n
                    for n in self._graph.neighbors(s)
                    if n in self._parents
                )
            )
            for s in switch_parents
        }
        self._path_cache: dict[tuple[str, str], tuple[str, ...]] = {}
        self._switch_path_cache: dict[tuple[str, str], tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    @property
    def root(self) -> str:
        """Name of the root switch."""
        return self._root

    @property
    def switches(self) -> list[str]:
        """All switch names (stable order)."""
        return list(self._parents)

    @property
    def nodes(self) -> list[str]:
        """All node names (stable order)."""
        return list(self._node_switch)

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (switches + nodes)."""
        return self._graph

    def switch_of(self, node: str) -> str:
        """Leaf switch a node attaches to."""
        try:
            return self._node_switch[node]
        except KeyError:
            raise KeyError(f"unknown node {node!r}") from None

    def nodes_on_switch(self, switch: str) -> list[str]:
        """Nodes attached to ``switch`` (stable order)."""
        if switch not in self._parents:
            raise KeyError(f"unknown switch {switch!r}")
        return [n for n, s in self._node_switch.items() if s == switch]

    # ------------------------------------------------------------------
    @property
    def extra_switch_links(self) -> tuple[tuple[str, str], ...]:
        """Canonically-ordered redundant switch links (empty for trees)."""
        return tuple(self._extra_links)

    def switch_path(self, sa: str, sb: str) -> tuple[str, ...]:
        """Sequence of switches on the routed path from ``sa`` to ``sb``.

        Pure trees use the LCA walk; once ``extra_switch_links`` exist,
        paths come from BFS over the switch graph with sorted neighbor
        order, so shortest-path ties break deterministically.
        """
        if sa == sb:
            return (sa,)
        if self._extra_links:
            return self._bfs_switch_path(sa, sb)
        up_a, up_b = [sa], [sb]
        a, b = sa, sb
        while self._depth[a] > self._depth[b]:
            a = self._parents[a]  # type: ignore[assignment]
            up_a.append(a)
        while self._depth[b] > self._depth[a]:
            b = self._parents[b]  # type: ignore[assignment]
            up_b.append(b)
        while a != b:
            a = self._parents[a]  # type: ignore[assignment]
            b = self._parents[b]  # type: ignore[assignment]
            up_a.append(a)
            up_b.append(b)
        # up_a ends at LCA; up_b also ends at LCA — drop the duplicate.
        return tuple(up_a + up_b[-2::-1])

    def _bfs_switch_path(self, sa: str, sb: str) -> tuple[str, ...]:
        """Deterministic BFS shortest switch path (cached per pair)."""
        key = (sa, sb) if sa <= sb else (sb, sa)
        cached = self._switch_path_cache.get(key)
        if cached is None:
            src, dst = key
            prev: dict[str, str] = {src: src}
            frontier = [src]
            while frontier and dst not in prev:
                nxt: list[str] = []
                for s in frontier:
                    for n in self._switch_adj[s]:
                        if n not in prev:
                            prev[n] = s
                            nxt.append(n)
                frontier = nxt
            if dst not in prev:  # unreachable: parent tree spans all switches
                raise KeyError(f"no switch path {sa!r} -> {sb!r}")
            rev = [dst]
            while rev[-1] != src:
                rev.append(prev[rev[-1]])
            cached = tuple(reversed(rev))
            self._switch_path_cache[key] = cached
        if (sa, sb) == key:
            return cached
        return cached[::-1]

    def path(self, u: str, v: str) -> tuple[str, ...]:
        """Full node-to-node path: [u, switches..., v]. Cached."""
        key = (u, v) if u <= v else (v, u)
        cached = self._path_cache.get(key)
        if cached is None:
            su, sv = self.switch_of(key[0]), self.switch_of(key[1])
            cached = (key[0],) + self.switch_path(su, sv) + (key[1],)
            self._path_cache[key] = cached
        if (u, v) == key:
            return cached
        return cached[::-1]

    def links_on_path(self, u: str, v: str) -> tuple[tuple[str, str], ...]:
        """Canonically-ordered link endpoints along the u-v path."""
        p = self.path(u, v)
        return tuple(
            (a, b) if a <= b else (b, a) for a, b in zip(p[:-1], p[1:])
        )

    def hops(self, u: str, v: str) -> int:
        """Number of network links between two nodes (0 if ``u == v``)."""
        if u == v:
            return 0
        return len(self.path(u, v)) - 1

    def link_capacity(self, a: str, b: str) -> float:
        """Capacity (MB/s) of the link between adjacent elements a, b."""
        data = self._graph.get_edge_data(a, b)
        if data is None:
            raise KeyError(f"no link between {a!r} and {b!r}")
        return float(data["capacity"])


# ----------------------------------------------------------------------
def _star_switches(n_leaf: int) -> dict[str, str | None]:
    parents: dict[str, str | None] = {"root": None}
    for i in range(1, n_leaf + 1):
        parents[f"switch{i}"] = "root"
    return parents


def paper_cluster() -> tuple[list[NodeSpec], SwitchTopology]:
    """The evaluation cluster from §5 of the paper.

    60 nodes named ``csews1..csews60``: 40 × 12-core Intel @ 4.6 GHz and
    20 × 8-core Intel @ 2.8 GHz, 16 GB RAM each, spread over 4 leaf
    switches (15 nodes per switch) behind one root.  Node links are
    Gigabit Ethernet; switch uplinks are modelled as 1.5 Gbit/s trunks
    (typical LAG/stacking for that class of switch), so crossing switches
    costs hops and shared congestion rather than an artificial 1 Gbit/s
    cliff.  Nodes are numbered by physical proximity, so consecutive
    names share a switch — this is what makes the *sequential* baseline
    topology-friendly.
    """
    parents = _star_switches(4)
    node_switch: dict[str, str] = {}
    specs: list[NodeSpec] = []
    for i in range(60):
        name = f"csews{i + 1}"
        switch = f"switch{i // 15 + 1}"
        node_switch[name] = switch
        # Interleave so every switch has a mix of 12- and 8-core machines:
        # the first 10 of each 15-node group are 12-core, the rest 8-core.
        if i % 15 < 10:
            cores, freq = 12, 4.6
        else:
            cores, freq = 8, 2.8
        specs.append(
            NodeSpec(
                name=name, cores=cores, frequency_ghz=freq,
                memory_gb=16.0, switch=switch,
            )
        )
    topo = SwitchTopology(
        parents, node_switch, uplink_capacity_mbs=1.5 * GIGABIT_PER_S_IN_MB_S
    )
    return specs, topo


def uniform_cluster(
    n_nodes: int,
    *,
    nodes_per_switch: int = 15,
    cores: int = 12,
    frequency_ghz: float = 4.6,
    memory_gb: float = 16.0,
    name_prefix: str = "node",
    uplink_capacity_mbs: float = GIGABIT_PER_S_IN_MB_S,
    edge_capacity_mbs: float = GIGABIT_PER_S_IN_MB_S,
) -> tuple[list[NodeSpec], SwitchTopology]:
    """A homogeneous cluster for tests and synthetic experiments."""
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be positive, got {n_nodes}")
    if nodes_per_switch <= 0:
        raise ValueError(f"nodes_per_switch must be positive, got {nodes_per_switch}")
    n_switches = (n_nodes + nodes_per_switch - 1) // nodes_per_switch
    parents = _star_switches(n_switches)
    node_switch: dict[str, str] = {}
    specs: list[NodeSpec] = []
    for i in range(n_nodes):
        name = f"{name_prefix}{i + 1}"
        switch = f"switch{i // nodes_per_switch + 1}"
        node_switch[name] = switch
        specs.append(
            NodeSpec(
                name=name, cores=cores, frequency_ghz=frequency_ghz,
                memory_gb=memory_gb, switch=switch,
            )
        )
    topo = SwitchTopology(
        parents,
        node_switch,
        uplink_capacity_mbs=uplink_capacity_mbs,
        edge_capacity_mbs=edge_capacity_mbs,
    )
    return specs, topo
