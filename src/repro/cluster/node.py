"""Node descriptions: static hardware spec and dynamic runtime state.

The split mirrors the paper's Table 1: *static attributes* (core count,
CPU frequency, total memory) are queried once; *dynamic attributes*
(CPU load, CPU utilization, memory usage, node data-flow rate, logged-in
users) vary and are sampled by the monitoring daemons.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class NodeSpec:
    """Static attributes of a compute node.

    Parameters
    ----------
    name:
        Hostname, e.g. ``"csews12"``.
    cores:
        Logical core count (the paper's clusters mix 8- and 12-core nodes).
    frequency_ghz:
        CPU clock frequency in GHz.
    memory_gb:
        Total physical memory in GB (most paper nodes have 16 GB).
    switch:
        Identifier of the leaf switch this node hangs off.
    """

    name: str
    cores: int
    frequency_ghz: float
    memory_gb: float
    switch: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        require_positive(self.cores, "cores")
        require_positive(self.frequency_ghz, "frequency_ghz")
        require_positive(self.memory_gb, "memory_gb")
        if not self.switch:
            raise ValueError("switch must be non-empty")


@dataclass
class NodeState:
    """Dynamic attributes of a compute node at an instant.

    Attributes
    ----------
    cpu_load:
        UNIX load average style: number of runnable/waiting processes.
    cpu_util:
        Aggregate CPU utilization across logical cores, in percent [0, 100].
    memory_used_gb:
        Physical memory currently in use, GB.
    flow_rate_mbs:
        Node data-flow rate — bytes sent+received at the NIC per second,
        expressed in MB/s (the paper measures this with psutil).
    users:
        Count of currently logged-in users.
    up:
        Whether the node responds to pings (livehosts membership).
    """

    cpu_load: float = 0.0
    cpu_util: float = 0.0
    memory_used_gb: float = 0.0
    flow_rate_mbs: float = 0.0
    users: int = 0
    up: bool = True

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check physical plausibility; raises ``ValueError`` on nonsense."""
        require_non_negative(self.cpu_load, "cpu_load")
        if not 0.0 <= self.cpu_util <= 100.0:
            raise ValueError(f"cpu_util must be in [0, 100], got {self.cpu_util}")
        require_non_negative(self.memory_used_gb, "memory_used_gb")
        require_non_negative(self.flow_rate_mbs, "flow_rate_mbs")
        if self.users < 0:
            raise ValueError(f"users must be non-negative, got {self.users}")

    def copy(self) -> "NodeState":
        """Return an independent copy of this state."""
        return replace(self)


@dataclass(frozen=True)
class NodeSample:
    """A timestamped observation of a node's dynamic state.

    Produced by ``NodeStateD`` and stored in the shared store.
    """

    time: float
    state: NodeState = field(compare=False)
