"""Monitoring daemons: base class, ``NodeStateD`` and ``LivehostsD``.

Each daemon ticks periodically on the shared engine, performs one
observation, and writes the result plus a heartbeat to the shared store.
Daemons can *crash* (tick stops, heartbeat goes stale) and be *restarted*
— the behaviours the Central Monitor supervises.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.cluster.cluster import Cluster
from repro.des.engine import Engine
from repro.monitor.rolling import DEFAULT_WINDOWS, RollingWindows
from repro.monitor.store import SharedStore
from repro.util.units import MINUTES
from repro.util.validation import require_positive

HEARTBEAT_PREFIX = "heartbeat/"


class Daemon(ABC):
    """A periodically ticking monitoring process.

    Parameters
    ----------
    engine, store:
        Shared simulation clock and data plane.
    name:
        Unique daemon identity, e.g. ``"nodestate/csews7"``.
    period_s:
        Tick period.  Jitter (optional) desynchronises daemon fleets.
    host:
        Node the daemon runs on; a daemon whose host is down skips work
        (and its heartbeat goes stale), ``None`` = independent of any node.
    """

    def __init__(
        self,
        engine: Engine,
        store: SharedStore,
        name: str,
        period_s: float,
        *,
        host: str | None = None,
        cluster: Cluster | None = None,
        jitter_s: float = 0.0,
        jitter_rng: np.random.Generator | None = None,
    ) -> None:
        require_positive(period_s, "period_s")
        if host is not None and cluster is None:
            raise ValueError("a hosted daemon needs the cluster to check its host")
        self.engine = engine
        self.store = store
        self.name = name
        self.period_s = period_s
        self.host = host
        self._cluster = cluster
        self._jitter_s = jitter_s
        self._jitter_rng = jitter_rng
        self._task = None
        self.ticks = 0

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._task is not None and not self._task.stopped

    def start(self) -> None:
        """(Re)start ticking; the first tick runs one period from now.

        The daemon announces itself with an immediate heartbeat so a
        supervisor doesn't judge it stale (and restart it again) before
        its first tick — restart loops would otherwise starve slow-period
        daemons forever.
        """
        if self.alive:
            return
        if self._host_up():
            self.store.put(
                HEARTBEAT_PREFIX + self.name, self.ticks, self.engine.now
            )
        self._task = self.engine.every(
            self.period_s,
            self._tick,
            start=self.engine.now + self.period_s,
            jitter=self._jitter_s,
            jitter_rng=self._jitter_rng,
        )

    def crash(self) -> None:
        """Stop ticking immediately (simulated crash)."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _host_up(self) -> bool:
        if self.host is None:
            return True
        assert self._cluster is not None
        return self._cluster.state(self.host).up

    def _tick(self) -> None:
        if not self._host_up():
            return  # host down: no work, no heartbeat
        self.ticks += 1
        self.store.put(HEARTBEAT_PREFIX + self.name, self.ticks, self.engine.now)
        self.sample()

    @abstractmethod
    def sample(self) -> None:
        """One observation; implemented by concrete daemons."""


class NodeStateD(Daemon):
    """Per-node state sampler (the paper's ``NodeStateD``).

    Extracts static attributes once and dynamic attributes every tick
    (3–10 s in the paper), maintaining 1/5/15-minute running means, and
    writes the combined record to ``nodestate/<node>``.
    """

    #: dynamic attributes tracked with rolling means
    DYNAMIC = ("cpu_load", "cpu_util", "flow_rate_mbs", "available_memory_gb")

    def __init__(
        self,
        engine: Engine,
        store: SharedStore,
        cluster: Cluster,
        node: str,
        *,
        period_s: float = 5.0,
        jitter_s: float = 0.0,
        jitter_rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            engine,
            store,
            f"nodestate/{node}",
            period_s,
            host=node,
            cluster=cluster,
            jitter_s=jitter_s,
            jitter_rng=jitter_rng,
        )
        self.node = node
        self._windows: dict[str, RollingWindows] = {
            attr: RollingWindows(DEFAULT_WINDOWS) for attr in self.DYNAMIC
        }

    def sample(self) -> None:
        cluster = self._cluster
        assert cluster is not None
        spec = cluster.spec(self.node)
        state = cluster.state(self.node)
        now = self.engine.now
        values = {
            "cpu_load": state.cpu_load,
            "cpu_util": state.cpu_util,
            "flow_rate_mbs": state.flow_rate_mbs,
            "available_memory_gb": max(spec.memory_gb - state.memory_used_gb, 0.0),
        }
        record: dict = {
            "static": {
                "cores": spec.cores,
                "frequency_ghz": spec.frequency_ghz,
                "memory_gb": spec.memory_gb,
                "switch": spec.switch,
            },
            "users": state.users,
        }
        for attr, v in values.items():
            win = self._windows[attr]
            win.add(now, v)
            record[attr] = {
                "now": v,
                "m1": win.mean(1 * MINUTES, now),
                "m5": win.mean(5 * MINUTES, now),
                "m15": win.mean(15 * MINUTES, now),
            }
        self.store.put(f"nodestate/{self.node}", record, now)


class LivehostsD(Daemon):
    """Pings every node and maintains the ``livehosts`` list.

    The paper runs several instances "on a few selected nodes at
    different frequencies ... for fault tolerance"; each instance writes
    the same ``livehosts`` key, so the freshest survivor wins.
    """

    def __init__(
        self,
        engine: Engine,
        store: SharedStore,
        cluster: Cluster,
        *,
        instance: str = "0",
        host: str | None = None,
        period_s: float = 30.0,
        jitter_s: float = 0.0,
        jitter_rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            engine,
            store,
            f"livehosts/{instance}",
            period_s,
            host=host,
            cluster=cluster if host is not None else cluster,
            jitter_s=jitter_s,
            jitter_rng=jitter_rng,
        )
        # cluster is always needed for pinging, host check or not
        self._cluster = cluster

    def sample(self) -> None:
        cluster = self._cluster
        live = [n for n in cluster.names if cluster.state(n).up]
        self.store.put("livehosts", live, self.engine.now)
