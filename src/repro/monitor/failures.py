"""Failure injection for resilience testing.

Schedules node outages and daemon/monitor crashes on the engine so tests
and the fault-tolerance benchmarks can exercise the Central Monitor's
recovery paths deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.cluster.cluster import Cluster
from repro.des.engine import Engine


class _Crashable(Protocol):
    def crash(self) -> None: ...


class _Pausable(Protocol):
    def crash(self) -> None: ...
    def start(self) -> None: ...


@dataclass
class FailureLog:
    """Record of injected failures, for assertions in tests."""

    node_outages: list[tuple[float, str, float]] = field(default_factory=list)
    crashes: list[tuple[float, str]] = field(default_factory=list)
    pauses: list[tuple[float, str, float]] = field(default_factory=list)


class FailureInjector:
    """Deterministic scheduler of outages and crashes."""

    def __init__(self, engine: Engine, cluster: Cluster) -> None:
        self._engine = engine
        self._cluster = cluster
        self.log = FailureLog()

    def node_down(self, node: str, at: float, duration: float | None = None) -> None:
        """Take ``node`` down at time ``at``; back up after ``duration``.

        ``duration=None`` keeps the node down for the rest of the run.
        """
        if node not in self._cluster:
            raise KeyError(f"unknown node {node!r}")
        if duration is not None and duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")

        def down() -> None:
            self._cluster.mark_down(node)
            self.log.node_outages.append((self._engine.now, node, duration or -1.0))

        self._engine.schedule_at(at, down)
        if duration is not None:
            self._engine.schedule_at(
                at + duration, lambda: self._cluster.mark_up(node)
            )

    def crash(self, target: _Crashable, at: float, label: str = "") -> None:
        """Crash any daemon/monitor at time ``at``."""

        def do() -> None:
            target.crash()
            self.log.crashes.append(
                (self._engine.now, label or getattr(target, "name", repr(target)))
            )

        self._engine.schedule_at(at, do)

    def pause(
        self,
        target: _Pausable,
        at: float,
        duration: float,
        label: str = "",
    ) -> None:
        """Stop a daemon at ``at`` and restart it ``duration`` later.

        Models an operator-restarted (or supervisor-restarted) process:
        the store record it owns goes stale during the gap, then fresh
        data resumes — the classic source of staleness storms.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")

        def stop() -> None:
            target.crash()
            self.log.pauses.append(
                (
                    self._engine.now,
                    label or getattr(target, "name", repr(target)),
                    duration,
                )
            )

        self._engine.schedule_at(at, stop)
        self._engine.schedule_at(at + duration, target.start)

    def flap_node(
        self,
        node: str,
        at: float,
        *,
        down_s: float,
        up_s: float,
        cycles: int,
    ) -> None:
        """Bounce ``node`` up/down repeatedly — the quarantine trigger.

        Each cycle takes the node down for ``down_s`` then back up for
        ``up_s``; after ``cycles`` cycles the node stays up.
        """
        if down_s <= 0 or up_s <= 0:
            raise ValueError("down_s and up_s must be positive")
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        t = at
        for _ in range(cycles):
            self.node_down(node, t, duration=down_s)
            t += down_s + up_s
