"""Failure injection for resilience testing.

Schedules node outages and daemon/monitor crashes on the engine so tests
and the fault-tolerance benchmarks can exercise the Central Monitor's
recovery paths deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.cluster.cluster import Cluster
from repro.des.engine import Engine


class _Crashable(Protocol):
    def crash(self) -> None: ...


@dataclass
class FailureLog:
    """Record of injected failures, for assertions in tests."""

    node_outages: list[tuple[float, str, float]] = field(default_factory=list)
    crashes: list[tuple[float, str]] = field(default_factory=list)


class FailureInjector:
    """Deterministic scheduler of outages and crashes."""

    def __init__(self, engine: Engine, cluster: Cluster) -> None:
        self._engine = engine
        self._cluster = cluster
        self.log = FailureLog()

    def node_down(self, node: str, at: float, duration: float | None = None) -> None:
        """Take ``node`` down at time ``at``; back up after ``duration``.

        ``duration=None`` keeps the node down for the rest of the run.
        """
        if node not in self._cluster:
            raise KeyError(f"unknown node {node!r}")
        if duration is not None and duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")

        def down() -> None:
            self._cluster.mark_down(node)
            self.log.node_outages.append((self._engine.now, node, duration or -1.0))

        self._engine.schedule_at(at, down)
        if duration is not None:
            self._engine.schedule_at(
                at + duration, lambda: self._cluster.mark_up(node)
            )

    def crash(self, target: _Crashable, at: float, label: str = "") -> None:
        """Crash any daemon/monitor at time ``at``."""

        def do() -> None:
            target.crash()
            self.log.crashes.append(
                (self._engine.now, label or getattr(target, "name", repr(target)))
            )

        self._engine.schedule_at(at, do)
