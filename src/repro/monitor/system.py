"""MonitoringSystem — wires the full Resource Monitor together.

One call builds the paper's Figure 3 left-hand side: a ``NodeStateD`` per
node, redundant ``LivehostsD`` instances at different frequencies, one
``LatencyD`` and one ``BandwidthD``, all supervised by a master/slave
Central Monitor pair, all writing to one shared store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import Cluster
from repro.des.engine import Engine
from repro.monitor.central import CentralService
from repro.monitor.daemons import Daemon, LivehostsD, NodeStateD
from repro.monitor.netdaemons import BandwidthD, LatencyD
from repro.monitor.snapshot import ClusterSnapshot, build_snapshot
from repro.monitor.store import InMemoryStore, SharedStore
from repro.net.model import NetworkModel
from repro.util.rng import RngStream


@dataclass(frozen=True)
class MonitorConfig:
    """Periods for each daemon type (paper defaults)."""

    nodestate_period_s: float = 5.0       # "every 3-10 seconds"
    nodestate_jitter_s: float = 4.0
    #: use ForecastingNodeStateD (adds NWS-style per-attribute forecasts)
    forecasting: bool = False
    livehosts_periods_s: tuple[float, ...] = (20.0, 45.0)  # "different frequencies"
    latency_period_s: float = 60.0        # "1 minute for latency"
    bandwidth_period_s: float = 300.0     # "5 minutes for bandwidth"
    central_period_s: float = 15.0

    def __post_init__(self) -> None:
        for name in (
            "nodestate_period_s",
            "latency_period_s",
            "bandwidth_period_s",
            "central_period_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not self.livehosts_periods_s:
            raise ValueError("need at least one LivehostsD instance")


class MonitoringSystem:
    """The assembled Resource Monitor."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        network: NetworkModel,
        *,
        store: SharedStore | None = None,
        config: MonitorConfig | None = None,
        seed: int | RngStream = 0,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.network = network
        self.store = store if store is not None else InMemoryStore()
        self.config = config or MonitorConfig()
        streams = seed if isinstance(seed, RngStream) else RngStream(seed)
        cfg = self.config

        jitter_rng = streams.child("monitor_jitter")
        if cfg.forecasting:
            from repro.monitor.forecasting_daemon import ForecastingNodeStateD

            nodestate_cls: type[NodeStateD] = ForecastingNodeStateD
        else:
            nodestate_cls = NodeStateD
        self.nodestate: dict[str, NodeStateD] = {
            n: nodestate_cls(
                engine,
                self.store,
                cluster,
                n,
                period_s=cfg.nodestate_period_s,
                jitter_s=cfg.nodestate_jitter_s,
                jitter_rng=jitter_rng,
            )
            for n in cluster.names
        }
        hosts = cluster.names
        self.livehosts: list[LivehostsD] = [
            LivehostsD(
                engine,
                self.store,
                cluster,
                instance=str(i),
                host=hosts[i % len(hosts)],
                period_s=p,
            )
            for i, p in enumerate(cfg.livehosts_periods_s)
        ]
        self.latencyd = LatencyD(
            engine,
            self.store,
            cluster,
            network,
            host=hosts[min(2, len(hosts) - 1)],
            period_s=cfg.latency_period_s,
            rng=streams.child("latency_probe"),
        )
        self.bandwidthd = BandwidthD(
            engine,
            self.store,
            cluster,
            network,
            host=hosts[min(3, len(hosts) - 1)],
            period_s=cfg.bandwidth_period_s,
        )
        supervised: list[Daemon] = [
            *self.nodestate.values(),
            *self.livehosts,
            self.latencyd,
            self.bandwidthd,
        ]
        self.central = CentralService(
            engine,
            self.store,
            cluster,
            supervised,
            master_host=hosts[0],
            slave_host=hosts[min(1, len(hosts) - 1)],
            period_s=cfg.central_period_s,
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch every daemon and the central monitor pair."""
        for d in self.nodestate.values():
            d.start()
        for d in self.livehosts:
            d.start()
        self.latencyd.start()
        self.bandwidthd.start()
        self.central.start()

    def all_daemons(self) -> list[Daemon]:
        return [
            *self.nodestate.values(),
            *self.livehosts,
            self.latencyd,
            self.bandwidthd,
        ]

    def snapshot(self) -> ClusterSnapshot:
        """Current allocator view, assembled from the shared store."""
        return build_snapshot(self.store, self.cluster, self.network, self.engine.now)

    def prime(self) -> None:
        """Force one immediate sample of everything (bootstrap helper).

        Real deployments wait a probe interval before the first
        allocation; tests and short experiments can prime instead.
        """
        for d in self.all_daemons():
            if d.alive and (d.host is None or self.cluster.state(d.host).up):
                d.ticks += 1
                self.store.put(f"heartbeat/{d.name}", d.ticks, self.engine.now)
                d.sample()
