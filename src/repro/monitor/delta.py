"""Delta snapshots — the monitor's incremental view of a drifting fleet.

Between two monitor sweeps only a small fraction of a large cluster
moves: most nodes idle along at the same rolling means, most links keep
their measured latency/bandwidth.  Rebuilding every derived structure
(normalized load vectors, dense network-load matrices) from scratch for
each sweep is the fleet-scale hot-path tax PR 6 removes.

This module provides the three pieces of the incremental path:

* :class:`SnapshotDelta` — the set of node views and link measurements
  that moved beyond a threshold between two snapshots.
* :func:`compute_delta` — diff two snapshots into a delta, or report a
  *structural* change (nodes/pairs/livehosts appeared or vanished,
  static specs changed) that requires a full rebuild.
* :func:`apply_snapshot_delta` — patch the previous snapshot into a new
  immutable :class:`~repro.monitor.snapshot.ClusterSnapshot`, migrate
  its cached :class:`~repro.core.arrays.LoadState` objects via
  ``LoadState.apply_delta`` (O(changed) instead of O(V²)), and stamp the
  new snapshot's *lineage* so the broker's decision memo can invalidate
  exactly the affected entries.

Lineage: every snapshot belongs to a ``(serial, generation)`` line.  A
full rebuild starts a new serial at generation 0; each applied delta
bumps the generation and records which nodes the delta touched.  The
broker reads this via :func:`snapshot_lineage` — same serial and a +1
generation means "the previous memo survives except entries whose
usable-node scope intersects ``affected``".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.monitor.snapshot import ClusterSnapshot, NodeView, derived_cache

PairKey = tuple[str, str]

#: key under which the (serial, generation, affected) triple lives in a
#: snapshot's ``derived_cache``
_LINEAGE_KEY = "snapshot_lineage"

#: key under which a delta-patched snapshot stashes the exact
#: :class:`SnapshotDelta` that produced it from its predecessor
_STEP_DELTA_KEY = "snapshot_step_delta"

#: monotonically increasing serial handed to every fresh (non-delta)
#: snapshot lineage; process-wide so two sources never collide
_SERIALS = itertools.count(1)


@dataclass(frozen=True)
class SnapshotDelta:
    """Nodes and links that moved beyond threshold between two sweeps."""

    #: timestamp of the newer snapshot the delta was computed against
    time: float
    #: changed node views (full replacement views from the new snapshot)
    nodes: Mapping[str, NodeView] = field(default_factory=dict)
    #: changed measured bandwidths, MB/s (canonically ordered pairs)
    bandwidth_mbs: Mapping[PairKey, float] = field(default_factory=dict)
    #: changed measured latencies, microseconds
    latency_us: Mapping[PairKey, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pairmap, label in (
            (self.bandwidth_mbs, "bandwidth"),
            (self.latency_us, "latency"),
        ):
            for a, b in pairmap:
                if a > b:
                    raise ValueError(
                        f"{label} pair {(a, b)} not canonically ordered"
                    )

    @property
    def is_empty(self) -> bool:
        return not (self.nodes or self.bandwidth_mbs or self.latency_us)

    def affected_nodes(self) -> frozenset[str]:
        """Every node whose own view or incident link the delta touches."""
        touched = set(self.nodes)
        for a, b in self.bandwidth_mbs:
            touched.add(a)
            touched.add(b)
        for a, b in self.latency_us:
            touched.add(a)
            touched.add(b)
        return frozenset(touched)


def _moved(old: float, new: float, threshold: float) -> bool:
    """Relative-change test: |new − old| > threshold · max(1, |old|)."""
    return abs(new - old) > threshold * max(1.0, abs(old))


#: dynamic NodeView attribute maps compared by :func:`_node_changed`
_DYNAMIC_ATTRS = (
    "cpu_load",
    "cpu_util",
    "flow_rate_mbs",
    "available_memory_gb",
)


def _node_changed(old: NodeView, new: NodeView, threshold: float) -> bool:
    if old.users != new.users:
        return True
    for attr in _DYNAMIC_ATTRS:
        a, b = getattr(old, attr), getattr(new, attr)
        if set(a) != set(b):
            return True
        for key, value in a.items():
            if _moved(float(value), float(b[key]), threshold):
                return True
    return False


def _static_changed(old: NodeView, new: NodeView) -> bool:
    return (
        old.cores != new.cores
        or old.frequency_ghz != new.frequency_ghz
        or old.memory_gb != new.memory_gb
        or old.switch != new.switch
    )


def compute_delta(
    old: ClusterSnapshot,
    new: ClusterSnapshot,
    *,
    node_threshold: float = 0.0,
    link_threshold: float = 0.0,
) -> SnapshotDelta | None:
    """Diff two snapshots into a :class:`SnapshotDelta`.

    Returns ``None`` when the change is *structural* — nodes or measured
    pairs appeared/disappeared, livehosts changed, or a static spec
    moved — in which case the caller must fall back to a full rebuild
    (incremental patching assumes fixed topology and index order).

    Thresholds are relative (``|Δ| > t·max(1, |old|)``); ``0.0`` means
    any change at all is emitted.  Sub-threshold drift is deliberately
    *dropped*: the served view stays within the threshold band of the
    truth, which is the monitor's freshness contract at fleet scale.
    """
    if set(old.nodes) != set(new.nodes):
        return None
    if old.livehosts != new.livehosts:
        return None
    for attr in ("bandwidth_mbs", "latency_us", "peak_bandwidth_mbs"):
        if set(getattr(old, attr)) != set(getattr(new, attr)):
            return None
    if any(
        old.peak_bandwidth_mbs[k] != new.peak_bandwidth_mbs[k]
        for k in old.peak_bandwidth_mbs
    ):
        return None  # peak bandwidth is static knowledge; a change is structural

    nodes: dict[str, NodeView] = {}
    for name, view in old.nodes.items():
        fresh = new.nodes[name]
        if _static_changed(view, fresh):
            return None
        if _node_changed(view, fresh, node_threshold):
            nodes[name] = fresh
    bandwidth = {
        k: new.bandwidth_mbs[k]
        for k, v in old.bandwidth_mbs.items()
        if _moved(float(v), float(new.bandwidth_mbs[k]), link_threshold)
    }
    latency = {
        k: new.latency_us[k]
        for k, v in old.latency_us.items()
        if _moved(float(v), float(new.latency_us[k]), link_threshold)
    }
    return SnapshotDelta(
        time=new.time,
        nodes=nodes,
        bandwidth_mbs=bandwidth,
        latency_us=latency,
    )


def snapshot_lineage(
    snapshot: ClusterSnapshot,
) -> tuple[int, int, frozenset[str] | None]:
    """The snapshot's ``(serial, generation, affected)`` lineage triple.

    Snapshots that never went through :func:`apply_snapshot_delta` get a
    fresh serial at generation 0 on first access (``affected`` is
    ``None``): each independently built snapshot is its own line, which
    preserves the historical "memo dies with the snapshot" behaviour for
    non-incremental sources.
    """
    cache = derived_cache(snapshot)
    lineage = cache.get(_LINEAGE_KEY)
    if lineage is None:
        lineage = (next(_SERIALS), 0, None)
        cache[_LINEAGE_KEY] = lineage
    return lineage


def compose_deltas(steps: Sequence[SnapshotDelta]) -> SnapshotDelta:
    """Collapse consecutive step deltas into one equivalent delta.

    Applying the result equals applying the steps in order: each map is
    merged with later steps winning (node views are full replacements,
    link entries are point values), and the composed time is the last
    step's.  Raises ``ValueError`` on an empty sequence.
    """
    if not steps:
        raise ValueError("cannot compose zero deltas")
    nodes: dict[str, NodeView] = {}
    bandwidth: dict[PairKey, float] = {}
    latency: dict[PairKey, float] = {}
    for step in steps:
        nodes.update(step.nodes)
        bandwidth.update(step.bandwidth_mbs)
        latency.update(step.latency_us)
    return SnapshotDelta(
        time=steps[-1].time,
        nodes=nodes,
        bandwidth_mbs=bandwidth,
        latency_us=latency,
    )


def snapshot_step_delta(
    snapshot: ClusterSnapshot, after: ClusterSnapshot
) -> SnapshotDelta | None:
    """The delta that advanced ``after`` into ``snapshot``, if it chains.

    Snapshots produced by :func:`apply_snapshot_delta` carry the exact
    delta that built them; a consumer holding the predecessor can catch
    up in O(changed) without re-diffing the fleet (the monitor already
    knew what moved at ingestion — diffing would re-pay O(V) for that
    knowledge).  Returns ``None`` unless ``snapshot`` is exactly one
    generation ahead of ``after`` on the same lineage; callers then fall
    back to :func:`compute_delta` or a full rebuild.
    """
    delta = derived_cache(snapshot).get(_STEP_DELTA_KEY)
    if delta is None:
        return None
    old_serial, old_generation, _ = snapshot_lineage(after)
    serial, generation, _ = snapshot_lineage(snapshot)
    if serial != old_serial or generation != old_generation + 1:
        return None
    return delta


def apply_snapshot_delta(
    old: ClusterSnapshot,
    delta: SnapshotDelta,
    *,
    migrate: bool = True,
    inplace: bool = True,
) -> ClusterSnapshot:
    """Patch ``old`` into a new snapshot and migrate its cached states.

    The returned snapshot is a fresh immutable object whose maps share
    unchanged entries with ``old``.  With ``migrate`` (default), every
    ``LoadState`` memoized on ``old`` is carried over via
    ``LoadState.apply_delta`` — O(changed nodes + measured links)
    instead of the O(V²) ``_build_state`` pair scan.  ``inplace``
    forwards to ``apply_delta``: the migrated states may reuse (and
    mutate) the old states' array buffers, so the *old snapshot must be
    dropped* after this call — exactly what
    :class:`~repro.monitor.snapshot.CachedSnapshotSource` does.
    """
    patched = ClusterSnapshot(
        time=delta.time,
        nodes={**old.nodes, **delta.nodes},
        bandwidth_mbs={**old.bandwidth_mbs, **delta.bandwidth_mbs},
        latency_us={**old.latency_us, **delta.latency_us},
        peak_bandwidth_mbs=old.peak_bandwidth_mbs,
        livehosts=old.livehosts,
    )
    serial, generation, _ = snapshot_lineage(old)
    cache = derived_cache(patched)
    cache[_LINEAGE_KEY] = (serial, generation + 1, delta.affected_nodes())
    cache[_STEP_DELTA_KEY] = delta
    if migrate:
        # Local import: arrays.py imports the snapshot module at import
        # time, so the dependency must stay one-way at module load.
        from repro.core.arrays import migrate_states

        migrate_states(old, patched, delta, inplace=inplace)
    return patched
