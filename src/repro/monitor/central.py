"""Central Monitor: master/slave supervisor for the daemon fleet.

Paper §4: "Central Monitor launches, supervises and removes [daemons] ...
If any daemon crashes, it is relaunched on appropriate nodes.  We keep one
master and one slave instance ... If the master process dies, the slave
will detect that the process is dead.  The slave will become new master
and launches a new slave on another node.  If slave dies, master launches
a new slave on another node."

The supervisor only acts on what it can observe — heartbeat staleness in
the shared store — never on simulator ground truth.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable

from repro.cluster.cluster import Cluster
from repro.des.engine import Engine
from repro.monitor.daemons import HEARTBEAT_PREFIX, Daemon
from repro.monitor.store import SharedStore, StoreCorruptError
from repro.util.validation import require_positive

_monitor_ids = itertools.count()

MASTER_KEY = "central/master"
SLAVE_KEY = "central/slave"


class CentralMonitor:
    """One master-or-slave instance of the Central Monitor."""

    def __init__(
        self,
        engine: Engine,
        store: SharedStore,
        cluster: Cluster,
        *,
        role: str,
        host: str,
        period_s: float = 15.0,
        stale_factor: float = 3.5,
        supervised: Iterable[Daemon] = (),
        on_promoted: Callable[["CentralMonitor"], None] | None = None,
    ) -> None:
        if role not in ("master", "slave"):
            raise ValueError(f"role must be 'master' or 'slave', got {role!r}")
        require_positive(period_s, "period_s")
        if stale_factor <= 1.0:
            raise ValueError("stale_factor must exceed 1 or restarts thrash")
        self.engine = engine
        self.store = store
        self.cluster = cluster
        self.role = role
        self.host = host
        self.period_s = period_s
        self.stale_factor = stale_factor
        self.supervised: list[Daemon] = list(supervised)
        self.on_promoted = on_promoted
        self.monitor_id = next(_monitor_ids)
        self.restarts_performed = 0
        self._task = None
        #: first time each daemon was supervised — grace period anchor
        self._first_seen: dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._task is not None and not self._task.stopped

    def start(self) -> None:
        if self.alive:
            return
        # Announce immediately so peers don't see a stale heartbeat during
        # the first period (prevents promote/respawn loops right after a
        # replacement is launched).
        if self._host_up():
            key = MASTER_KEY if self.role == "master" else SLAVE_KEY
            self.store.put(key, self.monitor_id, self.engine.now)
        self._task = self.engine.every(
            self.period_s, self._tick, start=self.engine.now + self.period_s
        )

    def crash(self) -> None:
        """The monitor process dies (its heartbeat goes stale)."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _host_up(self) -> bool:
        return self.cluster.state(self.host).up

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self._host_up():
            return
        now = self.engine.now
        key = MASTER_KEY if self.role == "master" else SLAVE_KEY
        self.store.put(key, self.monitor_id, now)
        if self.role == "master":
            self._supervise(now)
            self._check_peer(SLAVE_KEY, now)
        else:
            self._check_peer(MASTER_KEY, now)

    def _read_age(self, key: str, now: float) -> float | None:
        """A record's age, treating a corrupt record as an absent one.

        The supervisor must outlive a corrupted shared store — an
        unreadable heartbeat means "no usable signal", the same verdict
        as a missing one.
        """
        try:
            return self.store.age(key, now)
        except StoreCorruptError:
            return None

    def _check_peer(self, peer_key: str, now: float) -> None:
        age = self._read_age(peer_key, now)
        threshold = self.stale_factor * self.period_s
        if age is not None and age <= threshold:
            return  # peer healthy
        if age is None:
            return  # peer never started; leave bootstrap to the service
        if peer_key == MASTER_KEY:
            # We are the slave and the master is dead: promote.
            self.role = "master"
            self.store.put(MASTER_KEY, self.monitor_id, now)
            if self.on_promoted is not None:
                self.on_promoted(self)
        else:
            # We are the master and the slave is dead: ask for a new one.
            if self.on_promoted is not None:
                self.on_promoted(self)

    def _supervise(self, now: float) -> None:
        for daemon in self.supervised:
            hb_key = HEARTBEAT_PREFIX + daemon.name
            age = self._read_age(hb_key, now)
            first = self._first_seen.setdefault(daemon.name, now)
            grace = self.stale_factor * max(daemon.period_s, self.period_s)
            if age is None:
                stale = (now - first) > grace
            else:
                stale = age > grace
            if not stale:
                continue
            self._relaunch(daemon)

    def _relaunch(self, daemon: Daemon) -> None:
        """Restart a stale daemon, relocating it if its host is down."""
        if daemon.host is not None and not self.cluster.state(daemon.host).up:
            new_host = self._pick_host(exclude=daemon.host)
            if new_host is None:
                return  # nowhere to put it
            # NodeStateD is pinned: it *must* sample its own node.
            if daemon.name.startswith("nodestate/"):
                return
            daemon.host = new_host
        daemon.crash()
        daemon.start()
        self.restarts_performed += 1

    def _pick_host(self, exclude: str | None = None) -> str | None:
        try:
            live = self.store.value("livehosts")
        except StoreCorruptError:
            live = None
        if not isinstance(live, (list, tuple)):
            live = None
        candidates = live if live is not None else self.cluster.names
        for n in candidates:
            if n != exclude and n in self.cluster and self.cluster.state(n).up:
                return n
        return None


class CentralService:
    """Owns the master/slave pair and replaces dead members.

    This is the piece of the paper's design that keeps exactly one master
    and one slave alive (as long as two up nodes exist).
    """

    def __init__(
        self,
        engine: Engine,
        store: SharedStore,
        cluster: Cluster,
        supervised: Iterable[Daemon],
        *,
        master_host: str,
        slave_host: str,
        period_s: float = 15.0,
        stale_factor: float = 3.5,
    ) -> None:
        self.engine = engine
        self.store = store
        self.cluster = cluster
        self.supervised = list(supervised)
        self.period_s = period_s
        self.stale_factor = stale_factor
        self.master = self._make("master", master_host)
        self.slave = self._make("slave", slave_host)

    def _make(self, role: str, host: str) -> CentralMonitor:
        return CentralMonitor(
            self.engine,
            self.store,
            self.cluster,
            role=role,
            host=host,
            period_s=self.period_s,
            stale_factor=self.stale_factor,
            supervised=self.supervised,
            on_promoted=self._on_needs_slave,
        )

    def start(self) -> None:
        self.master.start()
        self.slave.start()

    def _on_needs_slave(self, survivor: CentralMonitor) -> None:
        """A monitor became (or remained) master without a live slave."""
        if survivor.role != "master":  # pragma: no cover - defensive
            return
        old_master = self.master
        if survivor is not self.master:
            self.master = survivor
            if old_master.alive:
                old_master.crash()
        new_host = survivor._pick_host(exclude=survivor.host)
        if new_host is None:
            return
        if self.slave is not None and self.slave is not survivor and self.slave.alive:
            self.slave.crash()
        self.slave = self._make("slave", new_host)
        self.slave.start()
