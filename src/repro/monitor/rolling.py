"""Time-windowed running means (1/5/15 minutes by default).

The paper's daemons "keep track of the running mean of the last 1, 5, and
15 minutes of historical data of dynamic attributes".  We keep a deque of
timestamped samples and compute window means on demand, evicting samples
older than the largest window.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.util.units import MINUTES

#: The paper's windows, in seconds.
DEFAULT_WINDOWS: tuple[float, ...] = (1 * MINUTES, 5 * MINUTES, 15 * MINUTES)


class RollingWindows:
    """Running means of a scalar signal over multiple trailing windows."""

    def __init__(self, windows: Sequence[float] = DEFAULT_WINDOWS) -> None:
        if not windows:
            raise ValueError("need at least one window")
        ws = tuple(float(w) for w in windows)
        if any(w <= 0 for w in ws):
            raise ValueError(f"windows must be positive, got {ws}")
        self.windows = tuple(sorted(ws))
        self._samples: deque[tuple[float, float]] = deque()

    def add(self, time: float, value: float) -> None:
        """Record a sample; timestamps must be non-decreasing."""
        if self._samples and time < self._samples[-1][0]:
            raise ValueError(
                f"samples must arrive in time order: {time} < {self._samples[-1][0]}"
            )
        self._samples.append((time, float(value)))
        horizon = time - self.windows[-1]
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def mean(self, window: float, now: float | None = None) -> float | None:
        """Mean over the trailing ``window`` seconds; ``None`` if empty.

        ``now`` defaults to the newest sample's timestamp.
        """
        if not self._samples:
            return None
        if now is None:
            now = self._samples[-1][0]
        cutoff = now - window
        total, count = 0.0, 0
        for t, v in reversed(self._samples):
            if t < cutoff:
                break
            total += v
            count += 1
        if count == 0:
            return None
        return total / count

    def means(self, now: float | None = None) -> dict[float, float | None]:
        """Means for every configured window."""
        return {w: self.mean(w, now) for w in self.windows}

    @property
    def latest(self) -> float | None:
        """Most recent sample value (instantaneous reading)."""
        return self._samples[-1][1] if self._samples else None

    def __len__(self) -> int:
        return len(self._samples)
