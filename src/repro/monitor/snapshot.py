"""ClusterSnapshot — the allocator's entire view of the world.

The Node Allocator in the paper never inspects nodes directly; it reads
what the Resource Monitor wrote to the shared filesystem.  A snapshot is
therefore assembled *only* from store contents (possibly stale), plus
static peak-bandwidth knowledge.  For tests and oracle experiments,
:func:`oracle_snapshot` builds one directly from ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cluster.cluster import Cluster
from repro.monitor.store import SharedStore
from repro.net.model import NetworkModel
from repro.net.probes import round_robin_rounds


@dataclass(frozen=True)
class NodeView:
    """Monitor-reported attributes of one node (Table 1 of the paper)."""

    name: str
    # static
    cores: int
    frequency_ghz: float
    memory_gb: float
    # dynamic — instantaneous and 1/5/15-minute means
    users: int
    cpu_load: Mapping[str, float]          # keys: now/m1/m5/m15
    cpu_util: Mapping[str, float]
    flow_rate_mbs: Mapping[str, float]
    available_memory_gb: Mapping[str, float]
    #: leaf switch the node attaches to (static, known to the monitor;
    #: ``None`` when assembled from records lacking topology info)
    switch: str | None = None

    def load_now(self) -> float:
        return float(self.cpu_load["now"])


@dataclass(frozen=True)
class ClusterSnapshot:
    """Everything the allocator may consult when placing a job."""

    time: float
    nodes: Mapping[str, NodeView]
    #: effective (measured) bandwidth per unordered pair, MB/s
    bandwidth_mbs: Mapping[tuple[str, str], float]
    #: measured latency per unordered pair, microseconds
    latency_us: Mapping[tuple[str, str], float]
    #: idle-network peak bandwidth per unordered pair, MB/s
    peak_bandwidth_mbs: Mapping[tuple[str, str], float]
    livehosts: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for pairmap, label in (
            (self.bandwidth_mbs, "bandwidth"),
            (self.latency_us, "latency"),
            (self.peak_bandwidth_mbs, "peak bandwidth"),
        ):
            for a, b in pairmap:
                if a > b:
                    raise ValueError(
                        f"{label} pair {(a, b)} not canonically ordered"
                    )

    # -- accessors --------------------------------------------------------
    def pair(self, u: str, v: str) -> tuple[str, str]:
        return (u, v) if u <= v else (v, u)

    def bandwidth(self, u: str, v: str) -> float:
        return float(self.bandwidth_mbs[self.pair(u, v)])

    def latency(self, u: str, v: str) -> float:
        return float(self.latency_us[self.pair(u, v)])

    def peak_bandwidth(self, u: str, v: str) -> float:
        return float(self.peak_bandwidth_mbs[self.pair(u, v)])

    def bandwidth_complement(self, u: str, v: str) -> float:
        """The paper's ``peak bandwidth − available bandwidth`` term."""
        return max(self.peak_bandwidth(u, v) - self.bandwidth(u, v), 0.0)

    @property
    def names(self) -> list[str]:
        return list(self.nodes)


def derived_cache(snapshot: ClusterSnapshot) -> dict:
    """Per-snapshot memo space for structures derived from its contents.

    A snapshot is immutable, so anything computed from it (normalized
    load vectors, dense network-load matrices, …) stays valid for the
    snapshot's lifetime.  The cache lives on the instance itself — it is
    garbage-collected with the snapshot and never leaks across snapshots
    — and is *not* a dataclass field, so equality, ``repr`` and
    ``dataclasses.replace`` are unaffected (a ``replace``d snapshot
    starts with a fresh, empty cache).
    """
    cache = getattr(snapshot, "_derived_cache", None)
    if cache is None:
        cache = {}
        object.__setattr__(snapshot, "_derived_cache", cache)
    return cache


def build_snapshot(
    store: SharedStore,
    cluster: Cluster,
    network: NetworkModel,
    now: float,
) -> ClusterSnapshot:
    """Assemble a snapshot from monitor records in the shared store.

    Nodes lacking a ``nodestate`` record (daemon never ran / crashed
    before writing) are omitted — the allocator cannot reason about nodes
    it has no data for.  Pairs lacking probe data are omitted likewise;
    policies treat missing network data conservatively.
    """
    live = store.value("livehosts")
    livehosts = tuple(live) if live is not None else tuple(cluster.names)

    views: dict[str, NodeView] = {}
    for name in cluster.names:
        rec = store.value(f"nodestate/{name}")
        if rec is None:
            continue
        views[name] = NodeView(
            name=name,
            cores=int(rec["static"]["cores"]),
            frequency_ghz=float(rec["static"]["frequency_ghz"]),
            memory_gb=float(rec["static"]["memory_gb"]),
            users=int(rec["users"]),
            cpu_load=_fill(rec["cpu_load"]),
            cpu_util=_fill(rec["cpu_util"]),
            flow_rate_mbs=_fill(rec["flow_rate_mbs"]),
            available_memory_gb=_fill(rec["available_memory_gb"]),
            switch=rec["static"].get("switch"),
        )

    bandwidth: dict[tuple[str, str], float] = {}
    latency: dict[tuple[str, str], float] = {}
    peak: dict[tuple[str, str], float] = {}
    names = list(views)
    for i, a in enumerate(names):
        bw_rec = store.value(f"bandwidth/{a}") or {}
        lat_rec = store.value(f"latency/{a}") or {}
        for b in names[i + 1 :]:
            key = (a, b) if a <= b else (b, a)
            if b in bw_rec:
                bandwidth[key] = float(bw_rec[b])
            if b in lat_rec:
                # Prefer the 1-minute mean per §4; fall back to instantaneous.
                stats = lat_rec[b]
                latency[key] = float(
                    stats["m1"] if stats.get("m1") is not None else stats["now"]
                )
            peak[key] = network.peak_bandwidth(a, b)

    return ClusterSnapshot(
        time=now,
        nodes=views,
        bandwidth_mbs=bandwidth,
        latency_us=latency,
        peak_bandwidth_mbs=peak,
        livehosts=livehosts,
    )


def _fill(stats: Mapping[str, float | None]) -> dict[str, float]:
    """Backfill missing rolling means with the freshest available value.

    An optional ``forecast`` entry (written by the forecasting daemon
    extension) passes through so policies can plan on predicted state.
    """
    now = float(stats["now"])  # type: ignore[arg-type]
    out = {"now": now}
    prev = now
    for k in ("m1", "m5", "m15"):
        v = stats.get(k)
        prev = float(v) if v is not None else prev
        out[k] = prev
    if stats.get("forecast") is not None:
        out["forecast"] = float(stats["forecast"])  # type: ignore[arg-type]
    return out


def oracle_snapshot(
    cluster: Cluster,
    network: NetworkModel,
    now: float = 0.0,
    *,
    rng=None,
) -> ClusterSnapshot:
    """Ground-truth snapshot (no monitoring delay/staleness).

    Useful for unit tests and for isolating allocator quality from
    monitoring quality in ablations.
    """
    views: dict[str, NodeView] = {}
    up = [n for n in cluster.names if cluster.state(n).up]
    for name in up:
        spec, state = cluster.spec(name), cluster.state(name)
        flat = lambda v: {"now": v, "m1": v, "m5": v, "m15": v}  # noqa: E731
        views[name] = NodeView(
            name=name,
            cores=spec.cores,
            frequency_ghz=spec.frequency_ghz,
            memory_gb=spec.memory_gb,
            users=state.users,
            cpu_load=flat(state.cpu_load),
            cpu_util=flat(state.cpu_util),
            flow_rate_mbs=flat(state.flow_rate_mbs),
            available_memory_gb=flat(max(spec.memory_gb - state.memory_used_gb, 0.0)),
            switch=spec.switch,
        )
    pairs = [p for rnd in round_robin_rounds(up) for p in rnd]
    bw = network.bulk_available_bandwidth(pairs)
    bandwidth = {k: float(v) for k, v in bw.items()}
    latency = {
        (a, b): network.latency_us(a, b, rng=rng) for a, b in pairs
    }
    peak = {(a, b): network.peak_bandwidth(a, b) for a, b in pairs}
    return ClusterSnapshot(
        time=now,
        nodes=views,
        bandwidth_mbs=bandwidth,
        latency_us=latency,
        peak_bandwidth_mbs=peak,
        livehosts=tuple(up),
    )


class CachedSnapshotSource:
    """Staleness-aware snapshot provider for long-lived services.

    A daemon serving a request stream must not rebuild the snapshot per
    request (that would defeat the per-snapshot ``derived_cache`` memo),
    nor serve an arbitrarily old one.  This wrapper memoizes the last
    snapshot and rebuilds only when it is older than ``max_age_s`` by the
    injected ``clock`` — so every request decided within one freshness
    window shares one snapshot object *and therefore one cached
    LoadState*.

    ``refresh_hook`` (optional) runs right before each rebuild; the serve
    command uses it to advance the simulated cluster so monitor daemons
    produce genuinely new data between refreshes.
    """

    def __init__(
        self,
        source,
        *,
        max_age_s: float = 5.0,
        clock=None,
        refresh_hook=None,
    ) -> None:
        if max_age_s < 0:
            raise ValueError(f"max_age_s must be non-negative: {max_age_s}")
        import time as _time

        self._source = source
        self._clock = clock if clock is not None else _time.monotonic
        self.max_age_s = max_age_s
        self._refresh_hook = refresh_hook
        self._snapshot: ClusterSnapshot | None = None
        self._built_at: float = float("-inf")
        #: observability counters (surfaced by the broker's status RPC)
        self.refreshes = 0
        self.hits = 0

    def __call__(self) -> ClusterSnapshot:
        """The current snapshot, rebuilt only when stale."""
        now = self._clock()
        if (
            self._snapshot is not None
            and now - self._built_at <= self.max_age_s
        ):
            self.hits += 1
            return self._snapshot
        if self._refresh_hook is not None:
            self._refresh_hook()
        self._snapshot = self._source()
        self._built_at = now
        self.refreshes += 1
        return self._snapshot

    def invalidate(self) -> None:
        """Force the next call to rebuild regardless of age."""
        self._snapshot = None
        self._built_at = float("-inf")

    def age_s(self) -> float:
        """Seconds since the cached snapshot was built (``inf`` if none)."""
        if self._snapshot is None:
            return float("inf")
        return max(0.0, self._clock() - self._built_at)
