"""ClusterSnapshot — the allocator's entire view of the world.

The Node Allocator in the paper never inspects nodes directly; it reads
what the Resource Monitor wrote to the shared filesystem.  A snapshot is
therefore assembled *only* from store contents (possibly stale), plus
static peak-bandwidth knowledge.  For tests and oracle experiments,
:func:`oracle_snapshot` builds one directly from ground truth.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cluster.cluster import Cluster
from repro.monitor.store import SharedStore, StoreCorruptError
from repro.net.model import NetworkModel
from repro.net.probes import round_robin_rounds

log = logging.getLogger(__name__)


class SnapshotUnavailableError(RuntimeError):
    """No usable snapshot can be served, not even a last-known-good one.

    Raised by :class:`CachedSnapshotSource` when the underlying source
    fails (or yields an empty view) *and* the cached fallback snapshot is
    older than the configured bound — the typed signal for "the monitor
    pipeline is down"; callers answer with a structured denial instead of
    allocating blind.
    """


@dataclass(frozen=True)
class NodeView:
    """Monitor-reported attributes of one node (Table 1 of the paper)."""

    name: str
    # static
    cores: int
    frequency_ghz: float
    memory_gb: float
    # dynamic — instantaneous and 1/5/15-minute means
    users: int
    cpu_load: Mapping[str, float]          # keys: now/m1/m5/m15
    cpu_util: Mapping[str, float]
    flow_rate_mbs: Mapping[str, float]
    available_memory_gb: Mapping[str, float]
    #: leaf switch the node attaches to (static, known to the monitor;
    #: ``None`` when assembled from records lacking topology info)
    switch: str | None = None

    def load_now(self) -> float:
        return float(self.cpu_load["now"])


@dataclass(frozen=True)
class ClusterSnapshot:
    """Everything the allocator may consult when placing a job."""

    time: float
    nodes: Mapping[str, NodeView]
    #: effective (measured) bandwidth per unordered pair, MB/s
    bandwidth_mbs: Mapping[tuple[str, str], float]
    #: measured latency per unordered pair, microseconds
    latency_us: Mapping[tuple[str, str], float]
    #: idle-network peak bandwidth per unordered pair, MB/s
    peak_bandwidth_mbs: Mapping[tuple[str, str], float]
    livehosts: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for pairmap, label in (
            (self.bandwidth_mbs, "bandwidth"),
            (self.latency_us, "latency"),
            (self.peak_bandwidth_mbs, "peak bandwidth"),
        ):
            for a, b in pairmap:
                if a > b:
                    raise ValueError(
                        f"{label} pair {(a, b)} not canonically ordered"
                    )

    # -- accessors --------------------------------------------------------
    def pair(self, u: str, v: str) -> tuple[str, str]:
        return (u, v) if u <= v else (v, u)

    def bandwidth(self, u: str, v: str) -> float:
        return float(self.bandwidth_mbs[self.pair(u, v)])

    def latency(self, u: str, v: str) -> float:
        return float(self.latency_us[self.pair(u, v)])

    def peak_bandwidth(self, u: str, v: str) -> float:
        return float(self.peak_bandwidth_mbs[self.pair(u, v)])

    def bandwidth_complement(self, u: str, v: str) -> float:
        """The paper's ``peak bandwidth − available bandwidth`` term."""
        return max(self.peak_bandwidth(u, v) - self.bandwidth(u, v), 0.0)

    @property
    def names(self) -> list[str]:
        return list(self.nodes)


def derived_cache(snapshot: ClusterSnapshot) -> dict:
    """Per-snapshot memo space for structures derived from its contents.

    A snapshot is immutable, so anything computed from it (normalized
    load vectors, dense network-load matrices, …) stays valid for the
    snapshot's lifetime.  The cache lives on the instance itself — it is
    garbage-collected with the snapshot and never leaks across snapshots
    — and is *not* a dataclass field, so equality, ``repr`` and
    ``dataclasses.replace`` are unaffected (a ``replace``d snapshot
    starts with a fresh, empty cache).
    """
    cache = getattr(snapshot, "_derived_cache", None)
    if cache is None:
        cache = {}
        object.__setattr__(snapshot, "_derived_cache", cache)
    return cache


#: sanity bounds for monitor-reported attributes; a record outside these
#: is treated as corrupt (cosmic-ray NaNs, negative loads, absurd specs)
#: rather than fed to the allocator's arithmetic
_MAX_CORES = 4096
_MAX_FREQUENCY_GHZ = 100.0
_MAX_MEMORY_GB = 1 << 20
_MAX_USERS = 1_000_000
_MAX_DYNAMIC = 1e9


def _read(store: SharedStore, key: str) -> Any:
    """``store.value`` that degrades a corrupt record to "absent"."""
    try:
        return store.value(key)
    except StoreCorruptError as exc:
        log.warning("skipping corrupt store record: %s", exc)
        return None


def _bounded(value: Any, lo: float, hi: float, what: str) -> float:
    out = float(value)
    if not math.isfinite(out) or not lo <= out <= hi:
        raise ValueError(f"{what} {value!r} outside [{lo}, {hi}]")
    return out


def _checked_fill(stats: Any, what: str) -> dict[str, float]:
    filled = _fill(stats)
    for k, v in filled.items():
        _bounded(v, 0.0, _MAX_DYNAMIC, f"{what}[{k}]")
    return filled


def _validated_view(name: str, rec: Any) -> NodeView:
    """A :class:`NodeView` from one ``nodestate`` record, or ``ValueError``.

    Rejects records whose shape is wrong or whose values are NaN,
    negative, or outside physical bounds — a daemon writing garbage must
    cost the cluster one node's visibility, not the whole allocation.
    """
    static = rec["static"]
    cores = int(static["cores"])
    if not 1 <= cores <= _MAX_CORES:
        raise ValueError(f"cores {cores} outside [1, {_MAX_CORES}]")
    return NodeView(
        name=name,
        cores=cores,
        frequency_ghz=_bounded(
            static["frequency_ghz"], 1e-3, _MAX_FREQUENCY_GHZ, "frequency_ghz"
        ),
        memory_gb=_bounded(static["memory_gb"], 0.0, _MAX_MEMORY_GB, "memory_gb"),
        users=int(_bounded(rec["users"], 0, _MAX_USERS, "users")),
        cpu_load=_checked_fill(rec["cpu_load"], "cpu_load"),
        cpu_util=_checked_fill(rec["cpu_util"], "cpu_util"),
        flow_rate_mbs=_checked_fill(rec["flow_rate_mbs"], "flow_rate_mbs"),
        available_memory_gb=_checked_fill(
            rec["available_memory_gb"], "available_memory_gb"
        ),
        switch=static.get("switch"),
    )


def build_snapshot(
    store: SharedStore,
    cluster: Cluster,
    network: NetworkModel,
    now: float,
) -> ClusterSnapshot:
    """Assemble a snapshot from monitor records in the shared store.

    Nodes lacking a ``nodestate`` record (daemon never ran / crashed
    before writing) are omitted — the allocator cannot reason about nodes
    it has no data for.  Corrupt or out-of-range records are *skipped and
    logged* the same way (see :func:`_validated_view`), and pairs lacking
    probe data are omitted likewise; policies treat missing network data
    conservatively.
    """
    live = _read(store, "livehosts")
    if isinstance(live, (list, tuple)) and all(
        isinstance(n, str) for n in live
    ):
        livehosts = tuple(live)
    else:
        if live is not None:
            log.warning(
                "livehosts record is malformed (%r); assuming all nodes live",
                live,
            )
        livehosts = tuple(cluster.names)

    views: dict[str, NodeView] = {}
    for name in cluster.names:
        rec = _read(store, f"nodestate/{name}")
        if rec is None:
            continue
        try:
            views[name] = _validated_view(name, rec)
        except (KeyError, TypeError, ValueError) as exc:
            log.warning("skipping invalid nodestate/%s record: %s", name, exc)

    bandwidth: dict[tuple[str, str], float] = {}
    latency: dict[tuple[str, str], float] = {}
    peak: dict[tuple[str, str], float] = {}
    names = list(views)
    for i, a in enumerate(names):
        bw_rec = _read(store, f"bandwidth/{a}") or {}
        lat_rec = _read(store, f"latency/{a}") or {}
        if not isinstance(bw_rec, dict):
            log.warning("bandwidth/%s record is malformed; skipping", a)
            bw_rec = {}
        if not isinstance(lat_rec, dict):
            log.warning("latency/%s record is malformed; skipping", a)
            lat_rec = {}
        for b in names[i + 1 :]:
            key = (a, b) if a <= b else (b, a)
            if b in bw_rec:
                try:
                    bandwidth[key] = _bounded(
                        bw_rec[b], 0.0, _MAX_DYNAMIC, "bandwidth"
                    )
                except (TypeError, ValueError) as exc:
                    log.warning("skipping bandwidth pair %s: %s", key, exc)
            if b in lat_rec:
                # Prefer the 1-minute mean per §4; fall back to instantaneous.
                try:
                    stats = lat_rec[b]
                    raw = stats["m1"] if stats.get("m1") is not None else stats["now"]
                    latency[key] = _bounded(raw, 0.0, _MAX_DYNAMIC, "latency")
                except (KeyError, TypeError, ValueError) as exc:
                    log.warning("skipping latency pair %s: %s", key, exc)
            peak[key] = network.peak_bandwidth(a, b)

    return ClusterSnapshot(
        time=now,
        nodes=views,
        bandwidth_mbs=bandwidth,
        latency_us=latency,
        peak_bandwidth_mbs=peak,
        livehosts=livehosts,
    )


def _fill(stats: Mapping[str, float | None]) -> dict[str, float]:
    """Backfill missing rolling means with the freshest available value.

    An optional ``forecast`` entry (written by the forecasting daemon
    extension) passes through so policies can plan on predicted state.
    """
    now = float(stats["now"])  # type: ignore[arg-type]
    out = {"now": now}
    prev = now
    for k in ("m1", "m5", "m15"):
        v = stats.get(k)
        prev = float(v) if v is not None else prev
        out[k] = prev
    if stats.get("forecast") is not None:
        out["forecast"] = float(stats["forecast"])  # type: ignore[arg-type]
    return out


def oracle_snapshot(
    cluster: Cluster,
    network: NetworkModel,
    now: float = 0.0,
    *,
    rng=None,
) -> ClusterSnapshot:
    """Ground-truth snapshot (no monitoring delay/staleness).

    Useful for unit tests and for isolating allocator quality from
    monitoring quality in ablations.
    """
    views: dict[str, NodeView] = {}
    up = [n for n in cluster.names if cluster.state(n).up]
    for name in up:
        spec, state = cluster.spec(name), cluster.state(name)
        flat = lambda v: {"now": v, "m1": v, "m5": v, "m15": v}  # noqa: E731
        views[name] = NodeView(
            name=name,
            cores=spec.cores,
            frequency_ghz=spec.frequency_ghz,
            memory_gb=spec.memory_gb,
            users=state.users,
            cpu_load=flat(state.cpu_load),
            cpu_util=flat(state.cpu_util),
            flow_rate_mbs=flat(state.flow_rate_mbs),
            available_memory_gb=flat(max(spec.memory_gb - state.memory_used_gb, 0.0)),
            switch=spec.switch,
        )
    pairs = [p for rnd in round_robin_rounds(up) for p in rnd]
    bw = network.bulk_available_bandwidth(pairs)
    bandwidth = {k: float(v) for k, v in bw.items()}
    latency = {
        (a, b): network.latency_us(a, b, rng=rng) for a, b in pairs
    }
    peak = {(a, b): network.peak_bandwidth(a, b) for a, b in pairs}
    return ClusterSnapshot(
        time=now,
        nodes=views,
        bandwidth_mbs=bandwidth,
        latency_us=latency,
        peak_bandwidth_mbs=peak,
        livehosts=tuple(up),
    )


class CachedSnapshotSource:
    """Staleness-aware snapshot provider for long-lived services.

    A daemon serving a request stream must not rebuild the snapshot per
    request (that would defeat the per-snapshot ``derived_cache`` memo),
    nor serve an arbitrarily old one.  This wrapper memoizes the last
    snapshot and rebuilds only when it is older than ``max_age_s`` by the
    injected ``clock`` — so every request decided within one freshness
    window shares one snapshot object *and therefore one cached
    LoadState*.

    ``refresh_hook`` (optional) runs right before each rebuild; the serve
    command uses it to advance the simulated cluster so monitor daemons
    produce genuinely new data between refreshes.

    ``lkg_max_age_s`` (optional) arms a *last-known-good* fallback: when
    a rebuild fails (the source raises) or yields an empty snapshot —
    every record corrupt, every daemon dead — the previous snapshot keeps
    being served as long as it is no older than this bound.  Past the
    bound, :class:`SnapshotUnavailableError` propagates so callers can
    answer with a typed denial.  ``None`` (default) keeps the historical
    fail-fast behaviour.

    ``incremental`` turns on the PR-6 delta path: each refresh diffs the
    freshly built snapshot against the one currently being served
    (:func:`repro.monitor.delta.compute_delta` with the two thresholds)
    and serves a *patched* snapshot that carries the previous snapshot's
    migrated ``LoadState`` arrays and a ``(serial, generation)`` lineage
    — so neither the allocator's Equation-1/2 arrays nor the broker's
    decision memo restart from zero.  Structural changes (nodes, links,
    or livehosts appearing/vanishing) fall back to a full rebuild; an
    empty delta keeps serving the existing snapshot object unchanged.
    """

    def __init__(
        self,
        source,
        *,
        max_age_s: float = 5.0,
        clock=None,
        refresh_hook=None,
        lkg_max_age_s: float | None = None,
        incremental: bool = False,
        node_threshold: float = 0.0,
        link_threshold: float = 0.0,
    ) -> None:
        if max_age_s < 0:
            raise ValueError(f"max_age_s must be non-negative: {max_age_s}")
        if lkg_max_age_s is not None and lkg_max_age_s < max_age_s:
            raise ValueError(
                f"lkg_max_age_s ({lkg_max_age_s}) must be >= max_age_s "
                f"({max_age_s})"
            )
        if node_threshold < 0 or link_threshold < 0:
            raise ValueError(
                "delta thresholds must be non-negative: "
                f"node={node_threshold}, link={link_threshold}"
            )
        import time as _time

        self._source = source
        self._clock = clock if clock is not None else _time.monotonic
        self.max_age_s = max_age_s
        self.lkg_max_age_s = lkg_max_age_s
        self._refresh_hook = refresh_hook
        self.incremental = incremental
        self.node_threshold = node_threshold
        self.link_threshold = link_threshold
        self._snapshot: ClusterSnapshot | None = None
        self._built_at: float = float("-inf")
        #: observability counters (surfaced by the broker's status RPC)
        self.refreshes = 0
        self.hits = 0
        #: times a failed rebuild was papered over with the cached snapshot
        self.fallbacks = 0
        #: incremental-mode counters: patches served, refreshes where
        #: nothing moved beyond threshold, and structural full rebuilds
        self.deltas_applied = 0
        self.deltas_empty = 0
        self.delta_full_rebuilds = 0

    def __call__(self) -> ClusterSnapshot:
        """The current snapshot, rebuilt only when stale."""
        now = self._clock()
        if (
            self._snapshot is not None
            and now - self._built_at <= self.max_age_s
        ):
            self.hits += 1
            return self._snapshot
        if self._refresh_hook is not None:
            self._refresh_hook()
        if self.lkg_max_age_s is None:
            return self._adopt(self._source(), now)
        try:
            fresh = self._source()
        except SnapshotUnavailableError:
            raise
        except Exception as exc:  # noqa: BLE001 — degrade, don't crash
            return self._fallback(now, f"snapshot source failed: {exc!r}")
        if not fresh.nodes:
            return self._fallback(now, "snapshot source yielded no nodes")
        return self._adopt(fresh, now)

    def _adopt(self, fresh: ClusterSnapshot, now: float) -> ClusterSnapshot:
        """Install a freshly built snapshot, incrementally when possible."""
        prev = self._snapshot
        if self.incremental and prev is not None:
            # Local import: the delta module imports this one.
            from repro.monitor.delta import apply_snapshot_delta, compute_delta

            delta = compute_delta(
                prev,
                fresh,
                node_threshold=self.node_threshold,
                link_threshold=self.link_threshold,
            )
            if delta is None:
                self.delta_full_rebuilds += 1
            elif delta.is_empty:
                # Nothing moved beyond threshold: the served snapshot is
                # as good as the rebuild; keep its object identity (and
                # every derived structure) alive.
                self.deltas_empty += 1
                fresh = prev
            else:
                fresh = apply_snapshot_delta(prev, delta)
                self.deltas_applied += 1
        self._snapshot = fresh
        self._built_at = now
        self.refreshes += 1
        return fresh

    def _fallback(self, now: float, reason: str) -> ClusterSnapshot:
        """Serve the last-known-good snapshot, or raise a typed error."""
        assert self.lkg_max_age_s is not None
        age = now - self._built_at
        if self._snapshot is not None and age <= self.lkg_max_age_s:
            self.fallbacks += 1
            log.warning(
                "%s; serving last-known-good snapshot (age %.1fs <= %.1fs)",
                reason, age, self.lkg_max_age_s,
            )
            return self._snapshot
        raise SnapshotUnavailableError(
            f"{reason}; last-known-good snapshot is "
            + ("absent" if self._snapshot is None else f"{age:.1f}s old")
            + f" (bound {self.lkg_max_age_s:.1f}s)"
        )

    def invalidate(self) -> None:
        """Force the next call to rebuild regardless of age."""
        self._snapshot = None
        self._built_at = float("-inf")

    def age_s(self) -> float:
        """Seconds since the cached snapshot was built (``inf`` if none)."""
        if self._snapshot is None:
            return float("inf")
        return max(0.0, self._clock() - self._built_at)
