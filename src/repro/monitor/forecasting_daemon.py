"""NodeStateD with NWS-style forecasting (monitoring extension).

Augments every dynamic attribute's record with a one-step-ahead
``forecast`` from an :class:`~repro.monitor.forecast.AdaptiveForecaster`.
Policies can then plan against *predicted* rather than instantaneous
state — e.g. ``NetworkLoadAwarePolicy(load_key="forecast")`` sizes
Equation 3 with the forecasted CPU load, which helps when loads are
spiky and monitoring intervals are long.
"""

from __future__ import annotations

from repro.monitor.daemons import NodeStateD
from repro.monitor.forecast import AdaptiveForecaster


class ForecastingNodeStateD(NodeStateD):
    """Per-node sampler that also forecasts each dynamic attribute."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._forecasters = {
            attr: AdaptiveForecaster() for attr in self.DYNAMIC
        }

    def sample(self) -> None:
        super().sample()
        key = f"nodestate/{self.node}"
        try:
            rec = self.store.value(key)
        except Exception:  # noqa: BLE001 — a broken store read must not
            return  # kill the daemon; the base record was already written
        if not isinstance(rec, dict):
            return
        for attr, forecaster in self._forecasters.items():
            observed = rec[attr]["now"]
            forecaster.update(observed)
            prediction = forecaster.forecast()
            rec[attr]["forecast"] = (
                observed if prediction is None else prediction
            )
        self.store.put(key, rec, self.engine.now)

    def predictor_in_charge(self, attr: str) -> str:
        """Name of the currently best predictor for ``attr`` (diagnostics)."""
        return self._forecasters[attr].best_predictor().name
