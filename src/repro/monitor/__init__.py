"""The paper's Resource Monitor: daemons, shared store, snapshots.

Components map one-to-one onto Figure 3 of the paper:

* :class:`~repro.monitor.store.SharedStore` — the NFS-backed data plane
* :class:`~repro.monitor.daemons.NodeStateD` — per-node state sampler
* :class:`~repro.monitor.daemons.LivehostsD` — reachability pinger
* :class:`~repro.monitor.netdaemons.LatencyD` / ``BandwidthD`` — P2P probes
* :class:`~repro.monitor.central.CentralMonitor` — master/slave supervisor
* :class:`~repro.monitor.snapshot.ClusterSnapshot` — what the allocator sees
"""

from repro.monitor.central import CentralMonitor
from repro.monitor.daemons import Daemon, LivehostsD, NodeStateD
from repro.monitor.drift import DriftReading, DriftTracker
from repro.monitor.failures import FailureInjector
from repro.monitor.netdaemons import BandwidthD, LatencyD
from repro.monitor.rolling import RollingWindows
from repro.monitor.snapshot import (
    CachedSnapshotSource,
    ClusterSnapshot,
    NodeView,
    oracle_snapshot,
)
from repro.monitor.slicing import ShardSnapshotSource, slice_delta, slice_snapshot
from repro.monitor.store import (
    AsyncSharedStore,
    FileStore,
    InMemoryStore,
    MemoryStore,
    SharedStore,
)
from repro.monitor.system import MonitoringSystem

__all__ = [
    "CentralMonitor",
    "Daemon",
    "LivehostsD",
    "NodeStateD",
    "DriftReading",
    "DriftTracker",
    "FailureInjector",
    "BandwidthD",
    "LatencyD",
    "RollingWindows",
    "CachedSnapshotSource",
    "ClusterSnapshot",
    "NodeView",
    "oracle_snapshot",
    "AsyncSharedStore",
    "FileStore",
    "InMemoryStore",
    "MemoryStore",
    "SharedStore",
    "ShardSnapshotSource",
    "slice_delta",
    "slice_snapshot",
    "MonitoringSystem",
]
