"""Drift detection on rolling means — has a signal *moved*, not just spiked?

The elastic reallocation engine must distinguish sustained load drift
(worth paying a migration for) from the transient spikes Figure 1 shows
every shared cluster produces.  Raw instantaneous samples cannot make
that call; the paper's own monitoring design already keeps 1/5/15-minute
running means, and those are exactly the right lens:

* the **short window** (1 min) tracks where the signal is *now*;
* the **long window** (15 min) remembers where it *used to be*;
* sustained drift pushes the short mean away from the long mean and
  keeps it there, while a spike moves the short mean briefly and decays.

:class:`DriftTracker` wraps one :class:`~repro.monitor.rolling.RollingWindows`
per tracked signal and reports a :class:`DriftReading` comparing the two
window means.  It is deliberately free of any elastic-specific policy —
thresholds live with the consumer (:mod:`repro.elastic.drift`) — so other
subsystems (autoscaling, alerting) can reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.monitor.rolling import RollingWindows
from repro.util.units import MINUTES


@dataclass(frozen=True)
class DriftReading:
    """Short-vs-long rolling-mean comparison for one signal."""

    #: trailing short-window mean (the signal's current neighborhood)
    short_mean: float
    #: trailing long-window mean (the signal's recent history)
    long_mean: float
    #: ``short_mean - long_mean`` (positive = rising)
    delta: float
    #: ``delta / max(long_mean, floor)`` — scale-free drift magnitude
    relative: float
    #: number of samples contributing to the short window
    samples: int

    def exceeds(self, rel_threshold: float) -> bool:
        """Whether |relative drift| crossed ``rel_threshold``."""
        return abs(self.relative) > rel_threshold


class DriftTracker:
    """Per-key drift readings from two rolling-mean windows.

    ``short_s``/``long_s`` default to the paper's 1- and 15-minute
    monitoring windows.  ``floor`` guards the relative computation when
    the long mean is ~0 (an idle node going busy is maximal drift, not a
    division blow-up).  ``min_samples`` suppresses readings until the
    short window has enough history to mean anything.
    """

    def __init__(
        self,
        *,
        short_s: float = 1 * MINUTES,
        long_s: float = 15 * MINUTES,
        floor: float = 0.05,
        min_samples: int = 2,
    ) -> None:
        if short_s <= 0 or long_s <= short_s:
            raise ValueError(
                f"need 0 < short_s < long_s, got {short_s}/{long_s}"
            )
        if floor <= 0:
            raise ValueError(f"floor must be positive, got {floor}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.short_s = float(short_s)
        self.long_s = float(long_s)
        self.floor = float(floor)
        self.min_samples = int(min_samples)
        self._windows: dict[str, RollingWindows] = {}

    def observe(self, key: str, time: float, value: float) -> None:
        """Record one sample of signal ``key`` at ``time``."""
        win = self._windows.get(key)
        if win is None:
            win = RollingWindows((self.short_s, self.long_s))
            self._windows[key] = win
        win.add(time, value)

    def reading(self, key: str, now: float | None = None) -> DriftReading | None:
        """The current drift reading for ``key``; ``None`` when unknown.

        Returns ``None`` for untracked keys and while fewer than
        ``min_samples`` samples landed in the short window — a tracker
        that just started must not report (spurious) maximal drift.
        """
        win = self._windows.get(key)
        if win is None:
            return None
        short = win.mean(self.short_s, now)
        long = win.mean(self.long_s, now)
        if short is None or long is None:
            return None
        n_short = self._short_count(win, now)
        if n_short < self.min_samples:
            return None
        delta = short - long
        return DriftReading(
            short_mean=short,
            long_mean=long,
            delta=delta,
            relative=delta / max(long, self.floor),
            samples=n_short,
        )

    def forget(self, key: str) -> None:
        """Drop all history for ``key`` (e.g. after a migration away)."""
        self._windows.pop(key, None)

    def keys(self) -> list[str]:
        """All signals with any recorded history."""
        return list(self._windows)

    def _short_count(self, win: RollingWindows, now: float | None) -> int:
        if len(win) == 0:
            return 0
        newest = win.latest
        assert newest is not None
        samples = win._samples  # same-package access, sized O(long window)
        cutoff = (samples[-1][0] if now is None else now) - self.short_s
        return sum(1 for t, _ in samples if t >= cutoff)
