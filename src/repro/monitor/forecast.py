"""Time-series forecasting of resource signals (NWS-style extension).

The paper's related work (§2) leans on the Network Weather Service, which
"applies various time series methods and uses the method that exhibits
smallest prediction error for next forecast".  This module implements
that adaptive scheme over three simple predictors:

* last value (random-walk),
* running mean over a trailing window,
* single exponential smoothing.

:class:`AdaptiveForecaster` tracks each predictor's mean absolute error
online and forecasts with the current best — usable for any monitored
scalar (CPU load, flow rate, pair bandwidth).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque

from repro.util.validation import require_in_range, require_positive


class Predictor(ABC):
    """Online one-step-ahead predictor of a scalar series."""

    name: str = "abstract"

    @abstractmethod
    def update(self, value: float) -> None:
        """Feed the next observation."""

    @abstractmethod
    def forecast(self) -> float | None:
        """Predict the next value; ``None`` until enough data arrived."""


class LastValue(Predictor):
    """Random-walk predictor: tomorrow looks like today."""

    name = "last_value"

    def __init__(self) -> None:
        self._last: float | None = None

    def update(self, value: float) -> None:
        self._last = float(value)

    def forecast(self) -> float | None:
        return self._last


class RunningMean(Predictor):
    """Mean of the last ``window`` observations."""

    name = "running_mean"

    def __init__(self, window: int = 12) -> None:
        require_positive(window, "window")
        self._buf: deque[float] = deque(maxlen=int(window))

    def update(self, value: float) -> None:
        self._buf.append(float(value))

    def forecast(self) -> float | None:
        if not self._buf:
            return None
        return sum(self._buf) / len(self._buf)


class ExponentialSmoothing(Predictor):
    """Single exponential smoothing with factor ``alpha``."""

    name = "exp_smoothing"

    def __init__(self, alpha: float = 0.3) -> None:
        require_in_range(alpha, 0.0, 1.0, "alpha")
        self.alpha = float(alpha)
        self._state: float | None = None

    def update(self, value: float) -> None:
        v = float(value)
        if self._state is None:
            self._state = v
        else:
            self._state = self.alpha * v + (1.0 - self.alpha) * self._state

    def forecast(self) -> float | None:
        return self._state


class AdaptiveForecaster:
    """NWS-style selector: forecast with the lowest-MAE predictor so far.

    Before each update, every predictor's pending forecast is scored
    against the arriving observation; the forecaster's own prediction
    always comes from the predictor with the smallest mean absolute
    error to date (ties break by registration order).
    """

    def __init__(self, predictors: list[Predictor] | None = None) -> None:
        if predictors is None:
            predictors = [LastValue(), RunningMean(), ExponentialSmoothing()]
        if not predictors:
            raise ValueError("need at least one predictor")
        self.predictors = list(predictors)
        self._abs_err = {p.name: 0.0 for p in self.predictors}
        self._scored = {p.name: 0 for p in self.predictors}
        self.observations = 0

    def update(self, value: float) -> None:
        """Score pending forecasts against ``value``, then ingest it."""
        v = float(value)
        for p in self.predictors:
            pending = p.forecast()
            if pending is not None:
                self._abs_err[p.name] += abs(pending - v)
                self._scored[p.name] += 1
            p.update(v)
        self.observations += 1

    def mae(self, name: str) -> float | None:
        """Mean absolute error of predictor ``name`` so far."""
        if name not in self._abs_err:
            raise KeyError(f"unknown predictor {name!r}")
        if self._scored[name] == 0:
            return None
        return self._abs_err[name] / self._scored[name]

    def best_predictor(self) -> Predictor:
        """The predictor with the smallest MAE (first one before scoring)."""
        def key(p: Predictor) -> float:
            m = self.mae(p.name)
            return float("inf") if m is None else m

        best = min(self.predictors, key=key)
        return best

    def forecast(self) -> float | None:
        """One-step-ahead forecast from the current best predictor."""
        return self.best_predictor().forecast()
