"""Per-node quarantine for flapping hosts.

A node that keeps dropping out of the livehosts list is worse than a
node that is cleanly down: allocations placed on it while it happens to
be up die when it flaps again, and every flap churns the monitor data
everyone else plans against.  :class:`NodeQuarantine` watches membership
transitions and, once a node has flapped more than ``flap_threshold``
times inside ``window_s``, excludes it from placement for ``cooldown_s``
— fed to policies through the same ``exclude=`` masks that already carry
leased nodes, so no allocator code changes are needed.

The clock is injected so tests (and the chaos harness) drive time
deterministically.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.util.validation import require_non_negative, require_positive


class NodeQuarantine:
    """Flap detector + cooldown-based exclusion set."""

    def __init__(
        self,
        *,
        clock: Callable[[], float],
        flap_threshold: int = 3,
        window_s: float = 300.0,
        cooldown_s: float = 600.0,
    ) -> None:
        if flap_threshold < 1:
            raise ValueError(
                f"flap_threshold must be >= 1, got {flap_threshold}"
            )
        require_positive(window_s, "window_s")
        require_non_negative(cooldown_s, "cooldown_s")
        self._clock = clock
        self.flap_threshold = flap_threshold
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self._flaps: dict[str, deque[float]] = {}
        self._quarantined_until: dict[str, float] = {}
        self._previous: frozenset[str] | None = None
        #: observability counters
        self.flaps_recorded = 0
        self.quarantines = 0

    # -- recording ------------------------------------------------------
    def observe(self, present: Iterable[str]) -> None:
        """Feed one membership observation (e.g. a snapshot's livehosts).

        A node that was present last time and is absent now flapped.
        The first observation only records the baseline.
        """
        current = frozenset(present)
        if self._previous is not None:
            for node in self._previous - current:
                self.record_flap(node)
        self._previous = current

    def record_flap(self, node: str) -> None:
        """Count one flap; quarantine the node when the threshold trips."""
        now = self._clock()
        events = self._flaps.setdefault(node, deque())
        events.append(now)
        while events and events[0] < now - self.window_s:
            events.popleft()
        self.flaps_recorded += 1
        if len(events) >= self.flap_threshold:
            until = now + self.cooldown_s
            if self._quarantined_until.get(node, float("-inf")) < until:
                self._quarantined_until[node] = until
                self.quarantines += 1

    # -- queries --------------------------------------------------------
    def excluded(self) -> frozenset[str]:
        """Nodes currently quarantined (cooldowns pruned lazily)."""
        now = self._clock()
        expired = [
            n for n, until in self._quarantined_until.items() if until <= now
        ]
        for n in expired:
            del self._quarantined_until[n]
        return frozenset(self._quarantined_until)

    def is_quarantined(self, node: str) -> bool:
        return node in self.excluded()

    def stats(self) -> dict:
        """The JSON-serializable block for the broker's status RPC."""
        return {
            "quarantined": sorted(self.excluded()),
            "flaps_recorded": self.flaps_recorded,
            "quarantines": self.quarantines,
            "flap_threshold": self.flap_threshold,
            "window_s": self.window_s,
            "cooldown_s": self.cooldown_s,
        }
