"""Shared key-value store standing in for the paper's NFS data plane.

Every daemon writes its observations here; the Node Allocator reads only
from here.  Three implementations share one interface:

* :class:`InMemoryStore` — fast, used by simulations and tests; values
  are stored by reference (a later mutation through the caller's alias
  is visible to readers — simulations rely on cheap writes);
* :class:`MemoryStore` — in-memory but *serialized*: records are
  JSON-encoded at ``put`` and decoded at ``get``, giving FileStore's
  isolation and corruption semantics without the filesystem, plus an
  async surface (:class:`AsyncSharedStore`) so shards and the federation
  router can share monitor state from coroutine daemons;
* :class:`FileStore` — one JSON file per key under a directory, matching
  the paper's "each node daemon writes its data to the shared file
  system" literally (useful for inspecting runs on disk).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Any, Iterable


class StoreCorruptError(Exception):
    """A stored record that cannot be decoded into ``(time, value)``.

    Raised instead of a raw ``json.JSONDecodeError``/``KeyError`` so
    readers (snapshot assembly, the broker's refresh loop) can skip the
    damaged key and keep serving from the rest of the store — a torn or
    half-written file on the shared filesystem must degrade one key, not
    crash the allocator.
    """

    def __init__(self, key: str, reason: str) -> None:
        super().__init__(f"store record {key!r} is corrupt: {reason}")
        self.key = key
        self.reason = reason


class SharedStore(ABC):
    """Abstract timestamped key-value store."""

    @abstractmethod
    def put(self, key: str, value: Any, time: float) -> None:
        """Write ``value`` under ``key`` with write timestamp ``time``."""

    @abstractmethod
    def get(self, key: str) -> tuple[float, Any] | None:
        """Return ``(time, value)`` or ``None`` if the key is absent."""

    @abstractmethod
    def keys(self, prefix: str = "") -> list[str]:
        """All keys starting with ``prefix``, sorted."""

    @abstractmethod
    def delete(self, key: str) -> bool:
        """Remove ``key``; return whether it existed."""

    # -- convenience ------------------------------------------------------
    def value(self, key: str, default: Any = None) -> Any:
        """The stored value, or ``default``."""
        rec = self.get(key)
        return default if rec is None else rec[1]

    def age(self, key: str, now: float) -> float | None:
        """Seconds since ``key`` was last written, or ``None``."""
        rec = self.get(key)
        return None if rec is None else now - rec[0]


class AsyncSharedStore(ABC):
    """Awaitable counterpart of :class:`SharedStore`.

    Coroutine daemons (the federation router, shard servers) must not
    call a store that can block the event loop; this surface makes the
    contract explicit.  Backends whose operations are already
    non-blocking (:class:`MemoryStore`) implement both interfaces over
    the same data.
    """

    @abstractmethod
    async def aput(self, key: str, value: Any, time: float) -> None:
        """Write ``value`` under ``key`` with write timestamp ``time``."""

    @abstractmethod
    async def aget(self, key: str) -> tuple[float, Any] | None:
        """Return ``(time, value)`` or ``None`` if the key is absent."""

    @abstractmethod
    async def akeys(self, prefix: str = "") -> list[str]:
        """All keys starting with ``prefix``, sorted."""

    @abstractmethod
    async def adelete(self, key: str) -> bool:
        """Remove ``key``; return whether it existed."""

    # -- convenience ------------------------------------------------------
    async def avalue(self, key: str, default: Any = None) -> Any:
        """The stored value, or ``default``."""
        rec = await self.aget(key)
        return default if rec is None else rec[1]

    async def aage(self, key: str, now: float) -> float | None:
        """Seconds since ``key`` was last written, or ``None``."""
        rec = await self.aget(key)
        return None if rec is None else now - rec[0]


class InMemoryStore(SharedStore):
    """Dictionary-backed store."""

    def __init__(self) -> None:
        self._data: dict[str, tuple[float, Any]] = {}

    def put(self, key: str, value: Any, time: float) -> None:
        self._data[key] = (time, value)

    def get(self, key: str) -> tuple[float, Any] | None:
        return self._data.get(key)

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._data if k.startswith(prefix))

    def delete(self, key: str) -> bool:
        return self._data.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._data)


class MemoryStore(SharedStore, AsyncSharedStore):
    """Serialized in-memory store, safe to share across writers.

    Records are JSON-encoded at ``put`` time into one string per key —
    the exact bytes FileStore would write — so a writer mutating a value
    it already handed over cannot retroactively change what readers see,
    and undecodable records surface as :class:`StoreCorruptError` with
    the same ``(key, reason)`` contract FileStore's torn files have.

    Every operation is a single dict read/replace of an immutable
    string, so writes are atomic with respect to readers (a reader sees
    the old record or the new one, never a torn hybrid) and nothing ever
    blocks — which is what makes the :class:`AsyncSharedStore` methods
    honest straight delegations rather than thread-pool shims.
    """

    def __init__(self) -> None:
        self._data: dict[str, str] = {}

    # -- sync surface ----------------------------------------------------
    def put(self, key: str, value: Any, time: float) -> None:
        self._data[key] = json.dumps({"time": time, "value": value})

    def get(self, key: str) -> tuple[float, Any] | None:
        raw = self._data.get(key)
        if raw is None:
            return None
        try:
            rec = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorruptError(key, f"not valid JSON ({exc})") from exc
        return _decode_record(key, rec)

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._data if k.startswith(prefix))

    def delete(self, key: str) -> bool:
        return self._data.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._data)

    # -- async surface ---------------------------------------------------
    async def aput(self, key: str, value: Any, time: float) -> None:
        self.put(key, value, time)

    async def aget(self, key: str) -> tuple[float, Any] | None:
        return self.get(key)

    async def akeys(self, prefix: str = "") -> list[str]:
        return self.keys(prefix)

    async def adelete(self, key: str) -> bool:
        return self.delete(key)


def _decode_record(key: str, rec: Any) -> tuple[float, Any]:
    """``{"time": t, "value": v}`` → ``(t, v)``, or :class:`StoreCorruptError`."""
    if not isinstance(rec, dict):
        raise StoreCorruptError(
            key, f"record must be a JSON object, got {type(rec).__name__}"
        )
    if "time" not in rec or "value" not in rec:
        raise StoreCorruptError(key, "record lacks 'time'/'value' fields")
    try:
        time = float(rec["time"])
    except (TypeError, ValueError) as exc:
        raise StoreCorruptError(
            key, f"record time {rec['time']!r} is not a number"
        ) from exc
    return (time, rec["value"])


_SAFE = re.compile(r"[^A-Za-z0-9_.|-]")


class FileStore(SharedStore):
    """One JSON file per key under ``root`` (an NFS directory in the paper).

    Keys may contain ``/`` which maps to subdirectories; other unsafe
    characters are percent-escaped so arbitrary node names round-trip.
    """

    def __init__(self, root: str | Path) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        parts = [
            _SAFE.sub(lambda m: f"%{ord(m.group()):02x}", p)
            for p in key.split("/")
        ]
        if any(p in ("", ".", "..") for p in parts):
            raise ValueError(f"invalid key {key!r}")
        path = self._root.joinpath(*parts)
        # Append (don't with_suffix-replace) so keys containing dots
        # ("a.b" vs "a.c") map to distinct files.
        return path.with_name(path.name + ".json")

    def put(self, key: str, value: Any, time: float) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A *uniquely named* temp file in the same directory, then an
        # atomic rename.  A shared temp name (the old `<key>.tmp`) lets
        # two concurrent writers interleave create/truncate/rename and
        # publish a torn file; mkstemp + os.replace guarantees a reader
        # (e.g. the broker's refresh loop) only ever sees complete JSON.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps({"time": time, "value": value}))
            os.replace(tmp, path)
        except BaseException:  # noqa: BLE001 — cleanup-and-reraise: only unlinks the temp file, and must run even on KeyboardInterrupt so aborted writes don't litter the store
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get(self, key: str) -> tuple[float, Any] | None:
        path = self._path(key)
        if not path.exists():
            return None
        try:
            rec = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorruptError(key, f"not valid JSON ({exc})") from exc
        return _decode_record(key, rec)

    def keys(self, prefix: str = "") -> list[str]:
        out = []
        for p in self._root.rglob("*.json"):
            rel = p.relative_to(self._root)
            parts = rel.parts[:-1] + (rel.name[: -len(".json")],)
            key = "/".join(
                re.sub(
                    r"%([0-9a-f]{2})",
                    lambda m: chr(int(m.group(1), 16)),
                    part,
                )
                for part in parts
            )
            if key.startswith(prefix):
                out.append(key)
        return sorted(out)

    def delete(self, key: str) -> bool:
        path = self._path(key)
        if path.exists():
            path.unlink()
            return True
        return False
