"""Per-shard snapshot slicing — one subtree's view of the fleet.

A federation shard owns one switch subtree and must decide placements
against *its* slice of the monitor's snapshot: its nodes, the live hosts
among them, and only the measured links whose **both** endpoints are in
the shard (a link leaving the subtree is another shard's problem — the
router accounts for cross-shard traffic at a coarser granularity).

:func:`slice_snapshot` does one such projection; :func:`slice_delta`
projects a :class:`~repro.monitor.delta.SnapshotDelta` the same way; and
:class:`ShardSnapshotSource` wraps a parent snapshot source (typically a
:class:`~repro.monitor.snapshot.CachedSnapshotSource`) into a shard-local
source that keeps the incremental hot path alive: when the parent serves
the same object, the previous slice is returned identity-equal (so every
``derived_cache`` memo — LoadStates, lineage — survives), and when the
parent advanced, the new slice is produced by delta-patching the old one
(``compute_delta`` → ``apply_snapshot_delta``) so the shard's cached
LoadStates migrate in O(changed) instead of rebuilding O((V/N)²).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.monitor.delta import (
    SnapshotDelta,
    apply_snapshot_delta,
    compute_delta,
    snapshot_step_delta,
)
from repro.monitor.snapshot import ClusterSnapshot


def slice_snapshot(
    snapshot: ClusterSnapshot, nodes: Iterable[str]
) -> ClusterSnapshot:
    """The projection of ``snapshot`` onto ``nodes``.

    Nodes absent from the snapshot are ignored (a shard's partition is
    defined over the static topology; the monitor may momentarily know
    fewer nodes).  Pair measurements survive only when both endpoints
    are kept, and ``livehosts`` order is preserved.
    """
    keep = frozenset(nodes)
    views = {n: v for n, v in snapshot.nodes.items() if n in keep}

    def both(pair: tuple[str, str]) -> bool:
        return pair[0] in keep and pair[1] in keep

    return ClusterSnapshot(
        time=snapshot.time,
        nodes=views,
        bandwidth_mbs={
            k: v for k, v in snapshot.bandwidth_mbs.items() if both(k)
        },
        latency_us={k: v for k, v in snapshot.latency_us.items() if both(k)},
        peak_bandwidth_mbs={
            k: v for k, v in snapshot.peak_bandwidth_mbs.items() if both(k)
        },
        livehosts=tuple(h for h in snapshot.livehosts if h in keep),
    )


def slice_delta(delta: SnapshotDelta, nodes: Iterable[str]) -> SnapshotDelta:
    """The projection of ``delta`` onto ``nodes`` (may be empty)."""
    keep = frozenset(nodes)

    def both(pair: tuple[str, str]) -> bool:
        return pair[0] in keep and pair[1] in keep

    return SnapshotDelta(
        time=delta.time,
        nodes={n: v for n, v in delta.nodes.items() if n in keep},
        bandwidth_mbs={
            k: v for k, v in delta.bandwidth_mbs.items() if both(k)
        },
        latency_us={k: v for k, v in delta.latency_us.items() if both(k)},
    )


class ShardSnapshotSource:
    """A shard-local snapshot source over a parent source.

    Callable like every snapshot source (``() -> ClusterSnapshot``).
    The parent is polled on every call; slicing work happens only when
    the parent actually served a new object:

    * same parent object → the previous slice, identity-equal
      (``reuses`` counter);
    * parent advanced without structural change → the old slice is
      delta-patched into the new one, migrating its cached LoadStates
      (``deltas`` counter);
    * structural change (nodes/links/livehosts appeared or vanished) →
      a fresh slice from scratch (``rebuilds`` counter).
    """

    def __init__(
        self,
        source: Callable[[], ClusterSnapshot],
        nodes: Iterable[str],
    ) -> None:
        self.nodes = frozenset(nodes)
        if not self.nodes:
            raise ValueError("a shard snapshot source needs at least one node")
        self._source = source
        self._parent: ClusterSnapshot | None = None
        self._sliced: ClusterSnapshot | None = None
        self.reuses = 0
        self.deltas = 0
        self.rebuilds = 0

    @property
    def parent_snapshot(self) -> ClusterSnapshot | None:
        """The parent snapshot the current slice was derived from."""
        return self._parent

    def __call__(self) -> ClusterSnapshot:
        return self.sync(self._source())

    def sync(self, parent: ClusterSnapshot) -> ClusterSnapshot:
        """Serve the slice of ``parent``, incrementally when possible.

        Tries, in order: identity reuse; the one-step delta stashed on
        ``parent`` by :func:`~repro.monitor.delta.apply_snapshot_delta`
        (O(changed), no re-diffing); a full reslice with a slice-level
        diff so the shard's cached LoadStates still migrate.
        """
        if parent is self._parent and self._sliced is not None:
            self.reuses += 1
            return self._sliced
        if self._parent is not None and self._sliced is not None:
            step = snapshot_step_delta(parent, self._parent)
            if step is not None:
                return self.sync_to(parent, step)
        fresh = slice_snapshot(parent, self.nodes)
        if self._sliced is not None:
            delta = compute_delta(self._sliced, fresh)
            if delta is not None:
                fresh = apply_snapshot_delta(self._sliced, delta)
                self.deltas += 1
            else:
                self.rebuilds += 1
        else:
            self.rebuilds += 1
        self._parent = parent
        self._sliced = fresh
        return fresh

    def sync_to(
        self, parent: ClusterSnapshot, delta: SnapshotDelta
    ) -> ClusterSnapshot:
        """Adopt ``parent`` given the (possibly composed) parent delta.

        The caller asserts that ``delta`` spans exactly the gap between
        the current parent and ``parent`` — the federation router keeps
        a step-delta log precisely so lagging shards can catch up in
        O(changed) no matter how many snapshots they slept through.
        """
        if parent is self._parent and self._sliced is not None:
            self.reuses += 1
            return self._sliced
        if self._sliced is None:
            return self.sync(parent)
        fresh = apply_snapshot_delta(
            self._sliced, slice_delta(delta, self.nodes)
        )
        self.deltas += 1
        self._parent = parent
        self._sliced = fresh
        return fresh
