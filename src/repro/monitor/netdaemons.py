"""Network probing daemons: ``LatencyD`` and ``BandwidthD``.

Per the paper: "We run an MPI program at regular intervals of 1 minute for
latency and 5 minutes for bandwidth ... We schedule these P2P calculations
in a few rounds such that one node communicates with only one other node
in each round (n/2 distinct pairs of nodes communicate at a time)."

Each tick performs one full sweep organised as a round-robin tournament
(:func:`repro.net.probes.round_robin_rounds`).  Latency keeps 1- and
5-minute running means; bandwidth uses the instantaneous measurement —
both exactly as §4 of the paper specifies.  Results land in the store as
``latency/<node>`` and ``bandwidth/<node>`` records mapping peer → stats,
mirroring "each node only calculates its own latency/bandwidth with all
other nodes".
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.des.engine import Engine
from repro.monitor.daemons import Daemon
from repro.monitor.rolling import RollingWindows
from repro.monitor.store import SharedStore, StoreCorruptError
from repro.net.model import NetworkModel
from repro.net.probes import round_robin_rounds
from repro.util.units import MINUTES


def _live_nodes(store: SharedStore, cluster: Cluster) -> list[str]:
    """Nodes to probe: the livehosts list if available, else every node.

    A corrupt or malformed livehosts record must not kill a probe daemon
    — probing every member is the safe fallback (exactly what happens
    before LivehostsD's first write).
    """
    try:
        live = store.value("livehosts")
    except StoreCorruptError:
        return list(cluster.names)
    if live is None or not isinstance(live, (list, tuple)):
        return list(cluster.names)
    return [n for n in live if isinstance(n, str) and n in cluster]


class LatencyD(Daemon):
    """Sweeps all live-pair latencies every ``period_s`` (1 min paper)."""

    def __init__(
        self,
        engine: Engine,
        store: SharedStore,
        cluster: Cluster,
        network: NetworkModel,
        *,
        host: str | None = None,
        period_s: float = 60.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            engine, store, "latencyd", period_s, host=host, cluster=cluster
        )
        self._cluster = cluster
        self._network = network
        self._rng = rng
        self._windows: dict[tuple[str, str], RollingWindows] = {}

    def sample(self) -> None:
        nodes = _live_nodes(self.store, self._cluster)
        now = self.engine.now
        records: dict[str, dict[str, dict]] = {n: {} for n in nodes}
        for rnd in round_robin_rounds(nodes):
            for a, b in rnd:
                lat = self._network.latency_us(a, b, rng=self._rng)
                key = (a, b)
                win = self._windows.get(key)
                if win is None:
                    win = self._windows[key] = RollingWindows(
                        (1 * MINUTES, 5 * MINUTES)
                    )
                win.add(now, lat)
                stats = {
                    "now": lat,
                    "m1": win.mean(1 * MINUTES, now),
                    "m5": win.mean(5 * MINUTES, now),
                }
                records[a][b] = stats
                records[b][a] = stats
        for n in nodes:
            self.store.put(f"latency/{n}", records[n], now)


class BandwidthD(Daemon):
    """Sweeps all live-pair effective bandwidths every ``period_s`` (5 min)."""

    def __init__(
        self,
        engine: Engine,
        store: SharedStore,
        cluster: Cluster,
        network: NetworkModel,
        *,
        host: str | None = None,
        period_s: float = 300.0,
    ) -> None:
        super().__init__(
            engine, store, "bandwidthd", period_s, host=host, cluster=cluster
        )
        self._cluster = cluster
        self._network = network

    def sample(self) -> None:
        nodes = _live_nodes(self.store, self._cluster)
        now = self.engine.now
        pairs = [p for rnd in round_robin_rounds(nodes) for p in rnd]
        measured = self._network.bulk_available_bandwidth(pairs)
        records: dict[str, dict[str, float]] = {n: {} for n in nodes}
        for (a, b), bw in measured.items():
            records[a][b] = bw
            records[b][a] = bw
        for n in nodes:
            self.store.put(f"bandwidth/{n}", records[n], now)
