"""Malleable jobs in the DES — repricing, drift, and live migration.

The stock :class:`~repro.scheduler.scheduler.ClusterScheduler` freezes a
job's execution time at allocation instant: whatever the BSP model
priced then is when the finish event fires, however much the ambient
load drifts afterwards.  That is exactly the blind spot the elastic
engine exists for — so this module first makes *running* jobs feel
drift, then (optionally) lets them escape it:

* :class:`MalleableClusterScheduler` re-prices every running job each
  ``reprice_period_s`` against *current* ground truth: progress so far
  is banked as a work fraction (``done += elapsed / T_current``) and the
  finish event moves to ``now + (1 − done) · T_new``.  A job whose nodes
  got busy slows down mid-flight; one whose nodes cleared speeds up.
* With ``reconfigure=True`` it additionally runs the full elastic loop
  per tick: feed the snapshot to the drift monitor, replan drifting
  jobs, gate each plan on exactly-priced benefit vs. migration cost, and
  apply accepted plans through a real :class:`LeaseTable` via the
  two-phase executor.  A successful migration moves the job's load and
  ring traffic to the new nodes and pays the migration time as a dead
  delay; an (injectable) failed migration rolls back and the job
  continues untouched where it was.

The static baseline for the drifting-load experiment is this same class
with ``reconfigure=False`` — identical repricing dynamics, no escape —
so the comparison isolates reconfiguration itself.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.policies import AllocationPolicy, AllocationRequest
from repro.des.engine import Engine
from repro.elastic.cost import MigrationCostConfig, NetworkMigrationCost
from repro.elastic.drift import DriftPolicy, LoadDriftMonitor
from repro.elastic.executor import (
    MigrationFailure,
    ReconfigError,
    TwoPhaseExecutor,
)
from repro.elastic.gate import GateConfig, GateDecision, PlanGate
from repro.elastic.plan import ReconfigPlan, ReconfigPlanner
from repro.monitor.snapshot import ClusterSnapshot
from repro.net.model import NetworkModel
from repro.scheduler.leases import LeaseError, LeaseTable
from repro.scheduler.queue import ScheduledJob
from repro.scheduler.scheduler import ClusterScheduler
from repro.simmpi.job import SimJob
from repro.simmpi.placement import Placement
from repro.workload.generator import BackgroundWorkload

#: effectively-infinite lease TTL for simulated jobs (renewed each tick
#: anyway; expiry semantics are exercised by the broker tests)
_SIM_LEASE_TTL_S = 1.0e7


class MalleableClusterScheduler(ClusterScheduler):
    """FIFO scheduler whose running jobs are repriced — and movable."""

    def __init__(
        self,
        engine: Engine,
        workload: BackgroundWorkload,
        network: NetworkModel,
        snapshot_source: Callable[[], ClusterSnapshot],
        *,
        policy: AllocationPolicy | None = None,
        rng: np.random.Generator | None = None,
        exclusive_nodes: bool = True,
        job_flow_mbs: float = 8.0,
        reprice_period_s: float = 30.0,
        reconfigure: bool = False,
        planner: ReconfigPlanner | None = None,
        drift_policy: DriftPolicy | None = None,
        gate_config: GateConfig | None = None,
        cost_config: MigrationCostConfig | None = None,
        migration_failure_rate: float = 0.0,
        failure_rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            engine,
            workload,
            network,
            snapshot_source,
            policy=policy,
            rng=rng,
            exclusive_nodes=exclusive_nodes,
            job_flow_mbs=job_flow_mbs,
        )
        if reprice_period_s <= 0:
            raise ValueError(
                f"reprice_period_s must be positive, got {reprice_period_s}"
            )
        if not 0.0 <= migration_failure_rate <= 1.0:
            raise ValueError(
                "migration_failure_rate must be in [0, 1], got "
                f"{migration_failure_rate}"
            )
        self.reprice_period_s = float(reprice_period_s)
        self.reconfigure = reconfigure
        self.migration_failure_rate = float(migration_failure_rate)
        self._failure_rng = (
            failure_rng
            if failure_rng is not None
            else np.random.default_rng(0xE1A57)
        )

        self.cost_model = NetworkMigrationCost(network, cost_config)
        self.planner = planner or ReconfigPlanner()
        self.gate = PlanGate(self.cost_model, gate_config)
        self.drift_monitor = LoadDriftMonitor(drift_policy)
        self.leases = LeaseTable(
            clock=lambda: self.engine.now,
            default_ttl_s=_SIM_LEASE_TTL_S,
            max_ttl_s=_SIM_LEASE_TTL_S,
        )
        self.executor = TwoPhaseExecutor(
            self.leases, reserve_ttl_s=_SIM_LEASE_TTL_S
        )

        #: work fraction completed per running job id
        self._done: dict[int, float] = {}
        #: sim time the fraction was last banked at
        self._marks: dict[int, float] = {}
        #: current full-run execution time estimate per running job id
        self._exec_T: dict[int, float] = {}
        self._lease_ids: dict[int, str] = {}
        #: reconfiguration history: dicts with time/job_id/kind/outcome/…
        self.reconfig_events: list[dict] = []
        self._ticker = engine.every(self.reprice_period_s, self._tick)

    # -- lifecycle hooks -----------------------------------------------
    def _on_started(self, job: ScheduledJob, priced_time_s: float) -> None:
        assert job.allocation is not None
        jid = job.request.job_id
        self._done[jid] = 0.0
        self._marks[jid] = self.engine.now
        self._exec_T[jid] = max(priced_time_s, 1e-9)
        lease = self.leases.grant(
            job.allocation.nodes,
            job.allocation.procs,
            policy=job.allocation.policy,
            ppn=job.request.ppn,
        )
        self._lease_ids[jid] = lease.lease_id

    def _on_finished(self, job: ScheduledJob) -> None:
        jid = job.request.job_id
        self._done.pop(jid, None)
        self._marks.pop(jid, None)
        self._exec_T.pop(jid, None)
        lease_id = self._lease_ids.pop(jid, None)
        if lease_id is not None:
            self.gate.forget(lease_id)
            try:
                self.leases.release(lease_id)
            except LeaseError:
                pass  # lease already lapsed; nothing held either way
        # actual wall occupancy, not the allocation-time estimate
        assert job.start_time is not None and job.finish_time is not None
        job.execution_time_s = job.finish_time - job.start_time

    # -- progress accounting -------------------------------------------
    def _bank_progress(self, jid: int, now: float) -> None:
        """Convert elapsed time since the last mark into work fraction.

        A mark in the future means the job is paused mid-migration; no
        progress accrues and the mark stays put until the pause elapses.
        """
        elapsed = now - self._marks[jid]
        if elapsed <= 0:
            return
        self._done[jid] = min(
            1.0, self._done[jid] + elapsed / self._exec_T[jid]
        )
        self._marks[jid] = now

    def _pause_left_s(self, jid: int, now: float) -> float:
        """Seconds of migration dead time still ahead of ``now``."""
        return max(self._marks[jid] - now, 0.0)

    def _reschedule_finish(self, job: ScheduledJob, delay_s: float) -> None:
        jid = job.request.job_id
        old = self._finish_events.get(jid)
        if old is not None:
            old.cancel()
        self._finish_events[jid] = self.engine.schedule(
            max(delay_s, 0.0), lambda: self._finish(job)
        )

    def _price_placement(self, job: ScheduledJob, placement: Placement) -> float:
        """Full-run time for ``job`` on ``placement``, excluding itself.

        The job's own external load and ring flows are already installed
        while it runs; pricing with them present would double-count the
        job against itself (its ranks appear both as the placement and as
        background load).  Callers vacate first, price, then re-occupy.
        """
        report = SimJob(
            job.request.app, placement, self.cluster, self.network
        ).run()
        return max(report.total_time_s, 1e-9)

    # -- the periodic elastic tick -------------------------------------
    def _tick(self) -> None:
        if not self._running:
            return
        now = self.engine.now
        for jid in sorted(self._running):
            self._reprice(self._running[jid], now)
        if not self.reconfigure:
            return
        snapshot = self._snapshot_source()
        self.drift_monitor.observe_snapshot(snapshot)
        for jid in sorted(self._running):
            job = self._running.get(jid)
            if job is not None:
                self._consider_reconfig(job, snapshot)

    def _reprice(self, job: ScheduledJob, now: float) -> None:
        """Update one job's remaining time to current ground truth."""
        assert job.allocation is not None
        jid = job.request.job_id
        self._bank_progress(jid, now)
        placement = Placement.from_allocation(job.allocation)
        self._vacate(job)
        new_T = self._price_placement(job, placement)
        self._occupy(job, placement)
        self._exec_T[jid] = new_T
        remaining = (1.0 - self._done[jid]) * new_T + self._pause_left_s(
            jid, now
        )
        self._reschedule_finish(job, remaining)
        self.leases.renew(self._lease_ids[jid])

    # -- reconfiguration -----------------------------------------------
    def _consider_reconfig(
        self, job: ScheduledJob, snapshot: ClusterSnapshot
    ) -> None:
        plan = self._drift_plan(job, snapshot)
        if plan is not None:
            self._execute_plan(job, plan)

    def _drift_plan(
        self, job: ScheduledJob, snapshot: ClusterSnapshot
    ) -> ReconfigPlan | None:
        """Propose a same-size replacement when the job's nodes drift.

        The request size is the job's *current* rank count (which a fleet
        resize may have changed), so the planner compares like against
        like under one Equation-4 normalization.
        """
        assert job.allocation is not None
        jid = job.request.job_id
        lease_id = self._lease_ids[jid]
        verdict = self.drift_monitor.verdict(
            job.allocation.nodes, snapshot.time
        )
        if not verdict.triggered:
            return None
        request = AllocationRequest(
            n_processes=sum(job.allocation.procs.values()),
            ppn=job.request.ppn,
            tradeoff=job.request.app.recommended_tradeoff(),
        )
        exclude = (
            frozenset(self._busy_nodes) if self.exclusive_nodes else None
        )
        return self.planner.propose(
            snapshot,
            lease_id=lease_id,
            nodes=job.allocation.nodes,
            procs=job.allocation.procs,
            request=request,
            exclude=exclude,
        )

    def _execute_plan(
        self,
        job: ScheduledJob,
        plan: ReconfigPlan,
        *,
        fleet: bool = False,
        benefit_bonus_s: float = 0.0,
    ) -> bool:
        """Gate and apply one plan; returns True when it committed.

        ``fleet=True`` marks a fleet-initiated action: the gate skips the
        per-job cooldown and consults the global rate limiter instead.
        ``benefit_bonus_s`` adds externality value on top of the
        exactly-priced self benefit (remaining-before minus
        remaining-after) — the fleet pass uses it for shrinks, where the
        *queued* head job's avoided wait offsets the donor's own
        slowdown, so the gate prices the shrink's true net economics.
        """
        assert job.allocation is not None
        jid = job.request.job_id
        now = self.engine.now
        self._bank_progress(jid, now)
        frac_left = 1.0 - self._done[jid]
        pause_left = self._pause_left_s(jid, now)
        old_placement = Placement.from_allocation(job.allocation)
        new_allocation = plan.allocation()
        new_placement = Placement.from_allocation(new_allocation)

        # Price both placements with the job's own footprint lifted, so
        # the benefit is an apples-to-apples ground-truth delta.
        self._vacate(job)
        cur_T = self._price_placement(job, old_placement)
        new_T = self._price_placement(job, new_placement)
        cost_s = self.cost_model.migration_cost_s(plan)
        remaining_cur = frac_left * cur_T + pause_left
        remaining_new = frac_left * new_T + cost_s + pause_left
        benefit_s = remaining_cur - remaining_new + benefit_bonus_s
        decision = self.gate.evaluate(
            plan,
            remaining_s=remaining_cur,
            now=now,
            benefit_s=benefit_s,
            fleet=fleet,
        )
        if not decision:
            self._occupy(job, old_placement)
            self._exec_T[jid] = cur_T
            self._reschedule_finish(job, remaining_cur)
            return False

        try:
            self.executor.apply(plan, migrate=self._maybe_fail)
        except ReconfigError as err:
            # Rolled back: the job continues exactly where it was.
            self._occupy(job, old_placement)
            self._exec_T[jid] = cur_T
            self._reschedule_finish(job, remaining_cur)
            self._record(plan, now, "failed", decision, error=err.code)
            return False

        job.allocation = new_allocation
        self._occupy(job, new_placement)
        self._exec_T[jid] = new_T
        # The migration itself is dead time before work resumes; the
        # future-dated mark pauses progress until it has passed.
        self._reschedule_finish(job, remaining_new)
        self._marks[jid] = now + pause_left + cost_s
        self._record(plan, now, "committed", decision)
        return True

    def _maybe_fail(self, plan: ReconfigPlan) -> None:
        """Migration callback with injectable mid-flight failure."""
        if (
            self.migration_failure_rate > 0
            and self._failure_rng.random() < self.migration_failure_rate
        ):
            raise MigrationFailure(
                f"injected migration failure for lease {plan.lease_id}"
            )

    def _record(
        self,
        plan: ReconfigPlan,
        now: float,
        outcome: str,
        decision: GateDecision,
        *,
        error: str | None = None,
    ) -> None:
        self.reconfig_events.append(
            {
                "time": now,
                "lease_id": plan.lease_id,
                "kind": plan.kind,
                "outcome": outcome,
                "from": list(plan.old_nodes),
                "to": list(plan.new_nodes),
                "predicted_gain": plan.predicted_gain,
                "benefit_s": decision.benefit_s,
                "cost_s": decision.cost_s,
                "error": error,
            }
        )

    # -- observability --------------------------------------------------
    @property
    def reconfig_count(self) -> int:
        """Committed reconfigurations so far."""
        return sum(
            1 for e in self.reconfig_events if e["outcome"] == "committed"
        )

    @property
    def failed_migrations(self) -> int:
        """Migrations that died mid-flight and were rolled back."""
        return sum(
            1 for e in self.reconfig_events if e["outcome"] == "failed"
        )

    def stop(self) -> None:
        """Stop the periodic tick (after drain, for engine reuse)."""
        self._ticker.stop()
