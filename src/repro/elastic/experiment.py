"""Static vs. elastic under drifting load — the subsystem's headline claim.

One seed builds two identical simulated clusters whose background load
*drifts* (slow, large-amplitude OU excursions instead of the calibrated
Figure-1 jitter).  The same job stream runs through two schedulers:

* **static** — :class:`MalleableClusterScheduler` with reconfiguration
  off.  Jobs are still repriced against ground truth every tick, so
  drift genuinely hurts them; they just cannot escape it.
* **elastic** — the same scheduler with the full drift → plan → gate →
  two-phase-execute loop enabled.

Everything else — cluster, seeds, workload trajectory, policy, job
stream — is identical, so any difference in completion times is
attributable to reconfiguration alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.apps.minimd import MiniMD, MiniMDConfig
from repro.cluster.topology import uniform_cluster
from repro.elastic.cost import MigrationCostConfig
from repro.elastic.drift import DriftPolicy
from repro.elastic.gate import GateConfig
from repro.elastic.sim import MalleableClusterScheduler
from repro.experiments.scenario import Scenario
from repro.scheduler.queue import JobRequest, SchedulerStats
from repro.workload.generator import WorkloadConfig


def drifting_workload_config(intensity: float = 1.0) -> WorkloadConfig:
    """Workload whose ambient load wanders far and slowly.

    The stock config is calibrated to the paper's Figure 1 (load spikes
    around a fairly stable mean).  For the elastic experiment we want
    the regime the engine exists for: per-node load that climbs or falls
    by several runnable processes and *stays* there for tens of minutes
    (users logging in, long analysis scripts).  The OU parameters set
    the stationary spread to ≈ ``2.3 · intensity`` load units with a
    ~30-minute correlation time, and stronger per-node busyness skew
    makes quiet escape hatches exist when a node turns hot.
    """
    if intensity <= 0:
        raise ValueError(f"intensity must be positive, got {intensity}")
    base = WorkloadConfig()
    return replace(
        base,
        ambient_load_mu=1.2 * intensity,
        ambient_load_theta=1.0 / 1800.0,
        ambient_load_sigma=0.077 * intensity,
        busyness_sigma=0.8,
    )


def drifting_world(
    scenario: str | None,
    *,
    drift_intensity: float,
    n_nodes: int,
    nodes_per_switch: int,
):
    """Cluster + workload for one variant world, optionally from a scenario.

    Returns ``(specs, topo, workload_config, spec)`` where ``spec`` is the
    resolved :class:`~repro.scenarios.registry.ScenarioSpec` (or ``None``
    for the legacy uniform tree).  A scenario contributes its topology,
    node classes, background job/flow processes and regime fields
    (diurnal, spikes); the ambient terms stay the drifting OU this
    experiment's static-vs-elastic claim depends on.
    """
    if scenario is None:
        specs, topo = uniform_cluster(
            n_nodes, nodes_per_switch=nodes_per_switch
        )
        return specs, topo, drifting_workload_config(drift_intensity), None
    from repro.scenarios import get_scenario

    spec = get_scenario(scenario)
    specs, topo = spec.build_cluster()
    base = spec.workload_config
    workload_config = replace(
        drifting_workload_config(drift_intensity),
        jobs=base.jobs,
        netflows=base.netflows,
        diurnal=base.diurnal,
        spikes=base.spikes,
    )
    return specs, topo, workload_config, spec


def submit_offsets(spec, n_jobs: int, interarrival_s: float, streams):
    """Per-job submit offsets: fixed spacing, or the scenario's arrivals."""
    if spec is None:
        return tuple(i * interarrival_s for i in range(n_jobs))
    return spec.arrival_offsets(n_jobs, streams.child("arrivals"))


@dataclass(frozen=True)
class ElasticExperimentConfig:
    """Everything one static-vs-elastic comparison run depends on."""

    #: registered scenario providing cluster + regime (None = the legacy
    #: uniform 12-node tree; any other value changes topology, job/flow
    #: background and arrival process while keeping the drifting ambient
    #: load the experiment's claim needs)
    scenario: str | None = None
    n_nodes: int = 12
    nodes_per_switch: int = 4
    n_jobs: int = 6
    n_processes: int = 8
    ppn: int = 4
    #: miniMD problem size / length (sets job duration; the defaults
    #: price to ~30 idle minutes — long enough to live through drift)
    app_s: int = 64
    app_timesteps: int = 12000
    interarrival_s: float = 600.0
    warmup_s: float = 1800.0
    reprice_period_s: float = 30.0
    drift_intensity: float = 1.0
    migration_failure_rate: float = 0.0
    drift_policy: DriftPolicy = field(default_factory=DriftPolicy)
    gate_config: GateConfig = field(default_factory=GateConfig)
    cost_config: MigrationCostConfig = field(
        default_factory=MigrationCostConfig
    )

    def __post_init__(self) -> None:
        if self.n_nodes < 2 or self.n_jobs < 1:
            raise ValueError("need at least 2 nodes and 1 job")


@dataclass(frozen=True)
class VariantResult:
    """One scheduler variant's outcome on the drifting scenario."""

    variant: str
    stats: SchedulerStats
    reconfigs: int
    failed_migrations: int
    reconfig_events: tuple = ()

    def to_dict(self) -> dict:
        return {
            "variant": self.variant,
            "n_jobs": self.stats.n_jobs,
            "makespan_s": self.stats.makespan_s,
            "mean_wait_s": self.stats.mean_wait_s,
            "mean_turnaround_s": self.stats.mean_turnaround_s,
            "mean_execution_s": self.stats.mean_execution_s,
            "reconfigs": self.reconfigs,
            "failed_migrations": self.failed_migrations,
        }


@dataclass(frozen=True)
class ElasticComparison:
    """Static vs. elastic, same seed, same drifting world."""

    seed: int
    static: VariantResult
    elastic: VariantResult

    @property
    def turnaround_improvement_pct(self) -> float:
        """Mean-completion-time gain of elastic over static (positive = wins)."""
        base = self.static.stats.mean_turnaround_s
        if base <= 0:
            return 0.0
        return (base - self.elastic.stats.mean_turnaround_s) / base * 100.0

    @property
    def makespan_improvement_pct(self) -> float:
        base = self.static.stats.makespan_s
        if base <= 0:
            return 0.0
        return (base - self.elastic.stats.makespan_s) / base * 100.0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "static": self.static.to_dict(),
            "elastic": self.elastic.to_dict(),
            "turnaround_improvement_pct": self.turnaround_improvement_pct,
            "makespan_improvement_pct": self.makespan_improvement_pct,
        }


def run_variant(
    *,
    reconfigure: bool,
    seed: int,
    config: ElasticExperimentConfig,
) -> VariantResult:
    """One scheduler variant on a freshly built drifting-load world."""
    cfg = config
    specs, topo, workload_config, spec = drifting_world(
        cfg.scenario,
        drift_intensity=cfg.drift_intensity,
        n_nodes=cfg.n_nodes,
        nodes_per_switch=cfg.nodes_per_switch,
    )
    sc = Scenario.build(
        specs, topo, seed=seed, workload_config=workload_config
    )
    sc.warm_up(cfg.warmup_s)
    scheduler = MalleableClusterScheduler(
        sc.engine,
        sc.workload,
        sc.network,
        sc.snapshot,
        rng=sc.streams.child("scheduler"),
        reprice_period_s=cfg.reprice_period_s,
        reconfigure=reconfigure,
        drift_policy=cfg.drift_policy,
        gate_config=cfg.gate_config,
        cost_config=cfg.cost_config,
        migration_failure_rate=(
            cfg.migration_failure_rate if reconfigure else 0.0
        ),
        failure_rng=sc.streams.child("migration-failures"),
    )
    app = MiniMD(cfg.app_s, MiniMDConfig(timesteps=cfg.app_timesteps))
    t0 = sc.engine.now
    offsets = submit_offsets(
        spec, cfg.n_jobs, cfg.interarrival_s, sc.streams
    )
    for offset in offsets:
        scheduler.submit(
            JobRequest(
                app=app,
                n_processes=cfg.n_processes,
                ppn=cfg.ppn,
                submit_time=t0 + offset,
            )
        )
    stats = scheduler.drain()
    scheduler.stop()
    return VariantResult(
        variant="elastic" if reconfigure else "static",
        stats=stats,
        reconfigs=scheduler.reconfig_count,
        failed_migrations=scheduler.failed_migrations,
        reconfig_events=tuple(scheduler.reconfig_events),
    )


def run_elastic_comparison(
    *,
    seed: int = 0,
    config: ElasticExperimentConfig | None = None,
    **overrides: Any,
) -> ElasticComparison:
    """The headline experiment: same drifting world, with and without escape.

    ``overrides`` are field overrides for :class:`ElasticExperimentConfig`
    (convenience for the CLI / benchmarks).
    """
    cfg = config or ElasticExperimentConfig()
    if overrides:
        cfg = replace(cfg, **overrides)
    static = run_variant(reconfigure=False, seed=seed, config=cfg)
    elastic = run_variant(reconfigure=True, seed=seed, config=cfg)
    return ElasticComparison(seed=seed, static=static, elastic=elastic)


def comparison_rows(comparison: ElasticComparison) -> list[Mapping]:
    """Flat rows (one per variant) for tables and JSON artifacts."""
    return [
        comparison.static.to_dict(),
        comparison.elastic.to_dict(),
    ]
