"""The cost/benefit gate — a plan runs only when it pays for itself.

A planner that re-runs Algorithm 1/2 on every drift tick will happily
emit a stream of tiny improvements; acting on all of them turns the
cluster into a thrashing mess where jobs spend their lives in
checkpoint/restart.  The gate is the damper:

* the **benefit** of a plan is the wall time it saves — by default the
  Equation-4 relative gain applied to the job's remaining runtime (the
  DES integration passes an exactly-priced override instead);
* the **cost** is the migration bill from :mod:`repro.elastic.cost`;
* a plan is accepted only when benefit exceeds cost *with margin*
  (``benefit_margin``), the predicted gain clears a noise floor
  (``min_gain``), enough runtime remains to amortize anything at all
  (``min_remaining_s``), and the job is out of its post-reconfiguration
  cooldown (hysteresis against flapping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from repro.util.validation import require_non_negative, require_positive

if TYPE_CHECKING:
    from repro.elastic.plan import ReconfigPlan


class MigrationCoster(Protocol):
    """Anything that can price a plan (see :mod:`repro.elastic.cost`)."""

    def migration_cost_s(self, plan: "ReconfigPlan") -> float: ...


@dataclass(frozen=True)
class GateConfig:
    """Acceptance thresholds for reconfiguration plans."""

    #: minimum Equation-4 relative gain worth considering (noise floor)
    min_gain: float = 0.05
    #: benefit must exceed cost by this factor (1.5 = save 50% more
    #: wall time than the migration costs)
    benefit_margin: float = 1.5
    #: jobs with less remaining runtime than this never reconfigure
    min_remaining_s: float = 60.0
    #: seconds after an accepted plan before the same job may move again
    cooldown_s: float = 300.0

    def __post_init__(self) -> None:
        require_non_negative(self.min_gain, "min_gain")
        require_positive(self.benefit_margin, "benefit_margin")
        require_non_negative(self.min_remaining_s, "min_remaining_s")
        require_non_negative(self.cooldown_s, "cooldown_s")


class FleetRateLimiter:
    """Global sliding-window cap on fleet-initiated reconfigurations.

    Fleet passes bypass the per-lease cooldown (a coordinated pass must
    be able to move several jobs at once without the per-job hysteresis
    starving it), so *this* is what keeps a runaway optimizer from
    churning the whole cluster: at most ``max_actions`` accepted fleet
    actions per ``window_s`` seconds, across all leases.
    """

    def __init__(
        self, *, max_actions: int = 8, window_s: float = 300.0
    ) -> None:
        if max_actions <= 0:
            raise ValueError(
                f"max_actions must be positive, got {max_actions}"
            )
        require_positive(window_s, "window_s")
        self.max_actions = int(max_actions)
        self.window_s = float(window_s)
        self._accepts: list[float] = []

    def allow(self, now: float) -> bool:
        """Whether one more fleet action may be accepted at ``now``."""
        self._prune(now)
        return len(self._accepts) < self.max_actions

    def record(self, now: float) -> None:
        """Register one accepted fleet action at ``now``."""
        self._prune(now)
        self._accepts.append(now)

    def _prune(self, now: float) -> None:
        cutoff = now - self.window_s
        self._accepts = [t for t in self._accepts if t > cutoff]

    @property
    def in_window(self) -> int:
        """Accepted fleet actions still inside the sliding window."""
        return len(self._accepts)


@dataclass(frozen=True)
class GateDecision:
    """The gate's verdict on one plan, with its arithmetic shown."""

    accepted: bool
    #: machine-readable reason: accepted / gain_below_floor /
    #: job_nearly_done / in_cooldown / cost_exceeds_benefit /
    #: fleet_rate_limited
    reason: str
    #: predicted wall seconds saved over the job's remaining runtime
    benefit_s: float
    #: predicted wall seconds the migration itself costs
    cost_s: float

    def __bool__(self) -> bool:
        return self.accepted


class PlanGate:
    """Accepts or rejects :class:`ReconfigPlan` proposals.

    The gate remembers when it last accepted a plan for each lease and
    enforces ``cooldown_s`` between acceptances — the hysteresis that
    stops a job oscillating between two near-equal placements.  Time is
    whatever the caller passes as ``now`` (simulation or wall clock).
    """

    def __init__(
        self,
        cost_model: MigrationCoster,
        config: GateConfig | None = None,
        *,
        fleet_limiter: FleetRateLimiter | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.config = config or GateConfig()
        #: global limiter consulted instead of the per-lease cooldown for
        #: fleet-initiated plans (``evaluate(..., fleet=True)``)
        self.fleet_limiter = fleet_limiter
        self._last_accept: dict[str, float] = {}
        #: decision counters by reason (observability)
        self.counts: dict[str, int] = {}

    def evaluate(
        self,
        plan: "ReconfigPlan",
        *,
        remaining_s: float,
        now: float = 0.0,
        benefit_s: float | None = None,
        fleet: bool = False,
        record: bool = True,
    ) -> GateDecision:
        """Judge one plan against a job with ``remaining_s`` left to run.

        ``benefit_s`` overrides the default score-proxy benefit
        (``predicted_gain × remaining_s``) — the DES scheduler passes the
        exactly re-priced runtime difference instead.

        ``fleet=True`` marks a fleet-initiated plan: the per-lease
        cooldown is bypassed (a coordinated pass may legitimately touch a
        job the per-job damper would still hold) and the global
        :class:`FleetRateLimiter` — when one is configured — takes its
        place.  Per-job drift reactions keep the cooldown untouched.

        ``record=False`` judges without updating cooldown or limiter
        state — dry-run planning must not charge the budget of actions
        it never applies.
        """
        cfg = self.config
        cost_s = float(self.cost_model.migration_cost_s(plan))
        if benefit_s is None:
            benefit_s = plan.predicted_gain * max(remaining_s, 0.0)
        benefit_s = float(benefit_s)

        if remaining_s < cfg.min_remaining_s:
            return self._decide("job_nearly_done", benefit_s, cost_s)
        if plan.predicted_gain < cfg.min_gain:
            return self._decide("gain_below_floor", benefit_s, cost_s)
        if fleet:
            if self.fleet_limiter is not None and not self.fleet_limiter.allow(
                now
            ):
                return self._decide("fleet_rate_limited", benefit_s, cost_s)
        else:
            last = self._last_accept.get(plan.lease_id)
            if last is not None and now - last < cfg.cooldown_s:
                return self._decide("in_cooldown", benefit_s, cost_s)
        if benefit_s < cfg.benefit_margin * cost_s:
            return self._decide("cost_exceeds_benefit", benefit_s, cost_s)

        if record:
            self._last_accept[plan.lease_id] = now
            if fleet and self.fleet_limiter is not None:
                self.fleet_limiter.record(now)
        return self._decide("accepted", benefit_s, cost_s)

    def forget(self, lease_id: str) -> None:
        """Drop cooldown state for a finished/released lease."""
        self._last_accept.pop(lease_id, None)

    def _decide(
        self, reason: str, benefit_s: float, cost_s: float
    ) -> GateDecision:
        self.counts[reason] = self.counts.get(reason, 0) + 1
        return GateDecision(
            accepted=reason == "accepted",
            reason=reason,
            benefit_s=benefit_s,
            cost_s=cost_s,
        )
