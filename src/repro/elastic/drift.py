"""When to reconsider a placement — sustained drift on a job's nodes.

Replanning is cheap but not free (Algorithm 1/2 over the usable node
set), and acting on a plan is expensive; neither should run on every
monitor tick.  :class:`LoadDriftMonitor` watches the per-core load of
every monitored node through the generic
:class:`~repro.monitor.drift.DriftTracker` and flags a job only when the
short-window mean on enough of its nodes has pulled away from the
long-window mean — i.e. the load *moved and stayed moved*, the pattern
Figure 1 of the paper shows external users producing.

By default only *rising* drift triggers (the job's nodes getting
busier).  Falling drift elsewhere — a better placement opening up — is
still caught, because the controller replans whenever any of the job's
nodes trips; set ``rising_only=False`` to also replan when the job's own
nodes improve (useful for shrink-onto-fewer-nodes policies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.monitor.drift import DriftReading, DriftTracker
from repro.monitor.snapshot import ClusterSnapshot
from repro.util.validation import require_positive


@dataclass(frozen=True)
class DriftPolicy:
    """What counts as actionable drift."""

    #: relative short-vs-long divergence that marks a node as drifting
    rel_threshold: float = 0.25
    #: how many of the job's nodes must drift before we replan
    min_nodes: int = 1
    #: only rising load triggers (see module docstring)
    rising_only: bool = True

    def __post_init__(self) -> None:
        require_positive(self.rel_threshold, "rel_threshold")
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")

    def trips(self, reading: DriftReading) -> bool:
        """Whether one node's reading counts as drifting under this policy."""
        if self.rising_only:
            return reading.relative > self.rel_threshold
        return reading.exceeds(self.rel_threshold)


@dataclass(frozen=True)
class DriftVerdict:
    """The monitor's answer for one job at one instant."""

    #: replan this job now?
    triggered: bool
    #: the job's nodes whose load drifted past the threshold
    drifting: tuple[str, ...]
    #: per-node readings for every job node with enough history
    readings: Mapping[str, DriftReading]


class LoadDriftMonitor:
    """Tracks per-core load drift for every monitored node.

    Feed it each monitor snapshot via :meth:`observe_snapshot`; ask it
    about a specific job's nodes via :meth:`verdict`.  Load is
    normalized per core so readings are comparable across heterogeneous
    nodes (a load of 8 is idle chatter on a 64-core node and saturation
    on an 8-core one).
    """

    def __init__(
        self,
        policy: DriftPolicy | None = None,
        *,
        tracker: DriftTracker | None = None,
        load_key: str = "now",
    ) -> None:
        self.policy = policy or DriftPolicy()
        self.tracker = tracker or DriftTracker()
        #: which cpu_load entry feeds the tracker (``now`` — the rolling
        #: windows do their own averaging on top of raw samples)
        self.load_key = load_key
        #: snapshots observed (observability)
        self.observations = 0

    def observe_snapshot(self, snapshot: ClusterSnapshot) -> None:
        """Record one sample per monitored node from this snapshot."""
        for name, view in snapshot.nodes.items():
            load = float(view.cpu_load[self.load_key])
            per_core = load / max(view.cores, 1)
            self.tracker.observe(name, snapshot.time, per_core)
        self.observations += 1

    def verdict(
        self, nodes: Sequence[str], now: float | None = None
    ) -> DriftVerdict:
        """Should the job running on ``nodes`` be replanned right now?"""
        readings: dict[str, DriftReading] = {}
        drifting: list[str] = []
        for node in nodes:
            reading = self.tracker.reading(node, now)
            if reading is None:
                continue
            readings[node] = reading
            if self.policy.trips(reading):
                drifting.append(node)
        return DriftVerdict(
            triggered=len(drifting) >= self.policy.min_nodes,
            drifting=tuple(drifting),
            readings=readings,
        )

    def forget(self, nodes: Sequence[str]) -> None:
        """Drop history for nodes (e.g. decommissioned ones)."""
        for node in nodes:
            self.tracker.forget(node)
