"""Two-phase plan execution — a migration that dies strands nothing.

Applying a :class:`~repro.elastic.plan.ReconfigPlan` to the lease table
naively (release old, grant new) has an obvious failure window: if the
job's checkpoint transfer dies after the release, the job holds nothing
and its old nodes may already be double-booked.  The executor closes the
window with a reserve → switch → release protocol:

1. **reserve** — the nodes the plan *adds* are taken under a temporary
   lease (policy ``elastic-reserve``).  If any is no longer free the
   plan aborts here with ``NODE_CONFLICT`` and nothing has changed.
   The reservation carries a short TTL, so even a crashed executor
   cannot strand nodes past one sweep interval.
2. **switch** — the caller's ``migrate`` callback runs (checkpoint,
   transfer, restart).  If it raises, the reservation is released and
   the original lease is untouched: the job keeps running exactly where
   it was.  Expected migration deaths (:class:`MigrationFailure`,
   ``OSError``, ``RuntimeError``) become typed ``RECONFIG_FAILED`` with
   the cause chained; anything else is a programming error and
   propagates raw — after the same rollback.
3. **release + swap** — the reservation is dropped and the job's own
   lease is atomically :meth:`~repro.scheduler.leases.LeaseTable.swap`-ed
   onto the new node set.  The broker's service loop is single-threaded
   (asyncio), so no allocation can interleave between the two steps.

At every exit — success or any failure — the table holds either the old
placement or the new one, never both halves of one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.scheduler.leases import Lease, LeaseError, LeaseTable

if TYPE_CHECKING:
    from repro.elastic.plan import ReconfigPlan


class MigrationFailure(Exception):
    """A migration callback failed mid-flight (checkpoint, transfer, restart).

    Well-behaved ``migrate`` callbacks raise this (or :class:`OSError` /
    :class:`RuntimeError` from the transport underneath) so the executor
    can distinguish an expected migration death from a programming error.
    """


class ReconfigError(Exception):
    """A plan that could not be applied.

    ``code`` mirrors the lease-table error codes (``UNKNOWN_LEASE``,
    ``EXPIRED_LEASE``, ``NODE_CONFLICT``, ``BAD_SWAP``) plus
    ``STALE_PLAN`` (the lease no longer matches the placement the plan
    was computed against) and ``RECONFIG_FAILED`` (the migration
    callback raised; the original cause is chained).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


def release_quietly(leases: LeaseTable, lease: Lease | None) -> None:
    """Release a reservation, swallowing "already gone" outcomes.

    The rollback half of the reserve/rollback discipline: a reservation
    that already expired or was swept leaves its nodes free either way,
    so the cleanup path must never raise over it.  Shared by the
    executor and the federation router's cross-shard reserve.
    """
    if lease is None:
        return
    try:
        leases.release(lease.lease_id)
    except LeaseError:
        pass


class TwoPhaseExecutor:
    """Applies accepted plans to a :class:`LeaseTable` transactionally."""

    def __init__(
        self, leases: LeaseTable, *, reserve_ttl_s: float = 60.0
    ) -> None:
        if reserve_ttl_s <= 0:
            raise ValueError(
                f"reserve_ttl_s must be positive, got {reserve_ttl_s}"
            )
        self.leases = leases
        self.reserve_ttl_s = reserve_ttl_s
        #: observability counters
        self.attempts = 0
        self.commits = 0
        self.rollbacks = 0
        self.rejects = 0

    def apply(
        self,
        plan: "ReconfigPlan",
        *,
        migrate: Callable[["ReconfigPlan"], None] | None = None,
    ) -> Lease:
        """Run the full reserve → switch → release protocol for ``plan``.

        Returns the job's post-swap lease.  Raises :class:`ReconfigError`
        on any failure; the table is left consistent in every case (see
        module docstring).
        """
        self.attempts += 1
        lease = self.leases.get(plan.lease_id)
        if lease is None:
            self.rejects += 1
            raise ReconfigError(
                "UNKNOWN_LEASE",
                f"lease {plan.lease_id!r} is not active; plan dropped",
            )
        if set(lease.nodes) != set(plan.old_nodes):
            self.rejects += 1
            raise ReconfigError(
                "STALE_PLAN",
                f"lease {plan.lease_id} now holds {sorted(lease.nodes)} "
                f"but the plan was computed against "
                f"{sorted(plan.old_nodes)}; replan required",
            )

        add = plan.add_nodes
        drop = plan.drop_nodes

        # Phase 1 — reserve the incoming nodes under a temporary lease.
        reserve: Lease | None = None
        if add:
            try:
                reserve = self.leases.grant(
                    add,
                    {n: int(plan.procs[n]) for n in add},
                    ttl_s=self.reserve_ttl_s,
                    policy="elastic-reserve",
                )
            except LeaseError as err:
                self.rejects += 1
                raise ReconfigError(err.code, err.message) from err

        # Phase 2 — the actual migration (checkpoint/transfer/restart).
        if migrate is not None:
            try:
                migrate(plan)
            except (MigrationFailure, OSError, RuntimeError) as err:
                # RuntimeError stays in the net deliberately: untyped
                # transports (and the chaos harness's flaky_migrate) must
                # still surface as typed RECONFIG_FAILED, never escape raw.
                self._release_quietly(reserve)
                self.rollbacks += 1
                raise ReconfigError(
                    "RECONFIG_FAILED",
                    f"migration for lease {plan.lease_id} failed "
                    f"({err!r}); reservation rolled back, original "
                    "allocation intact",
                ) from err
            except BaseException:  # noqa: BLE001 — cleanup-and-reraise: a programming error in the callback propagates raw, but the reservation must never strand
                self._release_quietly(reserve)
                self.rollbacks += 1
                raise

        # Phase 3 — commit: free the reservation, swap the job's lease.
        # The service loop is single-threaded, so nothing can grab the
        # freed nodes between these two calls.
        self._release_quietly(reserve)
        try:
            swapped = self.leases.swap(
                plan.lease_id,
                add,
                drop,
                procs={n: int(c) for n, c in plan.procs.items()},
            )
        except LeaseError as err:
            # Only expiry can fail here (structure was pre-validated and
            # the adds were reserved); the table already reclaimed the
            # lease, which is consistent — the grant simply lapsed.
            self.rollbacks += 1
            raise ReconfigError(err.code, err.message) from err
        self.commits += 1
        return swapped

    def _release_quietly(self, reserve: Lease | None) -> None:
        release_quietly(self.leases, reserve)
