"""Elastic reallocation — malleable jobs under load drift.

The paper's broker picks nodes once, at submission time, yet its own
premise is that load and network state on a shared cluster *drift* while
jobs run.  This package closes the loop (in the spirit of the DMR /
MPI-malleability line of work):

* :mod:`repro.elastic.drift` — decides *when* to act: sustained drift on
  a job's nodes, read off the monitor's rolling means
  (:class:`repro.monitor.drift.DriftTracker`), not instantaneous spikes;
* :mod:`repro.elastic.plan` — decides *what* to do: re-runs the
  vectorized Algorithm 1/2 core over the nodes a job could legally use
  (its own plus all unleased ones) and emits an expand / shrink /
  migrate :class:`ReconfigPlan` with its Equation-4 score gain;
* :mod:`repro.elastic.cost` — prices what acting costs: a migration
  moves rank images over the same contended network the cost model in
  :mod:`repro.simmpi.costmodel` prices;
* :mod:`repro.elastic.gate` — accepts a plan only when the predicted
  saving over the job's remaining runtime clears the migration bill with
  margin (hysteresis against flapping);
* :mod:`repro.elastic.executor` — applies an accepted plan through the
  broker's :class:`~repro.scheduler.leases.LeaseTable` as a two-phase
  reserve → switch → release transaction, so a migration that dies
  mid-flight strands nothing and double-books nothing;
* :mod:`repro.elastic.sim` — the DES integration: a malleable
  :class:`~repro.scheduler.scheduler.ClusterScheduler` whose running
  jobs are periodically re-priced and re-placed;
* :mod:`repro.elastic.experiment` — static vs. elastic on drifting
  OU-process load traces, reproducible from one seed.
"""

from repro.elastic.cost import (
    MigrationCostConfig,
    NetworkMigrationCost,
    SnapshotMigrationCost,
)
from repro.elastic.drift import DriftPolicy, DriftVerdict, LoadDriftMonitor
from repro.elastic.executor import (
    MigrationFailure,
    ReconfigError,
    TwoPhaseExecutor,
)
from repro.elastic.gate import GateConfig, GateDecision, PlanGate
from repro.elastic.plan import ReconfigPlan, ReconfigPlanner

__all__ = [
    "DriftPolicy",
    "DriftVerdict",
    "LoadDriftMonitor",
    "GateConfig",
    "GateDecision",
    "PlanGate",
    "MigrationCostConfig",
    "NetworkMigrationCost",
    "SnapshotMigrationCost",
    "MigrationFailure",
    "ReconfigError",
    "ReconfigPlan",
    "ReconfigPlanner",
    "TwoPhaseExecutor",
]
