"""Rebalance planning — re-running Algorithm 1/2 for a *running* job.

A reconfiguration plan answers: if this job could be re-placed right
now, where would the paper's allocator put it — and is that placement
enough better than the current one to be worth acting on?

The planner reuses the PR-1 vectorized core end to end:

* the candidate universe is the job's own nodes plus every node no other
  lease holds (``exclude=`` masks the rest, exactly like the scheduler's
  busy-node masking);
* Algorithm 1 + 2 run once per *shape* — the original ``ppn``, a wider
  one (shrink: fewer nodes, more ranks each) and a narrower one (expand:
  more nodes, fewer ranks each) — so the plan space genuinely contains
  expand / shrink / migrate, not just same-shape moves;
* the incumbent placement and every proposal are scored with Equation 4
  in **one** shared normalization (one ``score_candidates_fast`` call),
  so their totals are directly comparable — comparing totals from two
  different normalizations would be meaningless.

The planner only *proposes*; accepting is the gate's job
(:mod:`repro.elastic.gate`), applying is the executor's
(:mod:`repro.elastic.executor`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Collection, Mapping, Sequence

from repro.core.arrays import (
    generate_all_candidates_fast,
    load_state,
    score_candidates_fast,
)
from repro.core.candidate import CandidateSubgraph
from repro.core.policies import Allocation, AllocationRequest
from repro.monitor.snapshot import ClusterSnapshot


@dataclass(frozen=True)
class ReconfigPlan:
    """One proposed reconfiguration of one running job/lease."""

    lease_id: str
    #: expand / shrink / migrate / rebalance (same nodes, new counts)
    kind: str
    old_nodes: tuple[str, ...]
    new_nodes: tuple[str, ...]
    old_procs: Mapping[str, int]
    procs: Mapping[str, int]
    #: Equation-4 totals under one shared normalization
    current_total: float
    proposed_total: float
    #: relative score improvement, ``(current - proposed) / current``
    predicted_gain: float
    request: AllocationRequest
    snapshot_time: float

    @property
    def add_nodes(self) -> tuple[str, ...]:
        """Nodes the job gains."""
        old = set(self.old_nodes)
        return tuple(n for n in self.new_nodes if n not in old)

    @property
    def drop_nodes(self) -> tuple[str, ...]:
        """Nodes the job loses."""
        new = set(self.new_nodes)
        return tuple(n for n in self.old_nodes if n not in new)

    @property
    def moved_ranks(self) -> int:
        """Ranks that change host (the migration traffic driver)."""
        moved = 0
        for node, count in self.procs.items():
            before = int(self.old_procs.get(node, 0))
            if count > before:
                moved += count - before
        return moved

    def allocation(self) -> Allocation:
        """The plan's target placement as a standard :class:`Allocation`."""
        return Allocation(
            policy="elastic",
            nodes=self.new_nodes,
            procs=dict(self.procs),
            request=self.request,
            snapshot_time=self.snapshot_time,
            metadata={
                "total_cost": self.proposed_total,
                "predicted_gain": self.predicted_gain,
            },
        )


def plan_kind(
    old_nodes: Sequence[str], new_nodes: Sequence[str]
) -> str:
    """Classify a node-set change: expand / shrink / migrate / rebalance."""
    old, new = set(old_nodes), set(new_nodes)
    if old == new:
        return "rebalance"
    if len(new) > len(old):
        return "expand"
    if len(new) < len(old):
        return "shrink"
    return "migrate"


class ReconfigPlanner:
    """Proposes the best reconfiguration for one running job."""

    def __init__(
        self,
        *,
        load_key: str = "m1",
        shape_factors: tuple[float, ...] = (1.0, 0.5, 2.0),
    ) -> None:
        if not shape_factors or any(f <= 0 for f in shape_factors):
            raise ValueError(
                f"shape_factors must be positive, got {shape_factors}"
            )
        #: which running mean feeds Equation 3 (matches the §5 policy)
        self.load_key = load_key
        #: ppn multipliers explored per plan (1.0 = same shape;
        #: 0.5 = expand over twice the nodes; 2.0 = shrink onto half)
        self.shape_factors = shape_factors

    # ------------------------------------------------------------------
    def propose(
        self,
        snapshot: ClusterSnapshot,
        *,
        lease_id: str,
        nodes: Sequence[str],
        procs: Mapping[str, int],
        request: AllocationRequest,
        exclude: Collection[str] | None = None,
    ) -> ReconfigPlan | None:
        """The best plan for this job, or ``None`` when staying put wins.

        ``exclude`` masks nodes held by *other* jobs; the job's own nodes
        are always usable (it is already on them).  Returns ``None`` when
        the incumbent placement scores best, when no alternative shape
        yields candidates, or when the winning proposal is the incumbent
        node set with identical process counts.
        """
        own = set(nodes)
        masked = set(exclude or ()) - own
        usable = [
            n
            for n in snapshot.nodes
            if n in snapshot.livehosts or not snapshot.livehosts
        ]
        usable = [n for n in usable if n not in masked]
        if not usable:
            return None

        proposals: list[CandidateSubgraph] = []
        for ppn in self._shapes(request):
            shaped = replace(request, ppn=ppn)
            state = load_state(
                snapshot,
                nodes=tuple(usable),
                compute_weights=shaped.compute_weights,
                network_weights=shaped.network_weights,
                ppn=shaped.ppn,
                load_key=self.load_key,
            )
            try:
                candidates = [
                    c
                    for c in generate_all_candidates_fast(
                        state, shaped.n_processes, shaped.tradeoff
                    )
                    if c.nodes
                ]
            except ValueError:
                continue
            if not candidates:
                continue
            # One winner per shape (Algorithm 2 within the shape).
            scored = score_candidates_fast(state, candidates, shaped.tradeoff)
            best = min(
                scored, key=lambda s: (s.total, s.candidate.start)
            ).candidate
            proposals.append(best)
        if not proposals:
            return None

        # Score incumbent + all shape winners under ONE normalization.
        # The scoring state uses the original request's shape parameters;
        # candidate membership (which nodes, how many each) is what varies.
        score_state = load_state(
            snapshot,
            nodes=tuple(usable),
            compute_weights=request.compute_weights,
            network_weights=request.network_weights,
            ppn=request.ppn,
            load_key=self.load_key,
        )
        current_known = all(n in score_state.index for n in nodes)
        entries: list[CandidateSubgraph] = []
        if current_known:
            entries.append(
                CandidateSubgraph(
                    start=nodes[0], nodes=tuple(nodes), procs=dict(procs)
                )
            )
        entries.extend(proposals)
        scored = score_candidates_fast(state=score_state, candidates=entries,
                                       tradeoff=request.tradeoff)
        if current_known:
            current_total = scored[0].total
            proposal_scores = scored[1:]
        else:
            # A current node vanished from monitoring (died / unmonitored):
            # any valid placement beats an unknown one.
            current_total = math.inf
            proposal_scores = scored

        winner = min(
            proposal_scores, key=lambda s: (s.total, s.candidate.start)
        )
        new_nodes = winner.candidate.nodes
        new_procs = dict(winner.candidate.procs)
        if tuple(new_nodes) == tuple(nodes) and new_procs == dict(procs):
            return None
        if math.isinf(current_total):
            gain = 1.0
        elif current_total <= 0:
            gain = 0.0
        else:
            gain = (current_total - winner.total) / current_total
        if gain <= 0:
            return None
        return ReconfigPlan(
            lease_id=lease_id,
            kind=plan_kind(nodes, new_nodes),
            old_nodes=tuple(nodes),
            new_nodes=new_nodes,
            old_procs=dict(procs),
            procs=new_procs,
            current_total=float(current_total),
            proposed_total=float(winner.total),
            predicted_gain=float(gain),
            request=request,
            snapshot_time=snapshot.time,
        )

    # ------------------------------------------------------------------
    def _shapes(self, request: AllocationRequest) -> list[int | None]:
        """Distinct ppn values to explore (original shape first)."""
        if request.ppn is None:
            return [None]
        shapes: list[int | None] = []
        for factor in self.shape_factors:
            ppn = max(1, round(request.ppn * factor))
            if ppn not in shapes and ppn <= request.n_processes:
                shapes.append(ppn)
        return shapes
