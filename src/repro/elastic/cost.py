"""What a reconfiguration costs — checkpoint traffic plus restart.

A malleable MPI job moves by checkpointing the ranks that change host,
shipping their images to the destination nodes, and relaunching there
(the DMR-style reconfigure).  The bill has two parts:

* **transfer time** — every destination node pulls the images of the
  ranks it gains.  Transfers run concurrently, so the wall cost is the
  *slowest* transfer, priced against the same contended network the
  execution model uses;
* **restart overhead** — a fixed checkpoint/relaunch/rewire term that
  makes microscopic migrations never worth it.

Two interchangeable estimators share :class:`MigrationCostConfig`:

* :class:`NetworkMigrationCost` prices transfers with
  :meth:`repro.simmpi.costmodel.MessageCostModel.point_to_point_time_s`
  against the live :class:`~repro.net.model.NetworkModel` — the DES
  scheduler uses this (ground truth, contention included);
* :class:`SnapshotMigrationCost` prices them from the monitor snapshot's
  measured pair bandwidths — all the broker daemon has (its clients are
  real processes; there is no ground-truth network object to ask).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.monitor.snapshot import ClusterSnapshot
from repro.simmpi.costmodel import MessageCostModel
from repro.util.validation import require_non_negative, require_positive

if TYPE_CHECKING:
    from repro.elastic.plan import ReconfigPlan
    from repro.net.model import NetworkModel


@dataclass(frozen=True)
class MigrationCostConfig:
    """Tunables shared by both migration-cost estimators."""

    #: checkpoint image size per rank, MB (working set, not full RSS)
    image_mb_per_rank: float = 256.0
    #: fixed checkpoint + relaunch + rewire overhead, seconds
    restart_overhead_s: float = 2.0
    #: bandwidth assumed for pairs the monitor never measured, MB/s
    fallback_bandwidth_mbs: float = 50.0

    def __post_init__(self) -> None:
        require_positive(self.image_mb_per_rank, "image_mb_per_rank")
        require_non_negative(self.restart_overhead_s, "restart_overhead_s")
        require_positive(self.fallback_bandwidth_mbs, "fallback_bandwidth_mbs")


def plan_transfers(plan: "ReconfigPlan") -> list[tuple[str, str, int]]:
    """The rank moves a plan implies: ``(src, dst, ranks_moved)`` triples.

    Every node that gains ranks pulls them from the nodes that lose
    ranks, matched round-robin; a node keeping its count moves nothing.
    Intra-node "moves" cannot occur (a node either gains or loses).
    """
    gains: list[tuple[str, int]] = []
    losses: list[tuple[str, int]] = []
    nodes = dict.fromkeys(list(plan.old_nodes) + list(plan.new_nodes))
    for node in nodes:
        before = int(plan.old_procs.get(node, 0))
        after = int(plan.procs.get(node, 0))
        if after > before:
            gains.append((node, after - before))
        elif before > after:
            losses.append((node, before - after))
    if not gains or not losses:
        return []
    transfers: list[tuple[str, str, int]] = []
    li = 0
    src, src_left = losses[0]
    for dst, need in gains:
        while need > 0:
            take = min(need, src_left)
            transfers.append((src, dst, take))
            need -= take
            src_left -= take
            if src_left == 0:
                li += 1
                if li >= len(losses):
                    return transfers
                src, src_left = losses[li]
    return transfers


class NetworkMigrationCost:
    """Migration cost priced against the live network model (DES path)."""

    def __init__(
        self,
        network: "NetworkModel",
        config: MigrationCostConfig | None = None,
    ) -> None:
        self.config = config or MigrationCostConfig()
        self._cost = MessageCostModel(network)

    def migration_cost_s(self, plan: "ReconfigPlan") -> float:
        """Wall seconds to apply ``plan`` (slowest concurrent transfer)."""
        transfers = plan_transfers(plan)
        if not transfers:
            return 0.0
        slowest = max(
            self._cost.point_to_point_time_s(
                src, dst, ranks * self.config.image_mb_per_rank
            )
            for src, dst, ranks in transfers
        )
        return slowest + self.config.restart_overhead_s


class SnapshotMigrationCost:
    """Migration cost from monitor-measured pair bandwidths (broker path)."""

    def __init__(
        self,
        snapshot: ClusterSnapshot,
        config: MigrationCostConfig | None = None,
    ) -> None:
        self.snapshot = snapshot
        self.config = config or MigrationCostConfig()

    def migration_cost_s(self, plan: "ReconfigPlan") -> float:
        """Wall seconds to apply ``plan`` under measured bandwidths."""
        transfers = plan_transfers(plan)
        if not transfers:
            return 0.0
        cfg = self.config
        slowest = 0.0
        for src, dst, ranks in transfers:
            pair = self.snapshot.pair(src, dst)
            bw = float(
                self.snapshot.bandwidth_mbs.get(
                    pair, cfg.fallback_bandwidth_mbs
                )
            )
            bw = max(bw, 1e-6)
            slowest = max(slowest, ranks * cfg.image_mb_per_rank / bw)
        return slowest + cfg.restart_overhead_s
