"""Recording cluster time series (the raw material of the paper's Fig. 1/2).

:class:`TraceRecorder` samples ground-truth node states (and optionally a
set of P2P bandwidths) on a fixed period and accumulates them into a
:class:`ClusterTrace` of NumPy arrays, which can be summarised or dumped
to CSV.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.cluster.cluster import Cluster
from repro.des.engine import Engine
from repro.net.model import NetworkModel

#: Node-state fields captured per sample, in column order.
FIELDS = ("cpu_load", "cpu_util", "memory_used_gb", "flow_rate_mbs", "users")


@dataclass
class ClusterTrace:
    """Time-indexed samples of node state and optional pair bandwidths."""

    nodes: list[str]
    times: np.ndarray  # (T,)
    data: np.ndarray  # (T, N, len(FIELDS))
    pairs: list[tuple[str, str]] = field(default_factory=list)
    pair_bandwidth: np.ndarray | None = None  # (T, P) MB/s

    def series(self, node: str, metric: str) -> np.ndarray:
        """Time series of ``metric`` (a name in FIELDS) for one node."""
        if metric not in FIELDS:
            raise KeyError(f"unknown metric {metric!r}; choose from {FIELDS}")
        try:
            j = self.nodes.index(node)
        except ValueError:
            raise KeyError(f"unknown node {node!r}") from None
        return self.data[:, j, FIELDS.index(metric)]

    def mean_series(self, metric: str) -> np.ndarray:
        """Cluster-average time series of ``metric``."""
        if metric not in FIELDS:
            raise KeyError(f"unknown metric {metric!r}; choose from {FIELDS}")
        return self.data[:, :, FIELDS.index(metric)].mean(axis=1)

    def pair_series(self, pair: tuple[str, str]) -> np.ndarray:
        """Available-bandwidth series for a tracked node pair."""
        if self.pair_bandwidth is None:
            raise ValueError("trace did not record pair bandwidths")
        canon = pair if pair[0] <= pair[1] else (pair[1], pair[0])
        try:
            j = self.pairs.index(canon)
        except ValueError:
            raise KeyError(f"pair {pair!r} was not tracked") from None
        return self.pair_bandwidth[:, j]

    def to_csv(self, path: str | Path | None = None) -> str:
        """Render node-state samples as CSV; optionally write to ``path``."""
        buf = io.StringIO()
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(["time", "node", *FIELDS])
        for t_idx, t in enumerate(self.times):
            for n_idx, node in enumerate(self.nodes):
                writer.writerow(
                    [f"{t:.1f}", node]
                    + [f"{v:.6g}" for v in self.data[t_idx, n_idx]]
                )
        text = buf.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text


class TraceRecorder:
    """Samples the cluster on a period; ``finish()`` yields the trace."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        *,
        period_s: float = 300.0,
        network: NetworkModel | None = None,
        pairs: Sequence[tuple[str, str]] = (),
    ) -> None:
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        if pairs and network is None:
            raise ValueError("tracking pair bandwidth requires a network model")
        self._cluster = cluster
        self._network = network
        self._pairs = [
            (a, b) if a <= b else (b, a) for a, b in pairs
        ]
        self._times: list[float] = []
        self._rows: list[np.ndarray] = []
        self._bw_rows: list[list[float]] = []
        # First sample one full period in, so a recorder attached at t and
        # run for k*period yields exactly k samples.
        self._task = engine.every(
            period_s,
            lambda: self._sample(engine.now),
            start=engine.now + period_s,
        )

    def _sample(self, now: float) -> None:
        snapshot = np.empty((len(self._cluster.names), len(FIELDS)))
        for i, n in enumerate(self._cluster.names):
            st = self._cluster.state(n)
            snapshot[i] = (
                st.cpu_load,
                st.cpu_util,
                st.memory_used_gb,
                st.flow_rate_mbs,
                st.users,
            )
        self._times.append(now)
        self._rows.append(snapshot)
        if self._pairs:
            assert self._network is not None
            self._bw_rows.append(
                [self._network.available_bandwidth(a, b) for a, b in self._pairs]
            )

    def finish(self) -> ClusterTrace:
        """Stop sampling and return the accumulated trace."""
        self._task.stop()
        n_fields = len(FIELDS)
        if self._rows:
            data = np.stack(self._rows)
        else:
            data = np.empty((0, len(self._cluster.names), n_fields))
        bw = np.array(self._bw_rows) if self._pairs else None
        return ClusterTrace(
            nodes=list(self._cluster.names),
            times=np.array(self._times),
            data=data,
            pairs=list(self._pairs),
            pair_bandwidth=bw,
        )
