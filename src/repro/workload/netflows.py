"""Background network traffic: data copies, backups, distributed jobs.

A cluster-wide Poisson stream of node-to-node transfers.  These flows are
what congests shared switch uplinks and produces the dark patches and
temporal fluctuation of the paper's Fig. 2 bandwidth heatmaps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.des.engine import Engine
from repro.net.flows import Flow
from repro.util.validation import require_positive

_transfer_ids = itertools.count()


@dataclass(frozen=True)
class NetFlowConfig:
    """Tunables for background transfers (cluster-wide)."""

    arrival_rate_per_hour: float = 30.0
    mean_duration_s: float = 600.0
    #: lognormal demand parameters, MB/s (median ≈ exp(mu))
    demand_mu: float = 2.5
    demand_sigma: float = 0.8
    #: cap on a single transfer's demand, MB/s
    demand_cap_mbs: float = 120.0
    #: probability the transfer crosses switches (vs. same-switch peer)
    cross_switch_prob: float = 0.6

    def __post_init__(self) -> None:
        require_positive(self.arrival_rate_per_hour, "arrival_rate_per_hour")
        require_positive(self.mean_duration_s, "mean_duration_s")
        require_positive(self.demand_cap_mbs, "demand_cap_mbs")
        if not 0.0 <= self.cross_switch_prob <= 1.0:
            raise ValueError("cross_switch_prob must be in [0, 1]")


class NetFlowProcess:
    """Generates and retires background flows on the network model.

    ``add_flow(flow)`` / ``remove_flow(flow)`` are injected so the process
    stays decoupled from :class:`repro.net.model.NetworkModel`.
    """

    def __init__(
        self,
        engine: Engine,
        nodes: Sequence[str],
        switch_of: Callable[[str], str],
        config: NetFlowConfig,
        rng: np.random.Generator,
        *,
        add_flow: Callable[[Flow], object],
        remove_flow: Callable[[Flow], None],
    ) -> None:
        if len(nodes) < 2:
            raise ValueError("NetFlowProcess needs at least two nodes")
        self._engine = engine
        self._nodes = list(nodes)
        self._switch_of = switch_of
        self.config = config
        self._rng = rng
        self._add_flow = add_flow
        self._remove_flow = remove_flow
        self.active: dict[int, Flow] = {}
        self._stopped = False
        self._by_switch: dict[str, list[str]] = {}
        for n in self._nodes:
            self._by_switch.setdefault(switch_of(n), []).append(n)
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        if self._stopped:
            return
        rate_per_s = self.config.arrival_rate_per_hour / 3600.0
        gap = float(self._rng.exponential(1.0 / rate_per_s))
        self._engine.schedule(gap, self._arrive)

    def _pick_pair(self) -> tuple[str, str]:
        rng = self._rng
        src = self._nodes[int(rng.integers(len(self._nodes)))]
        cross = rng.uniform() < self.config.cross_switch_prob
        sw = self._switch_of(src)
        same_switch_peers = [n for n in self._by_switch[sw] if n != src]
        other_peers = [n for n in self._nodes if self._switch_of(n) != sw]
        pool = other_peers if (cross and other_peers) else same_switch_peers
        if not pool:
            pool = [n for n in self._nodes if n != src]
        dst = pool[int(rng.integers(len(pool)))]
        return src, dst

    def _arrive(self) -> None:
        if self._stopped:
            return
        cfg = self.config
        src, dst = self._pick_pair()
        demand = min(
            float(self._rng.lognormal(cfg.demand_mu, cfg.demand_sigma)),
            cfg.demand_cap_mbs,
        )
        tid = next(_transfer_ids)
        flow = Flow(src=src, dst=dst, demand_mbs=demand, tag="background")
        self.active[tid] = flow
        self._add_flow(flow)
        duration = float(self._rng.exponential(cfg.mean_duration_s))
        self._engine.schedule(duration, lambda: self._depart(tid))
        self._schedule_next_arrival()

    def _depart(self, tid: int) -> None:
        flow = self.active.pop(tid, None)
        if flow is not None:
            self._remove_flow(flow)

    def stop(self) -> None:
        self._stopped = True
