"""Background batch jobs (research experiments, assignments, MPI runs).

A cluster-wide Poisson stream of compute jobs.  Three flavours:

* **normal** single-node jobs burning a few cores;
* **heavy** single-node jobs — the occasional load spikes visible in the
  paper's Fig. 1(a);
* **MPI** multi-node jobs on *consecutive* nodes — other users of the
  shared cluster launching their own parallel runs the naive way ("users
  often tend to select consecutive nodes", §5).  These create correlated
  load across node blocks and traffic among them, which is exactly why
  the paper's sequential baseline keeps colliding with existing work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.des.engine import Engine
from repro.net.flows import Flow
from repro.util.validation import require_non_negative, require_positive

_job_ids = itertools.count()


@dataclass(frozen=True)
class BatchJobConfig:
    """Tunables for the background batch-job process (cluster-wide)."""

    arrival_rate_per_hour: float = 20.0
    mean_duration_s: float = 1800.0
    #: normal jobs burn 1..max_procs_normal processes
    max_procs_normal: int = 4
    #: fraction of jobs that are heavy (load spikes)
    heavy_prob: float = 0.08
    #: heavy jobs burn heavy_procs_min..heavy_procs_max processes
    heavy_procs_min: int = 6
    heavy_procs_max: int = 14
    #: memory per process, GB
    mem_per_proc_gb: float = 0.5
    #: fraction of jobs that are multi-node MPI runs on consecutive nodes
    mpi_prob: float = 0.30
    mpi_nodes_min: int = 2
    mpi_nodes_max: int = 6
    mpi_procs_per_node_min: int = 2
    mpi_procs_per_node_max: int = 6
    #: traffic each MPI job puts between neighbouring block nodes, MB/s
    mpi_flow_min_mbs: float = 3.0
    mpi_flow_max_mbs: float = 20.0

    def __post_init__(self) -> None:
        require_positive(self.arrival_rate_per_hour, "arrival_rate_per_hour")
        require_positive(self.mean_duration_s, "mean_duration_s")
        require_positive(self.max_procs_normal, "max_procs_normal")
        if not 0.0 <= self.heavy_prob <= 1.0:
            raise ValueError("heavy_prob must be in [0, 1]")
        if not 0.0 <= self.mpi_prob <= 1.0:
            raise ValueError("mpi_prob must be in [0, 1]")
        if self.heavy_prob + self.mpi_prob > 1.0:
            raise ValueError("heavy_prob + mpi_prob must not exceed 1")
        if self.heavy_procs_max < self.heavy_procs_min:
            raise ValueError("heavy_procs_max must be >= heavy_procs_min")
        if self.mpi_nodes_max < self.mpi_nodes_min:
            raise ValueError("mpi_nodes_max must be >= mpi_nodes_min")
        if self.mpi_nodes_min < 2:
            raise ValueError("an MPI job needs at least 2 nodes")
        if self.mpi_procs_per_node_max < self.mpi_procs_per_node_min:
            raise ValueError(
                "mpi_procs_per_node_max must be >= mpi_procs_per_node_min"
            )
        if self.mpi_flow_max_mbs < self.mpi_flow_min_mbs:
            raise ValueError("mpi_flow_max_mbs must be >= mpi_flow_min_mbs")
        require_non_negative(self.mem_per_proc_gb, "mem_per_proc_gb")


@dataclass
class BatchJob:
    """A running background job spanning one or more nodes."""

    job_id: int
    #: procs per node (single-node jobs have one entry)
    procs: dict[str, int]
    memory_gb_per_node: float
    kind: str  # "normal" | "heavy" | "mpi"
    flows: list[Flow] = field(default_factory=list)

    @property
    def nodes(self) -> list[str]:
        return list(self.procs)


class BatchJobProcess:
    """Cluster-wide arrival process for background batch jobs.

    ``nodes`` must be in physical-proximity order (as cluster names are);
    MPI jobs occupy consecutive slices of it.
    """

    def __init__(
        self,
        engine: Engine,
        nodes: Sequence[str],
        config: BatchJobConfig,
        rng: np.random.Generator,
        *,
        on_change: Callable[[str], None],
        add_flow: Callable[[Flow], object] | None = None,
        remove_flow: Callable[[Flow], None] | None = None,
    ) -> None:
        if not nodes:
            raise ValueError("BatchJobProcess needs at least one node")
        self._engine = engine
        self._nodes = list(nodes)
        self.config = config
        self._rng = rng
        self._on_change = on_change
        self._add_flow = add_flow
        self._remove_flow = remove_flow
        self.active: dict[int, BatchJob] = {}
        self._stopped = False
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        if self._stopped:
            return
        rate_per_s = self.config.arrival_rate_per_hour / 3600.0
        gap = float(self._rng.exponential(1.0 / rate_per_s))
        self._engine.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        if self._stopped:
            return
        cfg = self.config
        rng = self._rng
        roll = rng.uniform()
        if roll < cfg.mpi_prob and len(self._nodes) >= cfg.mpi_nodes_min:
            job = self._make_mpi_job()
        elif roll < cfg.mpi_prob + cfg.heavy_prob:
            job = self._make_single_job(heavy=True)
        else:
            job = self._make_single_job(heavy=False)
        self.active[job.job_id] = job
        if self._add_flow is not None:
            for f in job.flows:
                self._add_flow(f)
        duration = float(rng.exponential(cfg.mean_duration_s))
        self._engine.schedule(duration, lambda: self._depart(job.job_id))
        for n in job.nodes:
            self._on_change(n)
        self._schedule_next_arrival()

    def _make_single_job(self, *, heavy: bool) -> BatchJob:
        cfg, rng = self.config, self._rng
        node = self._nodes[int(rng.integers(len(self._nodes)))]
        if heavy:
            procs = int(
                rng.integers(cfg.heavy_procs_min, cfg.heavy_procs_max + 1)
            )
        else:
            procs = int(rng.integers(1, cfg.max_procs_normal + 1))
        return BatchJob(
            job_id=next(_job_ids),
            procs={node: procs},
            memory_gb_per_node=procs * cfg.mem_per_proc_gb,
            kind="heavy" if heavy else "normal",
        )

    def _make_mpi_job(self) -> BatchJob:
        cfg, rng = self.config, self._rng
        width = int(
            rng.integers(
                cfg.mpi_nodes_min, min(cfg.mpi_nodes_max, len(self._nodes)) + 1
            )
        )
        start = int(rng.integers(len(self._nodes)))
        block = [
            self._nodes[(start + i) % len(self._nodes)] for i in range(width)
        ]
        ppn = int(
            rng.integers(
                cfg.mpi_procs_per_node_min, cfg.mpi_procs_per_node_max + 1
            )
        )
        flows: list[Flow] = []
        demand = float(rng.uniform(cfg.mpi_flow_min_mbs, cfg.mpi_flow_max_mbs))
        # Ring traffic among block members (halo-exchange style).
        for a, b in zip(block, block[1:] + block[:1]):
            if a != b:
                flows.append(
                    Flow(src=a, dst=b, demand_mbs=demand, tag="background_mpi")
                )
        return BatchJob(
            job_id=next(_job_ids),
            procs={n: ppn for n in block},
            memory_gb_per_node=ppn * cfg.mem_per_proc_gb,
            kind="mpi",
            flows=flows,
        )

    def _depart(self, job_id: int) -> None:
        job = self.active.pop(job_id, None)
        if job is None:
            return
        if self._remove_flow is not None:
            for f in job.flows:
                self._remove_flow(f)
        for n in job.nodes:
            self._on_change(n)

    def stop(self) -> None:
        self._stopped = True

    # -- aggregates ------------------------------------------------------
    def load_on(self, node: str) -> float:
        """CPU-load contribution (runnable processes) on ``node``."""
        return float(
            sum(j.procs.get(node, 0) for j in self.active.values())
        )

    def memory_on(self, node: str) -> float:
        """Memory contribution (GB) on ``node``."""
        return sum(
            j.memory_gb_per_node
            for j in self.active.values()
            if node in j.procs
        )
