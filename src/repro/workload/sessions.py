"""Interactive user sessions on shared lab machines.

Each node receives a Poisson stream of login sessions.  A session holds a
seat (users += 1), contributes CPU load and memory proportional to its
activity level, and with some probability streams data (video lectures,
downloads) as a background network flow from a randomly chosen peer.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.des.engine import Engine
from repro.util.validation import require_non_negative, require_positive

_session_ids = itertools.count()


@dataclass(frozen=True)
class SessionConfig:
    """Tunables for the interactive-session process (per node).

    Defaults target the paper's Fig. 1 regime: a handful of concurrent
    users at busy times, light average CPU load, ~25 % memory use.
    """

    arrival_rate_per_hour: float = 3.0
    mean_duration_s: float = 5400.0
    #: lognormal parameters of per-session CPU-load contribution
    load_mu: float = -0.4
    load_sigma: float = 0.9
    #: memory per session, GB (uniform range)
    mem_min_gb: float = 0.1
    mem_max_gb: float = 0.8
    #: probability the session streams data over the network
    streaming_prob: float = 0.3
    #: streaming demand, MB/s (uniform range) — e.g. video lectures
    stream_min_mbs: float = 0.5
    stream_max_mbs: float = 6.0

    def __post_init__(self) -> None:
        require_positive(self.arrival_rate_per_hour, "arrival_rate_per_hour")
        require_positive(self.mean_duration_s, "mean_duration_s")
        require_non_negative(self.mem_min_gb, "mem_min_gb")
        if self.mem_max_gb < self.mem_min_gb:
            raise ValueError("mem_max_gb must be >= mem_min_gb")
        if not 0.0 <= self.streaming_prob <= 1.0:
            raise ValueError("streaming_prob must be in [0, 1]")
        if self.stream_max_mbs < self.stream_min_mbs:
            raise ValueError("stream_max_mbs must be >= stream_min_mbs")


@dataclass
class Session:
    """A live login session and its resource contributions."""

    session_id: int
    node: str
    cpu_load: float
    memory_gb: float
    stream_mbs: float  # 0 if not streaming


class SessionProcess:
    """Drives session arrivals/departures for one node on the engine.

    ``on_change(node)`` is invoked whenever this node's session set
    changes, so the workload orchestrator can refresh ground-truth state.
    ``pick_peer(node, rng)`` supplies the remote end for streaming flows.
    """

    def __init__(
        self,
        engine: Engine,
        node: str,
        config: SessionConfig,
        rng: np.random.Generator,
        *,
        on_change: Callable[[str], None],
        pick_peer: Callable[[str, np.random.Generator], str | None],
    ) -> None:
        self._engine = engine
        self.node = node
        self.config = config
        self._rng = rng
        self._on_change = on_change
        self._pick_peer = pick_peer
        self.active: dict[int, Session] = {}
        self.peers: dict[int, str] = {}
        self._stopped = False
        self._schedule_next_arrival()

    # ------------------------------------------------------------------
    def _schedule_next_arrival(self) -> None:
        if self._stopped:
            return
        rate_per_s = self.config.arrival_rate_per_hour / 3600.0
        gap = float(self._rng.exponential(1.0 / rate_per_s))
        self._engine.schedule(gap, self._arrive)

    def _arrive(self) -> None:
        if self._stopped:
            return
        cfg = self.config
        sid = next(_session_ids)
        stream = 0.0
        if self._rng.uniform() < cfg.streaming_prob:
            peer = self._pick_peer(self.node, self._rng)
            if peer is not None:
                stream = float(
                    self._rng.uniform(cfg.stream_min_mbs, cfg.stream_max_mbs)
                )
                self.peers[sid] = peer
        sess = Session(
            session_id=sid,
            node=self.node,
            cpu_load=float(self._rng.lognormal(cfg.load_mu, cfg.load_sigma)),
            memory_gb=float(self._rng.uniform(cfg.mem_min_gb, cfg.mem_max_gb)),
            stream_mbs=stream,
        )
        self.active[sid] = sess
        duration = float(self._rng.exponential(cfg.mean_duration_s))
        self._engine.schedule(duration, lambda: self._depart(sid))
        self._on_change(self.node)
        self._schedule_next_arrival()

    def _depart(self, sid: int) -> None:
        if self.active.pop(sid, None) is not None:
            self.peers.pop(sid, None)
            self._on_change(self.node)

    def stop(self) -> None:
        """Stop generating new sessions (active ones still drain)."""
        self._stopped = True

    # -- aggregates ------------------------------------------------------
    @property
    def user_count(self) -> int:
        return len(self.active)

    @property
    def cpu_load(self) -> float:
        return sum(s.cpu_load for s in self.active.values())

    @property
    def memory_gb(self) -> float:
        return sum(s.memory_gb for s in self.active.values())

    def streams(self) -> list[tuple[int, str, float]]:
        """(session_id, peer, MB/s) for each streaming session."""
        return [
            (sid, self.peers[sid], s.stream_mbs)
            for sid, s in self.active.items()
            if s.stream_mbs > 0 and sid in self.peers
        ]
