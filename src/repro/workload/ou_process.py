"""Mean-reverting (Ornstein–Uhlenbeck) stochastic processes.

The baseline component of per-node CPU load and ambient network noise in
Figure 1 of the paper is well described by a process that fluctuates
around a base value with occasional excursions — exactly what an OU
process clipped at zero gives us.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.validation import require_non_negative, require_positive


class OUProcess:
    """Discrete-time Ornstein–Uhlenbeck process, clipped to ``>= floor``.

    dX = theta * (mu - X) dt + sigma dW

    The exact discretisation is used (not Euler), so arbitrary step sizes
    are fine:

    X(t+dt) = mu + (X(t) - mu) * exp(-theta*dt)
              + sigma * sqrt((1 - exp(-2*theta*dt)) / (2*theta)) * N(0,1)
    """

    def __init__(
        self,
        mu: float,
        theta: float,
        sigma: float,
        *,
        x0: float | None = None,
        floor: float = 0.0,
    ) -> None:
        require_positive(theta, "theta")
        require_non_negative(sigma, "sigma")
        self.mu = float(mu)
        self.theta = float(theta)
        self.sigma = float(sigma)
        self.floor = float(floor)
        self.x = max(self.floor, float(mu if x0 is None else x0))

    def step(self, dt: float, rng: np.random.Generator) -> float:
        """Advance by ``dt`` seconds and return the new value."""
        require_positive(dt, "dt")
        decay = math.exp(-self.theta * dt)
        std = self.sigma * math.sqrt((1.0 - decay * decay) / (2.0 * self.theta))
        self.x = self.mu + (self.x - self.mu) * decay + std * float(rng.normal())
        if self.x < self.floor:
            self.x = self.floor
        return self.x

    def stationary_std(self) -> float:
        """Standard deviation of the (unclipped) stationary distribution."""
        return self.sigma / math.sqrt(2.0 * self.theta)
