"""Optional load regimes layered on the background workload.

The paper's background load is stationary (OU around a fixed mean).
Savvas & Kechadi (PAPERS.md) motivate the two non-stationary shapes a
shared cluster actually shows, which the scenario zoo needs:

* :class:`DiurnalConfig` — a day/night cycle: the ambient OU mean is
  multiplied by ``1 + amplitude * sin(2*pi*(t + phase_s)/period_s)``
  every workload tick.  Purely deterministic (no RNG draws), so adding
  it never perturbs any other random stream.
* :class:`SpikeConfig` — correlated multi-node load spikes: at
  exponentially-distributed times, a random fraction of nodes all gain
  a load step for a fixed duration (a cron storm, a parallel backup).
  Driven by its own named child stream, so other streams are untouched.

Both are ``None`` by default on :class:`~repro.workload.generator.
WorkloadConfig`; legacy runs are bit-for-bit identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.des.engine import Engine
from repro.util.validation import require_positive


@dataclass(frozen=True)
class DiurnalConfig:
    """Deterministic day/night modulation of the ambient load mean."""

    #: cycle length, seconds (default: one day)
    period_s: float = 86400.0
    #: peak-to-mean modulation fraction in [0, 1)
    amplitude: float = 0.5
    #: phase offset, seconds (0 starts at the mean, rising)
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.period_s, "period_s")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude}"
            )

    def factor(self, t: float) -> float:
        """Multiplier on the ambient OU mean at simulation time ``t``."""
        return 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t + self.phase_s) / self.period_s
        )


@dataclass(frozen=True)
class SpikeConfig:
    """Correlated multi-node load spikes (cron storms, parallel backups)."""

    #: mean time between spike events, seconds (exponential)
    mean_interarrival_s: float = 1800.0
    #: fraction of nodes hit by each spike, in (0, 1]
    node_fraction: float = 0.25
    #: CPU load added to each affected node while the spike lasts
    magnitude: float = 2.0
    #: how long each spike lasts, seconds
    duration_s: float = 300.0

    def __post_init__(self) -> None:
        require_positive(self.mean_interarrival_s, "mean_interarrival_s")
        require_positive(self.magnitude, "magnitude")
        require_positive(self.duration_s, "duration_s")
        if not 0.0 < self.node_fraction <= 1.0:
            raise ValueError(
                f"node_fraction must be in (0, 1], got {self.node_fraction}"
            )


class SpikeProcess:
    """Schedules correlated load spikes over a fixed node population."""

    def __init__(
        self,
        engine: Engine,
        nodes: Sequence[str],
        config: SpikeConfig,
        rng: np.random.Generator,
        *,
        on_change: Callable[[str], None],
    ) -> None:
        self.engine = engine
        self.nodes = list(nodes)
        self.config = config
        self._rng = rng
        self._on_change = on_change
        self._load: dict[str, float] = {}
        self._stopped = False
        self._schedule_next()

    def load_on(self, node: str) -> float:
        """Current spike load on ``node`` (0 outside spikes)."""
        return self._load.get(node, 0.0)

    def stop(self) -> None:
        """Stop scheduling new spikes (active spikes drain normally)."""
        self._stopped = True

    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        delay = float(self._rng.exponential(self.config.mean_interarrival_s))
        self.engine.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        cfg = self.config
        count = max(1, int(math.ceil(cfg.node_fraction * len(self.nodes))))
        idx = self._rng.permutation(len(self.nodes))[:count]
        hit = [self.nodes[int(i)] for i in sorted(int(j) for j in idx)]
        for n in hit:
            self._load[n] = self._load.get(n, 0.0) + cfg.magnitude
            self._on_change(n)
        self.engine.schedule(cfg.duration_s, lambda: self._release(hit))
        self._schedule_next()

    def _release(self, hit: list[str]) -> None:
        for n in hit:
            remaining = self._load.get(n, 0.0) - self.config.magnitude
            if remaining < 1e-12:
                self._load.pop(n, None)
            else:
                self._load[n] = remaining
            self._on_change(n)
