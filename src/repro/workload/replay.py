"""Replaying recorded cluster traces as ground truth.

The paper's Figure 1 data is *historical* monitoring of a real cluster.
:class:`TraceReplayer` drives a simulated cluster's node states from a
recorded :class:`~repro.workload.traces.ClusterTrace` instead of the
stochastic generator — enabling reproducible scenario libraries ("replay
Tuesday's load and compare allocators on it") and fair A/B studies where
both policies face literally identical background conditions.

Network state is not part of a node trace; replay pairs naturally with a
live :class:`~repro.net.model.NetworkModel` whose background flows are
either left empty or driven separately.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.cluster.cluster import Cluster
from repro.des.engine import Engine
from repro.workload.traces import FIELDS, ClusterTrace


class TraceReplayer:
    """Feeds a recorded trace into cluster ground truth on the engine.

    Parameters
    ----------
    interpolate:
        Linearly interpolate between samples (user counts are rounded);
        when ``False``, the most recent sample is held (zero-order hold).
    loop:
        Wrap around and replay from the start after the trace ends;
        otherwise the final sample holds forever.
    period_s:
        How often ground truth is refreshed from the trace.
    """

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        trace: ClusterTrace,
        *,
        period_s: float = 15.0,
        interpolate: bool = True,
        loop: bool = False,
    ) -> None:
        if period_s <= 0:
            raise ValueError(f"period_s must be positive, got {period_s}")
        if trace.data.shape[0] == 0:
            raise ValueError("cannot replay an empty trace")
        missing = [n for n in cluster.names if n not in trace.nodes]
        if missing:
            raise ValueError(f"trace lacks nodes: {missing}")
        self.engine = engine
        self.cluster = cluster
        self.trace = trace
        self.interpolate = interpolate
        self.loop = loop
        self._col = {n: trace.nodes.index(n) for n in cluster.names}
        self._t0 = engine.now
        self._task = engine.every(period_s, self._apply)
        self._apply()

    # ------------------------------------------------------------------
    def _trace_time(self) -> float:
        elapsed = self.engine.now - self._t0
        times = self.trace.times
        start, end = float(times[0]), float(times[-1])
        span = end - start
        t = start + elapsed
        if self.loop and span > 0:
            t = start + (elapsed % span)
        return min(t, end)

    def _row(self, t: float) -> np.ndarray:
        times = self.trace.times
        data = self.trace.data
        idx = bisect.bisect_right(list(times), t) - 1
        idx = max(idx, 0)
        if not self.interpolate or idx >= len(times) - 1:
            return data[idx]
        t0, t1 = float(times[idx]), float(times[idx + 1])
        if t1 == t0:
            return data[idx]
        frac = (t - t0) / (t1 - t0)
        return (1.0 - frac) * data[idx] + frac * data[idx + 1]

    def _apply(self) -> None:
        row = self._row(self._trace_time())
        for name, col in self._col.items():
            state = self.cluster.state(name)
            vals = row[col]
            state.cpu_load = float(max(vals[FIELDS.index("cpu_load")], 0.0))
            state.cpu_util = float(
                np.clip(vals[FIELDS.index("cpu_util")], 0.0, 100.0)
            )
            state.memory_used_gb = float(
                max(vals[FIELDS.index("memory_used_gb")], 0.0)
            )
            state.flow_rate_mbs = float(
                max(vals[FIELDS.index("flow_rate_mbs")], 0.0)
            )
            state.users = int(round(max(vals[FIELDS.index("users")], 0.0)))

    def stop(self) -> None:
        """Stop refreshing; the last applied state holds."""
        self._task.stop()
