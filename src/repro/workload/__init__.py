"""Background workload substrate.

Reproduces the *shared cluster* environment of the paper's Figure 1: a lab
cluster where users log in interactively, run assignments and experiments,
stream lectures, and copy data around — producing time-varying CPU load,
CPU utilization, memory usage and network traffic on every node.
"""

from repro.workload.generator import BackgroundWorkload, WorkloadConfig
from repro.workload.jobs import BatchJobConfig, BatchJobProcess
from repro.workload.netflows import NetFlowConfig, NetFlowProcess
from repro.workload.ou_process import OUProcess
from repro.workload.replay import TraceReplayer
from repro.workload.sessions import SessionConfig, SessionProcess
from repro.workload.traces import ClusterTrace, TraceRecorder

__all__ = [
    "BackgroundWorkload",
    "WorkloadConfig",
    "BatchJobConfig",
    "BatchJobProcess",
    "NetFlowConfig",
    "NetFlowProcess",
    "OUProcess",
    "TraceReplayer",
    "SessionConfig",
    "SessionProcess",
    "ClusterTrace",
    "TraceRecorder",
]
