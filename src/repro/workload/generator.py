"""Orchestrates all background activity into ground-truth cluster state.

:class:`BackgroundWorkload` wires per-node session processes, the
cluster-wide batch-job and transfer processes, and a mean-reverting
ambient-load component onto one discrete-event engine, and keeps every
node's :class:`~repro.cluster.node.NodeState` up to date.

Per-node *busyness* multipliers (drawn once per run) make some machines
systematically quieter than others — the node A / node B contrast in the
paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.cluster import Cluster
from repro.des.engine import Engine
from repro.net.flows import Flow
from repro.net.model import NetworkModel
from repro.util.rng import RngStream
from repro.util.validation import require_positive
from repro.workload.jobs import BatchJobConfig, BatchJobProcess
from repro.workload.netflows import NetFlowConfig, NetFlowProcess
from repro.workload.ou_process import OUProcess
from repro.workload.regimes import DiurnalConfig, SpikeConfig, SpikeProcess
from repro.workload.sessions import SessionConfig, SessionProcess


@dataclass(frozen=True)
class WorkloadConfig:
    """Top-level workload tunables.

    Defaults are calibrated so a 48-hour run over the paper cluster
    reproduces the Figure 1 statistics: mean CPU utilization in the
    20–35 % band, low median load with spikes, ~25 % memory use, and
    strongly varying network I/O.
    """

    sessions: SessionConfig = field(default_factory=SessionConfig)
    jobs: BatchJobConfig = field(default_factory=BatchJobConfig)
    netflows: NetFlowConfig = field(default_factory=NetFlowConfig)
    #: ground-truth refresh period, seconds
    tick_s: float = 15.0
    #: ambient OU load component (OS housekeeping, stragglers)
    ambient_load_mu: float = 0.15
    ambient_load_theta: float = 1.0 / 600.0
    ambient_load_sigma: float = 0.02
    #: OS + services baseline memory, GB
    base_memory_gb: float = 2.5
    #: CPU utilization percent contributed per unit of CPU load per core.
    #: Well below 100: much of a lab cluster's "load" (runnable queue) is
    #: I/O-bound or time-sliced, which is how the paper's cluster shows
    #: load spikes while utilization stays in the 20-35 % band (Fig 1).
    util_per_load: float = 35.0
    #: baseline utilization percent (kernel, monitoring, desktop)
    util_base: float = 12.0
    #: std-dev of multiplicative node busyness (lognormal sigma)
    busyness_sigma: float = 0.5
    #: optional day/night cycle on the ambient mean (None = stationary)
    diurnal: DiurnalConfig | None = None
    #: optional correlated multi-node load spikes (None = no spikes)
    spikes: SpikeConfig | None = None

    def __post_init__(self) -> None:
        require_positive(self.tick_s, "tick_s")
        require_positive(self.ambient_load_theta, "ambient_load_theta")
        if self.busyness_sigma < 0:
            raise ValueError("busyness_sigma must be non-negative")


class BackgroundWorkload:
    """Drives background activity and maintains ground-truth node states."""

    def __init__(
        self,
        engine: Engine,
        cluster: Cluster,
        network: NetworkModel,
        *,
        config: WorkloadConfig | None = None,
        seed: int | RngStream = 0,
    ) -> None:
        self.engine = engine
        self.cluster = cluster
        self.network = network
        self.config = config or WorkloadConfig()
        streams = seed if isinstance(seed, RngStream) else RngStream(seed)
        self._rng = streams

        cfg = self.config
        busy_rng = streams.child("busyness")
        #: per-node activity multiplier; quiet and busy machines coexist
        self.busyness: dict[str, float] = {
            n: float(busy_rng.lognormal(0.0, cfg.busyness_sigma))
            for n in cluster.names
        }

        self._ambient: dict[str, OUProcess] = {}
        self._sessions: dict[str, SessionProcess] = {}
        self._stream_flows: dict[str, list[Flow]] = {n: [] for n in cluster.names}
        ambient_rng = streams.child("ambient")
        self._ambient_rng = ambient_rng
        for n in cluster.names:
            mult = self.busyness[n]
            self._ambient[n] = OUProcess(
                mu=cfg.ambient_load_mu * mult,
                theta=cfg.ambient_load_theta,
                sigma=cfg.ambient_load_sigma * mult,
                x0=cfg.ambient_load_mu * mult,
            )
            per_node_cfg = replace(
                cfg.sessions,
                arrival_rate_per_hour=cfg.sessions.arrival_rate_per_hour * mult,
            )
            self._sessions[n] = SessionProcess(
                engine,
                n,
                per_node_cfg,
                streams.child(f"sessions:{n}"),
                on_change=self._on_node_change,
                pick_peer=self._pick_peer,
            )

        #: ambient base means, kept so diurnal modulation is multiplicative
        self._ambient_mu0 = {n: p.mu for n, p in self._ambient.items()}
        self._spikes: SpikeProcess | None = None
        if cfg.spikes is not None:
            self._spikes = SpikeProcess(
                engine,
                cluster.names,
                cfg.spikes,
                streams.child("spikes"),
                on_change=self._refresh_node,
            )

        self._jobs = BatchJobProcess(
            engine,
            cluster.names,
            cfg.jobs,
            streams.child("jobs"),
            on_change=self._on_node_change,
            add_flow=network.add_flow,
            remove_flow=network.remove_flow,
        )
        self._netflows = NetFlowProcess(
            engine,
            cluster.names,
            cluster.topology.switch_of,
            cfg.netflows,
            streams.child("netflows"),
            add_flow=network.add_flow,
            remove_flow=network.remove_flow,
        )
        #: extra CPU load per node contributed by *scheduled MPI jobs*
        #: (the scheduling layer registers running jobs here so their
        #: ranks show up in ground truth like any other process)
        self.external_load: dict[str, float] = {}
        self._util_noise_rng = streams.child("util_noise")
        # Busy hosts progress MPI messages slowly; feed ground-truth load
        # into the network model's endpoint-latency term.
        network.set_node_load_provider(
            lambda n: cluster.state(n).cpu_load / cluster.spec(n).cores
        )
        self._tick_task = engine.every(cfg.tick_s, self._tick)
        self._refresh_all()

    # ------------------------------------------------------------------
    def _pick_peer(self, node: str, rng: np.random.Generator) -> str | None:
        others = [n for n in self.cluster.names if n != node]
        if not others:
            return None
        return others[int(rng.integers(len(others)))]

    def _on_node_change(self, node: str) -> None:
        self._sync_stream_flows(node)
        self._refresh_node(node)

    def _sync_stream_flows(self, node: str) -> None:
        for old in self._stream_flows[node]:
            if old in self.network.flows:
                self.network.remove_flow(old)
        fresh: list[Flow] = []
        for _sid, peer, mbs in self._sessions[node].streams():
            fresh.append(
                self.network.add_flow(
                    Flow(src=peer, dst=node, demand_mbs=mbs, tag="stream")
                )
            )
        self._stream_flows[node] = fresh

    def _tick(self) -> None:
        cfg = self.config
        dt = cfg.tick_s
        if cfg.diurnal is not None:
            factor = cfg.diurnal.factor(self.engine.now)
            for n, proc in self._ambient.items():
                proc.mu = self._ambient_mu0[n] * factor
        for proc in self._ambient.values():
            proc.step(dt, self._ambient_rng)
        self._refresh_all()

    def _refresh_all(self) -> None:
        node_rates = self.network.node_flow_rates()
        for n in self.cluster.names:
            self._refresh_node(n, node_rates)

    def _refresh_node(self, node: str, node_rates: dict[str, float] | None = None) -> None:
        cfg = self.config
        spec = self.cluster.spec(node)
        state = self.cluster.state(node)
        sess = self._sessions[node]

        load = (
            self._ambient[node].x
            + sess.cpu_load
            + self._jobs.load_on(node)
            + self.external_load.get(node, 0.0)
        )
        if self._spikes is not None:
            load += self._spikes.load_on(node)
        util = cfg.util_base + cfg.util_per_load * min(load, spec.cores) / spec.cores
        util += float(self._util_noise_rng.normal(0.0, 1.5))
        util = float(np.clip(util, 0.0, 100.0))

        mem = cfg.base_memory_gb + sess.memory_gb + self._jobs.memory_on(node)
        mem = min(mem, spec.memory_gb)

        if node_rates is None:
            node_rates = self.network.node_flow_rates()
        state.cpu_load = float(load)
        state.cpu_util = util
        state.memory_used_gb = float(mem)
        state.flow_rate_mbs = float(node_rates.get(node, 0.0))
        state.users = sess.user_count

    # ------------------------------------------------------------------
    def add_external_load(self, node: str, delta: float) -> None:
        """Adjust a node's scheduled-job load and refresh its state."""
        self.external_load[node] = self.external_load.get(node, 0.0) + delta
        if abs(self.external_load[node]) < 1e-12:
            del self.external_load[node]
        self._refresh_node(node)

    def stop(self) -> None:
        """Stop all generating processes (existing activity drains)."""
        self._tick_task.stop()
        for s in self._sessions.values():
            s.stop()
        if self._spikes is not None:
            self._spikes.stop()
        self._jobs.stop()
        self._netflows.stop()

    def warm_up(self, duration_s: float = 4 * 3600.0) -> None:
        """Run the engine so the workload reaches steady state."""
        self.engine.run(duration_s)
