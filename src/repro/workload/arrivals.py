"""Job arrival-time generators for the scenario zoo.

Every generator returns a sorted tuple of non-negative submit-time
*offsets* (seconds from the experiment start), fully determined by the
``numpy`` generator passed in, so the same seed always produces the
same arrival trace.  The legacy experiments' fixed-interval submits are
:func:`fixed_arrivals`; the scenario regimes add Poisson, bursty-storm,
and diurnally-modulated processes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.validation import require_positive


def fixed_arrivals(n: int, interarrival_s: float) -> tuple[float, ...]:
    """``n`` arrivals at exact ``interarrival_s`` spacing (legacy shape)."""
    _require_count(n)
    require_positive(interarrival_s, "interarrival_s")
    return tuple(i * interarrival_s for i in range(n))


def poisson_arrivals(
    n: int, mean_interarrival_s: float, rng: np.random.Generator
) -> tuple[float, ...]:
    """``n`` arrivals of a homogeneous Poisson process."""
    _require_count(n)
    require_positive(mean_interarrival_s, "mean_interarrival_s")
    gaps = rng.exponential(mean_interarrival_s, size=n)
    gaps[0] = 0.0
    return tuple(float(t) for t in np.cumsum(gaps))


def bursty_arrivals(
    n: int,
    *,
    burst_size: int,
    within_burst_s: float,
    between_bursts_s: float,
    rng: np.random.Generator,
) -> tuple[float, ...]:
    """An arrival storm: tight bursts separated by long exponential lulls.

    Jobs arrive in groups of ``burst_size`` with exponential
    ``within_burst_s`` gaps inside a burst and exponential
    ``between_bursts_s`` gaps between bursts.
    """
    _require_count(n)
    require_positive(burst_size, "burst_size")
    require_positive(within_burst_s, "within_burst_s")
    require_positive(between_bursts_s, "between_bursts_s")
    offsets: list[float] = []
    t = 0.0
    while len(offsets) < n:
        if offsets:  # lull before every burst but the first
            t += float(rng.exponential(between_bursts_s))
        for _ in range(min(burst_size, n - len(offsets))):
            offsets.append(t)
            t += float(rng.exponential(within_burst_s))
    return tuple(offsets[:n])


def diurnal_arrivals(
    n: int,
    *,
    mean_interarrival_s: float,
    period_s: float = 86400.0,
    amplitude: float = 0.5,
    rng: np.random.Generator,
) -> tuple[float, ...]:
    """A non-homogeneous Poisson process following a day/night cycle.

    The instantaneous rate is ``(1 + amplitude*sin(2*pi*t/period_s))``
    times the base rate, so arrivals cluster in the "daytime" half of
    each cycle.  ``amplitude`` must stay below 1 so the rate is always
    positive and every gap is finite and non-negative.
    """
    _require_count(n)
    require_positive(mean_interarrival_s, "mean_interarrival_s")
    require_positive(period_s, "period_s")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    offsets: list[float] = [0.0]
    t = 0.0
    while len(offsets) < n:
        rate = (
            1.0 + amplitude * math.sin(2.0 * math.pi * t / period_s)
        ) / mean_interarrival_s
        t += float(rng.exponential(1.0 / rate))
        offsets.append(t)
    return tuple(offsets[:n])


def _require_count(n: int) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
