"""3-D process-grid decomposition and halo-exchange message construction.

Both miniMD (spatial decomposition) and miniFE (brick domain) place their
ranks on a 3-D Cartesian grid and exchange faces with six neighbours.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.simmpi.costmodel import Message


def proc_grid(n: int) -> tuple[int, int, int]:
    """Factor ``n`` into (px, py, pz) minimizing communication surface.

    Mirrors ``MPI_Dims_create``'s goal: the most cube-like factorization.
    Deterministic: among ties the lexicographically smallest wins.
    """
    if n <= 0:
        raise ValueError(f"process count must be positive, got {n}")
    best: tuple[int, int, int] | None = None
    best_surface = math.inf
    for px in range(1, n + 1):
        if n % px:
            continue
        rest = n // px
        for py in range(1, rest + 1):
            if rest % py:
                continue
            pz = rest // py
            # Surface-to-volume proxy for a unit cube split px*py*pz ways.
            surface = px * py + py * pz + px * pz
            if surface < best_surface:
                best_surface = surface
                best = (px, py, pz)
    assert best is not None
    return tuple(sorted(best))  # type: ignore[return-value]


def coord_of(rank: int, dims: tuple[int, int, int]) -> tuple[int, int, int]:
    """Rank → (x, y, z) grid coordinate (x fastest, like MPI row-major z)."""
    px, py, pz = dims
    if not 0 <= rank < px * py * pz:
        raise ValueError(f"rank {rank} outside grid {dims}")
    x = rank % px
    y = (rank // px) % py
    z = rank // (px * py)
    return (x, y, z)


def rank_of(coord: tuple[int, int, int], dims: tuple[int, int, int]) -> int:
    """(x, y, z) grid coordinate → rank."""
    px, py, pz = dims
    x, y, z = coord
    if not (0 <= x < px and 0 <= y < py and 0 <= z < pz):
        raise ValueError(f"coordinate {coord} outside grid {dims}")
    return x + y * px + z * px * py


def neighbors(rank: int, dims: tuple[int, int, int]) -> list[int]:
    """The six face neighbours with periodic boundaries (dedup for thin dims).

    In a dimension of extent 1 the neighbour is the rank itself and is
    dropped (no self-messages); extent 2 yields one distinct neighbour.
    """
    x, y, z = coord_of(rank, dims)
    px, py, pz = dims
    out: list[int] = []
    for d, (c, extent) in enumerate(((x, px), (y, py), (z, pz))):
        for step in (-1, 1):
            cc = [x, y, z]
            cc[d] = (c + step) % extent
            other = rank_of(tuple(cc), dims)  # type: ignore[arg-type]
            if other != rank and other not in out:
                out.append(other)
    return out


def halo_messages(
    dims: tuple[int, int, int],
    face_volumes_mb: tuple[float, float, float],
) -> list[Message]:
    """All face-exchange messages for one halo sweep over the grid.

    ``face_volumes_mb`` gives the per-face data volume perpendicular to
    each axis.  Every rank sends to each distinct face neighbour; message
    pairs (a→b and b→a) are both present, as in a real exchange.
    """
    px, py, pz = dims
    n = px * py * pz
    msgs: list[Message] = []
    for rank in range(n):
        x, y, z = coord_of(rank, dims)
        for d, extent in enumerate((px, py, pz)):
            if extent == 1:
                continue
            vol = face_volumes_mb[d]
            for step in (-1, 1):
                cc = [x, y, z]
                cc[d] = (cc[d] + step) % extent
                other = rank_of(tuple(cc), dims)  # type: ignore[arg-type]
                if other == rank:
                    continue
                msgs.append(Message(src_rank=rank, dst_rank=other, volume_mb=vol))
                if extent == 2:
                    break  # only one distinct neighbour in this dimension
    return msgs
