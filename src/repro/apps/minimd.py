"""miniMD model — Mantevo's molecular-dynamics proxy (paper §5.1).

miniMD performs Lennard-Jones MD with spatial decomposition: the cubic
simulation box of ``s³`` unit cells (4 atoms each, fcc lattice — the
paper's s = 8…48 spans "2K – 442K atoms", i.e. 4·s³) is split over a 3-D
process grid.  Each timestep:

* computes forces over the neighbour lists (≈ 76 pairs/atom at the
  standard 2.5 σ cutoff);
* exchanges ghost-atom positions with the six face neighbours (forward
  communication) and force contributions back (reverse communication);
* every ``reneighbor_every`` steps rebuilds neighbour lists and migrates
  atoms (a heavier exchange);
* every ``thermo_every`` steps reduces scalar thermodynamic output.

The communication/computation split of this model lands in the paper's
profiled 40–80 % communication-time band on a loaded Gigabit cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppModel, StepBlock, StepDemand
from repro.apps.grid import halo_messages, proc_grid
from repro.core.weights import MINIMD_TRADEOFF, TradeOff
from repro.simmpi.costmodel import CommPhase
from repro.util.validation import require_positive

#: atoms per fcc unit cell
_ATOMS_PER_CELL = 4
#: average neighbour-list pairs per atom at 2.5 sigma cutoff
_PAIRS_PER_ATOM = 76.0
#: bytes exchanged per ghost atom (3 coordinate doubles)
_BYTES_PER_ATOM = 24.0


@dataclass(frozen=True)
class MiniMDConfig:
    """Calibration constants (see EXPERIMENTS.md §calibration)."""

    #: CPU cycles per pair interaction, folding in neighbour-list and
    #: integration overhead
    cycles_per_pair: float = 55.0
    #: ghost-shell thickness in unit cells (cutoff 2.5 sigma ≈ 1.5 cells)
    ghost_cells: float = 1.5
    timesteps: int = 1000
    reneighbor_every: int = 20
    thermo_every: int = 10

    def __post_init__(self) -> None:
        require_positive(self.cycles_per_pair, "cycles_per_pair")
        require_positive(self.ghost_cells, "ghost_cells")
        require_positive(self.timesteps, "timesteps")
        require_positive(self.reneighbor_every, "reneighbor_every")
        require_positive(self.thermo_every, "thermo_every")


class MiniMD(AppModel):
    """miniMD with problem size ``s`` (box edge, unit cells)."""

    name = "miniMD"

    def __init__(self, s: int, config: MiniMDConfig | None = None) -> None:
        require_positive(s, "s")
        self.s = int(s)
        self.config = config or MiniMDConfig()

    @property
    def atoms(self) -> int:
        """Total atom count: 4·s³ (fcc lattice)."""
        return _ATOMS_PER_CELL * self.s**3

    def recommended_tradeoff(self) -> TradeOff:
        return MINIMD_TRADEOFF

    # ------------------------------------------------------------------
    def schedule(self, n_ranks: int) -> list[StepBlock]:
        require_positive(n_ranks, "n_ranks")
        cfg = self.config
        dims = proc_grid(n_ranks)
        atoms_per_rank = self.atoms / n_ranks
        compute_gc = atoms_per_rank * _PAIRS_PER_ATOM * cfg.cycles_per_pair / 1e9

        # Face ghost volumes: local sub-box is (s/px, s/py, s/pz) cells; a
        # face perpendicular to x carries ghost_cells * (s/py)*(s/pz)
        # cells' worth of atoms.
        px, py, pz = dims
        def face_mb(a: float, b: float) -> float:
            cells = cfg.ghost_cells * a * b
            return cells * _ATOMS_PER_CELL * _BYTES_PER_ATOM / 1e6

        fx = face_mb(self.s / py, self.s / pz)
        fy = face_mb(self.s / px, self.s / pz)
        fz = face_mb(self.s / px, self.s / py)
        halo = halo_messages(dims, (fx, fy, fz))
        # Forward (positions out) + reverse (forces back) each step.
        exchange = CommPhase.of(halo)
        base_phases = (exchange, exchange)
        # Reneighbouring migrates atoms and rebuilds the full ghost shell:
        # roughly 3x the face traffic.
        heavy = CommPhase.of(
            [m.__class__(m.src_rank, m.dst_rank, 3.0 * m.volume_mb) for m in halo]
        )

        thermo = 8e-6  # one double, MB

        blocks: list[StepBlock] = []
        plain = StepDemand(compute_gcycles=compute_gc, phases=base_phases)
        plain_thermo = StepDemand(
            compute_gcycles=compute_gc, phases=base_phases, allreduce_mb=(thermo,)
        )
        reneigh = StepDemand(
            compute_gcycles=compute_gc * 1.15,  # list rebuild costs ~15 %
            phases=(exchange, exchange, heavy),
            allreduce_mb=(thermo,),
        )
        cycle = cfg.reneighbor_every
        n_cycles, leftover = divmod(cfg.timesteps, cycle)
        thermo_per_cycle = max(1, cycle // cfg.thermo_every)
        plain_per_cycle = cycle - 1 - (thermo_per_cycle - 1)
        for _ in range(n_cycles):
            if plain_per_cycle > 0:
                blocks.append(StepBlock(plain, plain_per_cycle))
            if thermo_per_cycle > 1:
                blocks.append(StepBlock(plain_thermo, thermo_per_cycle - 1))
            blocks.append(StepBlock(reneigh, 1))
        if leftover:
            blocks.append(StepBlock(plain, leftover))
        return blocks
