"""miniFE model — Mantevo's implicit finite-element proxy (paper §5.2).

miniFE assembles a sparse linear system on a brick of ``nx × ny × nz``
hexahedral elements ((nx+1)³ unknowns for the paper's cubic runs) and
solves it with unpreconditioned CG.  Each CG iteration:

* one sparse matrix-vector product over the 27-point stencil rows,
  requiring a halo exchange of boundary-row values;
* two dot products → two 8-byte allreduces (latency-bound — this is why
  miniFE is more latency- than bandwidth-sensitive);
* three vector updates (axpy), folded into the compute term.

The model's communication share matches the paper's profiling (~25–60 %,
about 40 % at 48 processes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppModel, StepBlock, StepDemand
from repro.apps.grid import halo_messages, proc_grid
from repro.core.weights import MINIFE_TRADEOFF, TradeOff
from repro.simmpi.costmodel import CommPhase
from repro.util.validation import require_positive

#: nonzeros per matrix row (27-point hexahedral stencil)
_NNZ_PER_ROW = 27.0
#: bytes per exchanged boundary value (one double)
_BYTES_PER_VALUE = 8.0


@dataclass(frozen=True)
class MiniFEConfig:
    """Calibration constants (see EXPERIMENTS.md §calibration)."""

    #: CPU cycles per nonzero in the SpMV (memory-bound ⇒ several cycles),
    #: including the axpy/dot flops amortized per row
    cycles_per_nnz: float = 14.0
    cg_iterations: int = 200

    def __post_init__(self) -> None:
        require_positive(self.cycles_per_nnz, "cycles_per_nnz")
        require_positive(self.cg_iterations, "cg_iterations")


class MiniFE(AppModel):
    """miniFE with global brick dimensions nx = ny = nz."""

    name = "miniFE"

    def __init__(
        self,
        nx: int,
        ny: int | None = None,
        nz: int | None = None,
        config: MiniFEConfig | None = None,
    ) -> None:
        require_positive(nx, "nx")
        self.nx = int(nx)
        self.ny = int(ny) if ny is not None else self.nx
        self.nz = int(nz) if nz is not None else self.nx
        require_positive(self.ny, "ny")
        require_positive(self.nz, "nz")
        self.config = config or MiniFEConfig()

    @property
    def rows(self) -> int:
        """Global unknown count: (nx+1)(ny+1)(nz+1) nodal values."""
        return (self.nx + 1) * (self.ny + 1) * (self.nz + 1)

    def recommended_tradeoff(self) -> TradeOff:
        return MINIFE_TRADEOFF

    # ------------------------------------------------------------------
    def schedule(self, n_ranks: int) -> list[StepBlock]:
        require_positive(n_ranks, "n_ranks")
        cfg = self.config
        dims = proc_grid(n_ranks)
        px, py, pz = dims
        rows_per_rank = self.rows / n_ranks
        compute_gc = rows_per_rank * _NNZ_PER_ROW * cfg.cycles_per_nnz / 1e9

        # Boundary faces of the local brick, one double per nodal value.
        def face_mb(a: float, b: float) -> float:
            return a * b * _BYTES_PER_VALUE / 1e6

        fx = face_mb((self.ny + 1) / py, (self.nz + 1) / pz)
        fy = face_mb((self.nx + 1) / px, (self.nz + 1) / pz)
        fz = face_mb((self.nx + 1) / px, (self.ny + 1) / py)
        spmv_halo = CommPhase.of(halo_messages(dims, (fx, fy, fz)))

        dot = 8e-6  # one double, MB
        iteration = StepDemand(
            compute_gcycles=compute_gc,
            phases=(spmv_halo,),
            allreduce_mb=(dot, dot),
        )
        return [StepBlock(iteration, cfg.cg_iterations)]
