"""3-D FFT proxy (transpose/alltoall-dominated extension app).

Pseudo-spectral codes perform 3-D FFTs by computing 1-D transforms along
local axes and *transposing* the distributed array between them — two
``MPI_Alltoall`` calls per forward+inverse FFT pair.  Unlike the
halo-exchange apps (miniMD/miniFE), an alltoall touches *every* pair of
ranks, so network quality between all selected nodes (exactly what
Equation 2 measures) dominates.  This makes the FFT proxy the most
network-sensitive workload in the suite and a natural α→0 stress case
for the allocator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.apps.base import AppModel, StepBlock, StepDemand
from repro.core.weights import TradeOff
from repro.util.validation import require_positive

#: bytes per complex-double grid value
_BYTES_PER_VALUE = 16.0


@dataclass(frozen=True)
class FFTConfig:
    """Calibration constants for the FFT proxy."""

    #: cycles per point per 1-D transform (5 N log2 N flops at a few
    #: cycles each, folded with packing/unpacking overhead)
    cycles_per_point_log: float = 8.0
    #: forward+inverse FFT pairs per simulated step
    transforms_per_step: int = 2
    steps: int = 100

    def __post_init__(self) -> None:
        require_positive(self.cycles_per_point_log, "cycles_per_point_log")
        require_positive(self.transforms_per_step, "transforms_per_step")
        require_positive(self.steps, "steps")


class FFT3D(AppModel):
    """Distributed 3-D FFT over an ``n³`` complex grid (slab/pencil)."""

    name = "fft3d"

    def __init__(self, n: int, config: FFTConfig | None = None) -> None:
        require_positive(n, "n")
        self.n = int(n)
        self.config = config or FFTConfig()

    @property
    def points(self) -> int:
        return self.n**3

    def recommended_tradeoff(self) -> TradeOff:
        # alltoall communication dominates: weight the network maximally
        # within the paper's observed range.
        return TradeOff(alpha=0.2, beta=0.8)

    def schedule(self, n_ranks: int) -> list[StepBlock]:
        require_positive(n_ranks, "n_ranks")
        cfg = self.config
        points_per_rank = self.points / n_ranks
        # 3 axes of 1-D FFTs per transform, 5 N log N work per axis folded
        # into cycles_per_point_log.
        compute_gc = (
            points_per_rank
            * 3.0
            * cfg.cycles_per_point_log
            * math.log2(max(self.n, 2))
            * cfg.transforms_per_step
            / 1e9
        )
        # Each transform needs 2 transposes; every rank re-distributes its
        # whole slab: per-pair volume = local points / ranks.
        per_pair_mb = (
            points_per_rank / n_ranks * _BYTES_PER_VALUE / 1e6
        )
        n_alltoalls = 2 * cfg.transforms_per_step
        step = StepDemand(
            compute_gcycles=compute_gc,
            alltoall_mb=(per_pair_mb,) * n_alltoalls,
        )
        return [StepBlock(step, cfg.steps)]
