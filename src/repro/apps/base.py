"""Application model interface.

An :class:`AppModel` describes *what* a parallel program demands per BSP
step — compute cycles per rank, halo-exchange phases, collective calls —
without prescribing *where* it runs.  The :class:`repro.simmpi.job.SimJob`
executor then prices those demands against a concrete placement and the
live cluster/network state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.weights import TradeOff
from repro.simmpi.costmodel import CommPhase


@dataclass(frozen=True)
class StepDemand:
    """Resource demands of one BSP step (identical for every rank).

    compute_gcycles:
        Work per rank in giga-cycles (converted to seconds by each host
        node's clock frequency and contention).
    phases:
        Point-to-point communication phases, executed in order, each
        internally concurrent.
    allreduce_mb:
        Message sizes of the step's allreduce calls (MB; 8e-6 for one
        double).
    alltoall_mb:
        Per-pair message sizes of the step's alltoall calls (MB each) —
        used by transpose-based codes such as 3-D FFTs.
    """

    compute_gcycles: float
    phases: tuple[CommPhase, ...] = ()
    allreduce_mb: tuple[float, ...] = ()
    alltoall_mb: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.compute_gcycles < 0:
            raise ValueError(
                f"compute_gcycles must be non-negative: {self.compute_gcycles}"
            )
        if any(v < 0 for v in self.alltoall_mb):
            raise ValueError("alltoall message sizes must be non-negative")


@dataclass(frozen=True)
class StepBlock:
    """``count`` consecutive steps sharing one demand profile."""

    demand: StepDemand
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"step count must be positive, got {self.count}")


class AppModel(ABC):
    """A parallel application expressed as per-step demands."""

    name: str = "abstract"

    @abstractmethod
    def schedule(self, n_ranks: int) -> list[StepBlock]:
        """Demand profile for a run on ``n_ranks`` processes."""

    @abstractmethod
    def recommended_tradeoff(self) -> TradeOff:
        """The α/β the paper (or profiling) recommends for this app."""

    def total_steps(self, n_ranks: int) -> int:
        return sum(b.count for b in self.schedule(n_ranks))
