"""Generic 3-D Jacobi stencil application (extension beyond the paper).

A tunable proxy whose compute/communication ratio can be swept — useful
for the α/β sensitivity ablation: the right trade-off for a stencil
depends directly on its ``flops_per_cell`` and grid size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppModel, StepBlock, StepDemand
from repro.apps.grid import halo_messages, proc_grid
from repro.core.weights import TradeOff
from repro.simmpi.costmodel import CommPhase
from repro.util.validation import require_positive


@dataclass(frozen=True)
class StencilConfig:
    """Tunables of the generic stencil."""

    cycles_per_cell: float = 40.0
    iterations: int = 500
    bytes_per_cell: float = 8.0
    #: allreduce (residual check) every this many iterations
    reduce_every: int = 10

    def __post_init__(self) -> None:
        require_positive(self.cycles_per_cell, "cycles_per_cell")
        require_positive(self.iterations, "iterations")
        require_positive(self.bytes_per_cell, "bytes_per_cell")
        require_positive(self.reduce_every, "reduce_every")


class Stencil3D(AppModel):
    """7-point Jacobi relaxation on an ``n³`` grid."""

    name = "stencil3d"

    def __init__(self, n: int, config: StencilConfig | None = None) -> None:
        require_positive(n, "n")
        self.n = int(n)
        self.config = config or StencilConfig()

    def recommended_tradeoff(self) -> TradeOff:
        # Stencils sit between miniMD and miniFE in communication volume.
        return TradeOff(alpha=0.35, beta=0.65)

    def schedule(self, n_ranks: int) -> list[StepBlock]:
        require_positive(n_ranks, "n_ranks")
        cfg = self.config
        dims = proc_grid(n_ranks)
        px, py, pz = dims
        cells_per_rank = self.n**3 / n_ranks
        compute_gc = cells_per_rank * cfg.cycles_per_cell / 1e9

        def face_mb(a: float, b: float) -> float:
            return a * b * cfg.bytes_per_cell / 1e6

        fx = face_mb(self.n / py, self.n / pz)
        fy = face_mb(self.n / px, self.n / pz)
        fz = face_mb(self.n / px, self.n / py)
        halo = CommPhase.of(halo_messages(dims, (fx, fy, fz)))

        plain = StepDemand(compute_gcycles=compute_gc, phases=(halo,))
        with_reduce = StepDemand(
            compute_gcycles=compute_gc, phases=(halo,), allreduce_mb=(8e-6,)
        )
        blocks: list[StepBlock] = []
        cycles, leftover = divmod(cfg.iterations, cfg.reduce_every)
        for _ in range(cycles):
            if cfg.reduce_every > 1:
                blocks.append(StepBlock(plain, cfg.reduce_every - 1))
            blocks.append(StepBlock(with_reduce, 1))
        if leftover:
            blocks.append(StepBlock(plain, leftover))
        return blocks
