"""Proxy application models: miniMD, miniFE, and a generic 3-D stencil."""

from repro.apps.base import AppModel, StepBlock, StepDemand
from repro.apps.fft import FFT3D
from repro.apps.grid import halo_messages, neighbors, proc_grid
from repro.apps.minife import MiniFE
from repro.apps.minimd import MiniMD
from repro.apps.stencil import Stencil3D

__all__ = [
    "AppModel",
    "StepBlock",
    "StepDemand",
    "FFT3D",
    "halo_messages",
    "neighbors",
    "proc_grid",
    "MiniFE",
    "MiniMD",
    "Stencil3D",
]
