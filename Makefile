# Convenience targets for the reproduction workflow.

.PHONY: test bench bench-full bench-smoke bench-json examples clean

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only

bench-smoke:
	REPRO_SMOKE=1 pytest benchmarks/ --benchmark-only

# Machine-readable timings for trajectory tracking (compare
# BENCH_allocator.json / BENCH_broker.json across commits; see
# docs/PERFORMANCE.md and docs/BROKER.md).
bench-json:
	pytest benchmarks/bench_allocator_overhead.py --benchmark-only \
		--benchmark-json=BENCH_allocator.json
	pytest benchmarks/bench_broker.py --benchmark-only

examples:
	python examples/quickstart.py
	python examples/policy_showdown.py
	python examples/shared_cluster_day.py
	python examples/monitor_failover.py
	python examples/custom_cluster.py
	python examples/job_stream.py

clean:
	rm -rf benchmarks/output .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
