# Convenience targets for the reproduction workflow.

.PHONY: all test lint race typecheck bench bench-full bench-smoke bench-json elastic fleet chaos chaos-smoke scenarios examples clean

all: test lint typecheck scenarios

test:
	pytest tests/

# In-tree invariant checks (determinism / async-safety / typed errors /
# protocol drift / async races) — stdlib-only, always available.  Exit 1
# on any finding not grandfathered in lint-baseline.json
# (docs/ANALYSIS.md).  mypy/ruff are optional extras
# (`pip install -e ".[lint]"`); the targets skip gracefully where they
# aren't installed so `make all` works in minimal containers.
lint:
	python -m repro lint
	pytest benchmarks/bench_lint.py --benchmark-only -q
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro; \
	else \
		echo "ruff not installed; skipping (pip install -e '.[lint]')"; \
	fi

# Concurrency slice of the lint pass on its own: the RACE family
# (await-segmented CFG over every async def — docs/ANALYSIS.md).
race:
	python -m repro lint --rules RACE

typecheck:
	@if command -v mypy >/dev/null 2>&1; then \
		mypy; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[lint]')"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_FULL=1 pytest benchmarks/ --benchmark-only

bench-smoke:
	REPRO_SMOKE=1 pytest benchmarks/ --benchmark-only

# Machine-readable timings for trajectory tracking (compare
# BENCH_allocator.json / BENCH_broker.json / BENCH_elastic.json /
# BENCH_hotpath.json / BENCH_federation.json / BENCH_fleet.json /
# BENCH_scenarios.json across commits; see docs/PERFORMANCE.md,
# docs/BROKER.md, docs/ELASTIC.md, docs/FEDERATION.md, docs/FLEET.md
# and docs/SCENARIOS.md).  bench_broker runs before
# bench_hotpath: the hotpath transport floor is a ratio against the
# JSON-lines number bench_broker just wrote.
bench-json:
	pytest benchmarks/bench_allocator_overhead.py --benchmark-only \
		--benchmark-json=BENCH_allocator.json
	pytest benchmarks/bench_broker.py --benchmark-only
	pytest benchmarks/bench_elastic.py --benchmark-only
	pytest benchmarks/bench_hotpath.py --benchmark-only
	pytest benchmarks/bench_federation.py --benchmark-only
	pytest benchmarks/bench_fleet.py --benchmark-only
	pytest benchmarks/bench_scenarios.py --benchmark-only

# The headline elastic experiment: static vs. elastic scheduling on the
# same drifting-load world (single reproducible entry point).
elastic:
	python -m repro elastic --seed 3 --events

# The fleet experiment: static vs. per-job-elastic vs. fleet-elastic on
# the same oversubscribed drifting-load world.
fleet:
	python -m repro fleet --seed 2 --warmup-s 900

# Deterministic fault-injection harness: every scenario end-to-end with
# a fixed seed, exiting non-zero on any invariant violation.
chaos:
	python -m repro chaos --seed 0

chaos-smoke:
	python -m repro chaos --seed 0 --smoke

# Scenario-zoo smoke sweep: the registry listing, one §5 comparison per
# smoke cell, and the cross-scenario test matrix (docs/SCENARIOS.md).
# The full registry runs nightly via REPRO_NIGHTLY=1.
scenarios:
	python -m repro scenarios list
	python -m repro scenarios run fat-tree --jobs 2
	pytest tests/scenarios -q

examples:
	python examples/quickstart.py
	python examples/policy_showdown.py
	python examples/shared_cluster_day.py
	python examples/monitor_failover.py
	python examples/custom_cluster.py
	python examples/job_stream.py

clean:
	rm -rf benchmarks/output .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
